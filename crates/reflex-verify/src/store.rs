//! The persistent, content-addressed proof store (`.rx-store/`).
//!
//! Since PR 8 the store is **log-structured**: certificates append to
//! length-framed segment logs sharded 16 ways by a fingerprint of their
//! key, an in-memory index is rebuilt on open by scanning segment frames,
//! and writes are made durable by group-commit batched fsync
//! ([`ProofStore::flush`]). A bounded LRU hot tier serves repeat lookups
//! without re-reading or re-decoding — warm `rx watch` sessions hit it on
//! every iteration. The layout under the store root:
//!
//! ```text
//! MANIFEST                    framed list of live segments per shard
//! shard-00/seg-00000000.log   length-framed certificate frames
//! …
//! shard-0f/seg-0000001c.log
//! head-{name fp}-{opts}.head  one head record per (program, options)
//! {prog}-{prop}-{opts}.cert   legacy flat entries (read-only, migrated
//!                             by `rx store migrate` / compaction)
//! quarantine/                 corrupt frames + sequenced scrub reports
//! ```
//!
//! An entry is keyed by content —
//! `(program fp, property fp, options fp)` — where the program
//! fingerprint covers declarations plus all handlers (properties
//! excluded, so editing one property never invalidates the others'
//! entries), the property fingerprint covers the statement, and the
//! options fingerprint covers every [`ProverOptions`] field that can
//! change a certificate. Content addressing makes the store
//! append-mostly: editing back and forth between two program versions
//! hits both sets of entries, and concurrent writers racing on one key
//! write identical bytes, so duplicate frames are harmless and
//! first-frame-wins on open.
//!
//! A small **head** file per (program name, options fingerprint) records
//! which program fingerprint the last run proved and under which property
//! fingerprints, so the next run can find the *previous* version's
//! certificates for cross-edit planning (full or per-case reuse via
//! [`crate::DepGraph`]) even though their keys contain old fingerprints.
//!
//! # Durability
//!
//! Appends are batched: [`ProofStore::save`] registers the entry in the
//! index immediately but the segment is only fsynced at the next group
//! commit ([`ProofStore::flush`], called once per
//! [`persist_outcomes`] run). If that fsync fails, the unsynced suffix is
//! untrustworthy: the store rolls the batch back — drops the entries from
//! the index, truncates the segment to its last durable length, seals it
//! — and reports the loss through [`ProofStore::dropped_entries`]. A
//! segment is rolled at a size cap; the roll rewrites `MANIFEST` (write
//! to temporary, fsync, rename — the PR 5 discipline) *before* the first
//! append, so a crash can leave at worst a manifest entry for a missing
//! or empty segment, never a data-bearing segment the manifest does not
//! know about. Compaction ([`ProofStore::compact`]) folds the scrub /
//! quarantine pass in: it rewrites live entries into fresh segments,
//! drops superseded frames, quarantines corrupt ones, migrates legacy
//! flat entries and atomically swaps the manifest.
//!
//! # Trust
//!
//! The store is untrusted, like the proof search and the incremental
//! planner. Four layers keep that safe:
//!
//! 1. every frame carries a versioned magic header and an integrity
//!    fingerprint of its payload — mismatches, truncations and decode
//!    errors all degrade to cache **misses**, never errors (a corrupt
//!    frame also ends its segment's scan: nothing after it is trusted);
//! 2. decoding rebuilds the exact stored structure (terms are re-interned
//!    without re-simplification), so round-tripping is the identity;
//! 3. every certificate loaded from disk must pass
//!    [`crate::check_certificate`] against the *current* program before
//!    its reuse is reported — a corrupt-but-decodable entry costs a
//!    re-prove, never a wrong "Proved";
//! 4. integrity fingerprints are re-checked on every segment read, so bit
//!    rot after the index was built is still a miss, not a bad decode.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use reflex_ast::fingerprint::{Fp, FpHasher};
use reflex_typeck::CheckedProgram;

use crate::certificate::Certificate;
use crate::codec::{dec_certificate, enc_certificate, Dec, Enc};
use crate::incremental::IncrementalReport;
use crate::options::{Outcome, ProverOptions, VerifyError};
use crate::vfs::{RealFs, VerifyFs};

/// On-disk format version; bumped whenever the encoding changes. Entries
/// written by any other version read as misses.
pub const STORE_VERSION: u32 = 1;

/// Flat-file frame magic (head records, legacy `.cert` entries, MANIFEST).
const MAGIC: &[u8; 4] = b"RXPS";
/// Per-entry frame magic inside segment logs.
const SEGMENT_MAGIC: &[u8; 4] = b"RXSG";
/// Segment frame header: magic (4) + version (4) + key (3×8) + payload
/// length (4) + payload fingerprint (8).
const FRAME_HEADER: usize = 44;
/// Fingerprint-prefix shards.
const SHARD_COUNT: usize = 16;
/// Segments roll once they exceed this many bytes.
const SEGMENT_CAP_BYTES: u64 = 4 * 1024 * 1024;
/// Group commit early when a shard accumulates this many unsynced bytes.
const GROUP_COMMIT_BYTES: u64 = 256 * 1024;
/// Hot-tier capacity, in certificates.
const LRU_CAPACITY: usize = 256;
/// The manifest file name under the store root.
const MANIFEST_FILE: &str = "MANIFEST";

/// A store key: (program fp, property fp, options fp).
type Key = (Fp, Fp, Fp);

/// Where an indexed entry lives.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// A frame inside a segment log; `offset`/`len` bound the payload.
    Seg {
        shard: u8,
        seq: u64,
        offset: u64,
        len: u32,
        payload_fp: u64,
    },
    /// A legacy flat `{prog}-{prop}-{opts}.cert` file.
    Flat,
}

/// Per-shard append state.
#[derive(Debug, Clone, Default)]
struct ShardState {
    /// The segment currently accepting appends, if any.
    active: Option<u64>,
    /// Logical file length after every successful append.
    written: u64,
    /// Length covered by the last successful fsync.
    durable: u64,
    /// Whether `written > durable` (an fsync is owed).
    dirty: bool,
    /// Keys appended since the last successful fsync, in order.
    pending: Vec<Key>,
}

/// The live segment list, per shard, plus the next segment sequence
/// number. Rewritten atomically on every roll and compaction.
#[derive(Debug, Clone)]
struct Manifest {
    segments: Vec<Vec<u64>>,
    next_seq: u64,
}

impl Manifest {
    fn empty() -> Manifest {
        Manifest {
            segments: vec![Vec::new(); SHARD_COUNT],
            next_seq: 0,
        }
    }
}

/// Everything the log engine mutates, under one lock: the key index, the
/// per-shard append states and the manifest.
#[derive(Debug)]
struct LogState {
    index: HashMap<Key, Loc>,
    shards: Vec<ShardState>,
    manifest: Manifest,
    /// Wall-clock cost of the open-time index build, milliseconds.
    build_ms: f64,
    /// Segments that could not be read at open (their entries are misses).
    scan_skipped: u64,
}

/// The bounded LRU hot tier: decoded certificates for repeat lookups.
///
/// Entries are shared [`Arc`] handles, so a warm hit costs a pointer
/// bump rather than a deep clone of the certificate.
#[derive(Debug, Default)]
struct Lru {
    map: HashMap<Key, (u64, Arc<Certificate>)>,
    tick: u64,
}

impl Lru {
    fn get(&mut self, key: &Key) -> Option<Arc<Certificate>> {
        self.tick += 1;
        let tick = self.tick;
        let (stamp, cert) = self.map.get_mut(key)?;
        *stamp = tick;
        Some(Arc::clone(cert))
    }

    fn insert(&mut self, key: Key, cert: Arc<Certificate>) {
        self.tick += 1;
        if self.map.len() >= LRU_CAPACITY && !self.map.contains_key(&key) {
            // Capacity is small enough that a linear eviction scan beats
            // maintaining an intrusive list.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (self.tick, cert));
    }

    fn remove(&mut self, key: &Key) {
        self.map.remove(key);
    }
}

#[derive(Debug)]
struct StoreInner {
    root: PathBuf,
    /// Every disk touch goes through this, so tests and the chaos harness
    /// can inject a [`crate::vfs::FaultyFs`].
    fs: Arc<dyn VerifyFs>,
    /// Unexpected I/O failures observed (not plain not-found misses) —
    /// the watch loop's degradation signal.
    io_errors: AtomicU64,
    /// Entries rolled back because their group commit failed: they were
    /// reported saved, then dropped when the fsync said otherwise.
    dropped: AtomicU64,
    log: Mutex<LogState>,
    lru: Mutex<Lru>,
}

impl Drop for StoreInner {
    fn drop(&mut self) {
        // Last handle out syncs whatever the final group commit missed.
        let _ = self.flush_all();
    }
}

/// A handle to an on-disk proof store directory.
///
/// Cheap to clone: clones share the index, segment states, hot tier and
/// I/O error counter.
#[derive(Debug, Clone)]
pub struct ProofStore {
    inner: Arc<StoreInner>,
}

/// What the last successful run against a program (by name) proved: the
/// program fingerprint it ran over and the property fingerprints its
/// certificates are filed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHead {
    /// The program fingerprint of that run.
    pub program: Fp,
    /// `(property name, property fingerprint)` pairs of that run.
    pub properties: Vec<(String, Fp)>,
}

/// Adds the offending path and action to an I/O error so multi-layer
/// failures (which shard? which segment?) stay diagnosable.
fn err_at(e: io::Error, action: &str, path: &Path) -> io::Error {
    io::Error::new(
        e.kind(),
        format!("proof store: {action} {}: {e}", path.display()),
    )
}

fn shard_dir_name(shard: usize) -> String {
    format!("shard-{shard:02x}")
}

fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:08}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Which shard a key's frames live in: a fingerprint of the full key,
/// folded to `SHARD_COUNT`.
fn shard_of(key: Key) -> usize {
    let mut h = FpHasher::new();
    h.write(&key.0 .0.to_le_bytes());
    h.write(&key.1 .0.to_le_bytes());
    h.write(&key.2 .0.to_le_bytes());
    (h.finish().0 as usize) % SHARD_COUNT
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = FpHasher::new();
    h.write(bytes);
    h.finish().0
}

/// Builds one segment frame; returns the frame and the payload fingerprint.
fn build_frame(key: Key, payload: &[u8]) -> (Vec<u8>, u64) {
    let pfp = fnv(payload);
    let mut f = Vec::with_capacity(FRAME_HEADER + payload.len());
    f.extend_from_slice(SEGMENT_MAGIC);
    f.extend_from_slice(&STORE_VERSION.to_le_bytes());
    f.extend_from_slice(&key.0 .0.to_le_bytes());
    f.extend_from_slice(&key.1 .0.to_le_bytes());
    f.extend_from_slice(&key.2 .0.to_le_bytes());
    f.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    f.extend_from_slice(&pfp.to_le_bytes());
    f.extend_from_slice(payload);
    (f, pfp)
}

/// One parsed-and-verified segment frame.
struct Frame {
    key: Key,
    payload_start: usize,
    payload_len: usize,
    payload_fp: u64,
}

/// Parses the frame at `pos`, verifying magic, version, bounds and the
/// payload integrity fingerprint. `None` ends the segment scan: nothing
/// past an unparseable frame is trusted.
fn parse_frame(bytes: &[u8], pos: usize) -> Option<Frame> {
    let hdr = bytes.get(pos..pos.checked_add(FRAME_HEADER)?)?;
    if &hdr[0..4] != SEGMENT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(hdr[4..8].try_into().ok()?) != STORE_VERSION {
        return None;
    }
    let word = |a: usize| u64::from_le_bytes(hdr[a..a + 8].try_into().expect("8 bytes"));
    let key = (Fp(word(8)), Fp(word(16)), Fp(word(24)));
    let payload_len = u32::from_le_bytes(hdr[32..36].try_into().ok()?) as usize;
    let payload_fp = u64::from_le_bytes(hdr[36..44].try_into().ok()?);
    let payload_start = pos + FRAME_HEADER;
    let payload = bytes.get(payload_start..payload_start.checked_add(payload_len)?)?;
    if fnv(payload) != payload_fp {
        return None;
    }
    Some(Frame {
        key,
        payload_start,
        payload_len,
        payload_fp,
    })
}

/// Parses a legacy flat entry file name back into its key.
fn parse_entry_name(name: &str) -> Option<Key> {
    let stem = name.strip_suffix(".cert")?;
    let mut parts = stem.split('-');
    let (a, b, c) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    let fp = |s: &str| {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(Fp)
    };
    Some((fp(a)?, fp(b)?, fp(c)?))
}

fn enc_manifest(m: &Manifest) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(SHARD_COUNT as u32);
    e.u64(m.next_seq);
    for segs in &m.segments {
        e.len(segs.len());
        for s in segs {
            e.u64(*s);
        }
    }
    e.buf
}

fn dec_manifest(payload: &[u8]) -> Option<Manifest> {
    let mut d = Dec::new(payload);
    if d.u32()? as usize != SHARD_COUNT {
        return None;
    }
    let next_seq = d.u64()?;
    let mut segments = Vec::with_capacity(SHARD_COUNT);
    for _ in 0..SHARD_COUNT {
        let n = d.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(d.u64()?);
        }
        segments.push(v);
    }
    d.finish()?;
    Some(Manifest { segments, next_seq })
}

impl ProofStore {
    /// Opens (creating if needed) the store rooted at `dir`, on the real
    /// filesystem, and builds the in-memory index by scanning segment
    /// frames (plus any legacy flat entries).
    ///
    /// # Errors
    ///
    /// Fails only if the store root cannot be created or listed; the error
    /// message names the path. Unreadable segments degrade to misses and
    /// are counted, not errors.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ProofStore> {
        ProofStore::open_with(dir, Arc::new(RealFs))
    }

    /// Opens (creating if needed) the store rooted at `dir`, routing every
    /// disk operation through `fs` — the fault-injection seam used by the
    /// robustness tests and the simulator.
    ///
    /// # Errors
    ///
    /// As [`ProofStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, fs: Arc<dyn VerifyFs>) -> io::Result<ProofStore> {
        let root = dir.as_ref().to_path_buf();
        fs.create_dir_all(&root)
            .map_err(|e| err_at(e, "create store root", &root))?;
        let io_errors = AtomicU64::new(0);
        let t0 = Instant::now();
        let mut log = build_log_state(fs.as_ref(), &root, &io_errors)?;
        log.build_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(ProofStore {
            inner: Arc::new(StoreInner {
                root,
                fs,
                io_errors,
                dropped: AtomicU64::new(0),
                log: Mutex::new(log),
                lru: Mutex::new(Lru::default()),
            }),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// Unexpected I/O failures observed by this handle (and its clones)
    /// since opening. Plain not-found reads of *unindexed* keys are
    /// misses, not errors; the watch loop compares snapshots of this
    /// counter to decide when the store has become unreliable.
    pub fn io_errors(&self) -> u64 {
        self.inner.io_errors.load(Ordering::SeqCst)
    }

    /// Entries whose group commit failed after [`ProofStore::save`] had
    /// already reported them saved: the fsync rollback dropped them from
    /// the index, so they are misses now. [`persist_outcomes`] subtracts
    /// the delta from its saved count.
    pub fn dropped_entries(&self) -> u64 {
        self.inner.dropped.load(Ordering::SeqCst)
    }

    fn count_io_error(&self) {
        self.inner.count_io_error();
    }

    /// A quick read-back health check: writes a small framed probe entry,
    /// reads it back, and removes it. The watch loop calls this before
    /// re-attaching a degraded store.
    ///
    /// # Errors
    ///
    /// Any write, sync, rename or read-back failure.
    pub fn probe(&self) -> io::Result<()> {
        let path = self
            .inner
            .root
            .join(format!(".probe-{}", std::process::id()));
        self.inner.write_framed(&path, b"probe")?;
        let ok = matches!(self.inner.read_framed(&path), Some(p) if p == b"probe");
        let _ = self.inner.fs.remove_file(&path);
        if ok {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "probe entry did not read back intact",
            ))
        }
    }

    fn entry_path(&self, program: Fp, property: Fp, options: Fp) -> PathBuf {
        self.inner
            .root
            .join(format!("{program}-{property}-{options}.cert"))
    }

    fn head_path(&self, program_name: &str, options: Fp) -> PathBuf {
        // Head files are looked up before any fingerprint of the current
        // source is known, so they key on the (hashed) program *name*.
        let name = reflex_ast::fingerprint::fp_str(program_name);
        self.inner.root.join(format!("head-{name}-{options}.head"))
    }

    /// Loads the certificate stored under the given key, or `None` if
    /// absent, unreadable, truncated, corrupt or written by a different
    /// format version (all of these are cache misses, not errors).
    ///
    /// Hot entries are served from the LRU tier without touching disk,
    /// as shared handles — a warm hit costs neither deserialization nor
    /// a deep clone. Cold segment hits re-verify the payload fingerprint
    /// before decoding, so bit rot after open is still a miss.
    pub fn load(&self, program: Fp, property: Fp, options: Fp) -> Option<Arc<Certificate>> {
        let key = (program, property, options);
        if let Some(cert) = self.inner.lru_lock().get(&key) {
            return Some(cert);
        }
        let loc = self.inner.log_lock().index.get(&key).copied();
        let cert = match loc {
            Some(Loc::Seg {
                shard,
                seq,
                offset,
                len,
                payload_fp,
            }) => {
                let path = self.inner.segment_path(shard as usize, seq);
                let payload = match self.inner.fs.read_at(&path, offset, len as usize) {
                    Ok(p) => p,
                    Err(_) => {
                        // An *indexed* entry failing to read is unexpected
                        // (even NotFound: a racing compaction swept the
                        // segment from under us) — degradation signal.
                        self.count_io_error();
                        return None;
                    }
                };
                if fnv(&payload) != payload_fp {
                    return None;
                }
                decode_cert_payload(&payload)?
            }
            // Legacy flat entries, and keys another process may have
            // written flat since we opened, read through the framed path.
            Some(Loc::Flat) | None => {
                let payload = self
                    .inner
                    .read_framed(&self.entry_path(program, property, options))?;
                decode_cert_payload(&payload)?
            }
        };
        let cert = Arc::new(cert);
        self.inner.lru_lock().insert(key, Arc::clone(&cert));
        Some(cert)
    }

    /// Stores `cert` under the given key by appending a frame to its
    /// shard's active segment (rolling to a fresh segment at the size
    /// cap). An existing entry is left alone: keys are content-addressed,
    /// so it already holds the same bytes.
    ///
    /// The append is *not* fsynced here — durability comes from the next
    /// group commit ([`ProofStore::flush`]); a failed commit rolls the
    /// batch back and counts it in [`ProofStore::dropped_entries`].
    ///
    /// # Errors
    ///
    /// Propagates append/roll I/O failures (with the segment or manifest
    /// path in the message); callers persisting opportunistically may
    /// ignore them (a failed write is a future miss).
    pub fn save(
        &self,
        program: Fp,
        property: Fp,
        options: Fp,
        cert: &Certificate,
    ) -> io::Result<()> {
        let key = (program, property, options);
        if self.inner.log_lock().index.contains_key(&key) {
            return Ok(());
        }
        let mut e = Enc::new();
        enc_certificate(&mut e, cert);
        let (frame, payload_fp) = build_frame(key, &e.buf);
        let payload_len = u32::try_from(e.buf.len()).expect("payload fits u32");
        let mut log = self.inner.log_lock();
        if log.index.contains_key(&key) {
            return Ok(()); // raced with another clone
        }
        self.inner
            .append_entry(&mut log, key, frame, payload_len, payload_fp)
    }

    /// Fsyncs every shard's unsynced appends — the group commit. On a
    /// failed shard the unsynced batch is rolled back (dropped from the
    /// index, truncated away, segment sealed) and counted in
    /// [`ProofStore::dropped_entries`].
    ///
    /// # Errors
    ///
    /// The first fsync failure, with the segment path in the message;
    /// every shard is attempted regardless.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.flush_all()
    }

    /// Every key the index currently serves (segment and flat entries),
    /// sorted — the compaction-loss invariant in `reflex-sim` diffs this
    /// across a compaction.
    pub fn entries(&self) -> Vec<(Fp, Fp, Fp)> {
        let log = self.inner.log_lock();
        let mut keys: Vec<Key> = log.index.keys().copied().collect();
        keys.sort();
        keys
    }

    /// Loads the head record for (`program_name`, `options`), with the same
    /// miss semantics as [`ProofStore::load`].
    pub fn load_head(&self, program_name: &str, options: Fp) -> Option<StoreHead> {
        let payload = self
            .inner
            .read_framed(&self.head_path(program_name, options))?;
        decode_head(&payload)
    }

    /// Stores the head record for (`program_name`, `options`), atomically
    /// (write to a temporary file, fsync, rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_head(&self, program_name: &str, options: Fp, head: &StoreHead) -> io::Result<()> {
        let mut e = Enc::new();
        e.fp(head.program);
        e.len(head.properties.len());
        for (name, fp) in &head.properties {
            e.str(name);
            e.fp(*fp);
        }
        self.inner
            .write_framed(&self.head_path(program_name, options), &e.buf)
    }

    /// Writes a legacy flat-file entry (the pre-PR-8 one-file-per-
    /// certificate format). Kept for the `rx bench store` flat baseline
    /// and the migration tests; new code appends to segments via
    /// [`ProofStore::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_flat_entry(
        &self,
        program: Fp,
        property: Fp,
        options: Fp,
        cert: &Certificate,
    ) -> io::Result<()> {
        let path = self.entry_path(program, property, options);
        if self.inner.fs.exists(&path) {
            return Ok(());
        }
        let mut e = Enc::new();
        enc_certificate(&mut e, cert);
        self.inner.write_framed(&path, &e.buf)?;
        self.inner
            .log_lock()
            .index
            .entry((program, property, options))
            .or_insert(Loc::Flat);
        Ok(())
    }
}

/// Decodes a certificate payload, requiring full consumption.
fn decode_cert_payload(payload: &[u8]) -> Option<Certificate> {
    let mut d = Dec::new(payload);
    let cert = dec_certificate(&mut d)?;
    d.finish()?;
    Some(cert)
}

/// Decodes a head record's payload.
fn decode_head(payload: &[u8]) -> Option<StoreHead> {
    let mut d = Dec::new(payload);
    let program = d.fp()?;
    let n = d.len()?;
    let mut properties = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let fp = d.fp()?;
        properties.push((name, fp));
    }
    d.finish()?;
    Some(StoreHead {
        program,
        properties,
    })
}

/// Validates and strips a framed file's header, returning the payload, or
/// `None` for any mismatch.
fn decode_frame(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 16 || &bytes[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != STORE_VERSION {
        return None;
    }
    let stored_fp = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let payload = &bytes[16..];
    if fnv(payload) != stored_fp {
        return None;
    }
    Some(payload.to_vec())
}

impl StoreInner {
    fn count_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::SeqCst);
    }

    fn log_lock(&self) -> std::sync::MutexGuard<'_, LogState> {
        self.log.lock().expect("store log state poisoned")
    }

    fn lru_lock(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.lru.lock().expect("store hot tier poisoned")
    }

    fn segment_path(&self, shard: usize, seq: u64) -> PathBuf {
        self.root
            .join(shard_dir_name(shard))
            .join(segment_file_name(seq))
    }

    /// Reads a framed file: magic, version, payload integrity fingerprint,
    /// payload. Any mismatch is a miss (`None`); unexpected I/O errors
    /// (anything but not-found) also bump the I/O error counter.
    fn read_framed(&self, path: &Path) -> Option<Vec<u8>> {
        let bytes = match self.fs.read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.count_io_error();
                }
                return None;
            }
        };
        decode_frame(&bytes)
    }

    /// Writes a framed file atomically and durably: temporary file, then
    /// `sync_all`, then rename. The fsync closes the crash window between
    /// write and rename — without it, a crash (or a torn page-cache write)
    /// could leave a *renamed* frame with lost bytes. The bytes are a
    /// deterministic function of the payload — no timestamps — so
    /// identical content always produces identical files.
    fn write_framed(&self, path: &Path, payload: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        self.write_atomic(path, &bytes)
    }

    /// Raw write-fsync-rename (the PR 5 discipline) for already-framed
    /// bytes: compaction's fresh segments and the manifest swap.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = dir.join(format!(".tmp-{}-{file_name}", std::process::id()));
        let result = self
            .fs
            .write(&tmp, bytes)
            .and_then(|()| self.fs.sync(&tmp))
            .and_then(|()| self.fs.rename(&tmp, path));
        if let Err(e) = result {
            self.count_io_error();
            // Best-effort: do not leave the torn temporary behind (scrub
            // sweeps up any that survive a crash).
            let _ = self.fs.remove_file(&tmp);
            return Err(err_at(e, "write", path));
        }
        Ok(())
    }

    /// Writes `m` as the new MANIFEST, atomically.
    fn write_manifest(&self, m: &Manifest) -> io::Result<()> {
        self.write_framed(&self.root.join(MANIFEST_FILE), &enc_manifest(m))
    }

    /// Appends one framed entry to its shard, rolling segments as needed
    /// and registering the entry in the index. Group-commits early when
    /// the shard's unsynced batch crosses [`GROUP_COMMIT_BYTES`].
    fn append_entry(
        &self,
        log: &mut LogState,
        key: Key,
        frame: Vec<u8>,
        payload_len: u32,
        payload_fp: u64,
    ) -> io::Result<()> {
        let shard = shard_of(key);
        let needs_roll = match log.shards[shard].active {
            None => true,
            Some(_) => {
                log.shards[shard].written > 0
                    && log.shards[shard].written + frame.len() as u64 > SEGMENT_CAP_BYTES
            }
        };
        if needs_roll {
            self.roll_segment(log, shard)?;
        }
        let seq = log.shards[shard]
            .active
            .expect("rolled shard has a segment");
        let path = self.segment_path(shard, seq);
        match self.fs.append(&path, &frame) {
            Ok(()) => {
                let offset = log.shards[shard].written + FRAME_HEADER as u64;
                log.index.insert(
                    key,
                    Loc::Seg {
                        shard: shard as u8,
                        seq,
                        offset,
                        len: payload_len,
                        payload_fp,
                    },
                );
                let st = &mut log.shards[shard];
                st.written += frame.len() as u64;
                st.dirty = true;
                st.pending.push(key);
                if st.written - st.durable >= GROUP_COMMIT_BYTES {
                    // Opportunistic early commit; a failure already rolled
                    // this batch back (including the entry just appended),
                    // and the caller's save still reports Ok — the drop is
                    // accounted through `dropped_entries`.
                    let _ = self.flush_shard(log, shard);
                }
                Ok(())
            }
            Err(e) => {
                self.count_io_error();
                // Partial bytes may have landed, and the shard's unsynced
                // batch can no longer be committed through this segment.
                // Drop back to the durable prefix (which also trims the
                // failed append) and seal; the next append starts fresh.
                self.rollback_shard(log, shard);
                Err(err_at(e, "append to segment", &path))
            }
        }
    }

    /// Starts a fresh segment for `shard`: syncs out the old one, then
    /// rewrites the manifest *before* the first append — so a crash can
    /// leave a manifest entry for a missing/empty segment (harmless),
    /// never an unlisted data-bearing segment.
    fn roll_segment(&self, log: &mut LogState, shard: usize) -> io::Result<()> {
        self.flush_shard(log, shard)?;
        let dir = self.root.join(shard_dir_name(shard));
        self.fs.create_dir_all(&dir).map_err(|e| {
            self.count_io_error();
            err_at(e, "create shard directory", &dir)
        })?;
        let seq = log.manifest.next_seq;
        let mut m2 = log.manifest.clone();
        m2.segments[shard].push(seq);
        m2.next_seq = seq + 1;
        self.write_manifest(&m2)?;
        log.manifest = m2;
        let st = &mut log.shards[shard];
        st.active = Some(seq);
        st.written = 0;
        st.durable = 0;
        st.dirty = false;
        st.pending.clear();
        Ok(())
    }

    /// Fsyncs one shard's active segment. On failure the unsynced batch
    /// is rolled back: those bytes may not survive a crash, so the store
    /// must stop serving them now.
    fn flush_shard(&self, log: &mut LogState, shard: usize) -> io::Result<()> {
        if !log.shards[shard].dirty {
            return Ok(());
        }
        let seq = log.shards[shard].active.expect("dirty shard has a segment");
        let path = self.segment_path(shard, seq);
        match self.fs.sync(&path) {
            Ok(()) => {
                let st = &mut log.shards[shard];
                st.durable = st.written;
                st.dirty = false;
                st.pending.clear();
                Ok(())
            }
            Err(e) => {
                self.count_io_error();
                self.rollback_shard(log, shard);
                Err(err_at(e, "fsync segment", &path))
            }
        }
    }

    /// Drops a shard's unsynced batch: removes the entries from the index
    /// (and hot tier), truncates the segment back to its durable length,
    /// seals it, and counts the loss.
    fn rollback_shard(&self, log: &mut LogState, shard: usize) {
        let (pending, durable, active) = {
            let st = &mut log.shards[shard];
            let pending = std::mem::take(&mut st.pending);
            let (durable, active) = (st.durable, st.active);
            st.written = durable;
            st.dirty = false;
            st.active = None;
            (pending, durable, active)
        };
        if pending.is_empty() {
            return;
        }
        for k in &pending {
            log.index.remove(k);
        }
        {
            let mut lru = self.lru_lock();
            for k in &pending {
                lru.remove(k);
            }
        }
        self.dropped
            .fetch_add(pending.len() as u64, Ordering::SeqCst);
        if let Some(seq) = active {
            // Also clears any torn mark under FaultyFs: the untrusted tail
            // is exactly what gets cut away.
            let _ = self.fs.truncate(&self.segment_path(shard, seq), durable);
        }
    }

    /// The group commit over every shard.
    fn flush_all(&self) -> io::Result<()> {
        let mut log = self.log_lock();
        let mut first: Option<io::Error> = None;
        for shard in 0..SHARD_COUNT {
            if let Err(e) = self.flush_shard(&mut log, shard) {
                first.get_or_insert(e);
            }
        }
        match first {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// Rebuilds the in-memory index by scanning the manifest's segments (and
/// any orphans on disk), then legacy flat entries. Unreadable segments
/// are counted and skipped — their entries are misses, and the watch
/// loop's degradation logic owns the retry policy.
fn build_log_state(fs: &dyn VerifyFs, root: &Path, io_errors: &AtomicU64) -> io::Result<LogState> {
    let mut manifest = {
        let path = root.join(MANIFEST_FILE);
        match fs.read(&path) {
            Ok(bytes) => decode_frame(&bytes).and_then(|p| dec_manifest(&p)),
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    io_errors.fetch_add(1, Ordering::SeqCst);
                }
                None
            }
        }
    }
    .unwrap_or_else(Manifest::empty);

    // Union in any on-disk segments the manifest does not list (debris of
    // a crashed compaction): content addressing makes stale duplicates
    // harmless, and scanning them salvages entries a crash orphaned.
    for shard in 0..SHARD_COUNT {
        let dir = root.join(shard_dir_name(shard));
        if !fs.exists(&dir) {
            continue;
        }
        let Ok(listing) = fs.read_dir(&dir) else {
            io_errors.fetch_add(1, Ordering::SeqCst);
            continue;
        };
        for path in listing {
            let Some(seq) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_segment_name)
            else {
                continue;
            };
            if !manifest.segments[shard].contains(&seq) {
                manifest.segments[shard].push(seq);
            }
            manifest.next_seq = manifest.next_seq.max(seq + 1);
        }
    }

    // Shards are disjoint key spaces scanned independently; each scan
    // yields (entries in first-frame-wins order, segments skipped).
    type ShardScan = (Vec<(Key, Loc)>, u64);
    let scan_shard = |shard: usize| -> ShardScan {
        let mut entries: Vec<(Key, Loc)> = Vec::new();
        let mut skipped = 0u64;
        for &seq in &manifest.segments[shard] {
            let path = root
                .join(shard_dir_name(shard))
                .join(segment_file_name(seq));
            let bytes = match fs.read(&path) {
                Ok(b) => b,
                // A manifest-first roll that crashed before the first
                // append leaves a listed-but-missing segment: empty.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => {
                    io_errors.fetch_add(1, Ordering::SeqCst);
                    skipped += 1;
                    continue;
                }
            };
            let mut pos = 0usize;
            while let Some(frame) = parse_frame(&bytes, pos) {
                entries.push((
                    frame.key,
                    Loc::Seg {
                        shard: shard as u8,
                        seq,
                        offset: frame.payload_start as u64,
                        len: frame.payload_len as u32,
                        payload_fp: frame.payload_fp,
                    },
                ));
                pos = frame.payload_start + frame.payload_len;
            }
        }
        (entries, skipped)
    };
    // Shards fan out across scanner threads when the fs tolerates
    // concurrent readers (fault-injecting filesystems scan serially so
    // their op schedules replay deterministically) and more than one
    // core is available. Either way the merge below is identical: keys
    // cannot collide across shards, and within a shard the scan order is
    // the append order.
    let scanners = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(SHARD_COUNT);
    let scanned: Vec<ShardScan> = if fs.concurrent_reads() && scanners > 1 {
        std::thread::scope(|scope| {
            let scan_shard = &scan_shard;
            let handles: Vec<_> = (0..scanners)
                .map(|worker| {
                    scope.spawn(move || {
                        (worker..SHARD_COUNT)
                            .step_by(scanners)
                            .map(|shard| (shard, scan_shard(shard)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all: Vec<(usize, ShardScan)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("scanner thread does not panic"))
                .collect();
            all.sort_by_key(|(shard, _)| *shard);
            all.into_iter().map(|(_, r)| r).collect()
        })
    } else {
        (0..SHARD_COUNT).map(scan_shard).collect()
    };
    let mut index: HashMap<Key, Loc> = HashMap::new();
    let mut scan_skipped = 0u64;
    for (entries, skipped) in scanned {
        scan_skipped += skipped;
        for (key, loc) in entries {
            index.entry(key).or_insert(loc);
        }
    }

    // Legacy flat entries: indexed as a fallback tier (segments win).
    for path in fs
        .read_dir(root)
        .map_err(|e| err_at(e, "list store root", root))?
    {
        if let Some(key) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_entry_name)
        {
            index.entry(key).or_insert(Loc::Flat);
        }
    }

    Ok(LogState {
        index,
        shards: vec![ShardState::default(); SHARD_COUNT],
        manifest,
        build_ms: 0.0,
        scan_skipped,
    })
}

/// The quarantine subdirectory compaction moves bad entries into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What one [`ProofStore::compact`] (or [`ProofStore::scrub`]) pass found
/// and did.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Entries examined: segment frames, flat `.cert` files and `.head`
    /// files.
    pub scanned: usize,
    /// Entries that validated clean and were kept (rewritten into fresh
    /// segments, or left in place for heads).
    pub ok: usize,
    /// Stale temporary/probe files deleted (compaction).
    pub tmp_removed: usize,
    /// Quarantined entries that decoded fine but were rejected by the
    /// certificate checker (a subset of `quarantined`).
    pub checker_rejected: usize,
    /// Legacy flat entries rewritten into segments (their flat files are
    /// removed after the new segments are durable).
    pub migrated: usize,
    /// Duplicate frames for already-live keys dropped during the rewrite
    /// (content-addressed, so they held identical payloads).
    pub superseded: usize,
    /// Fresh segments written by the rewrite.
    pub segments_written: usize,
    /// `(file name, reason)` for every entry moved to `quarantine/`.
    pub quarantined: Vec<(String, String)>,
}

impl ScrubReport {
    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "scrubbed {} entries: {} ok, {} quarantined ({} checker-rejected), \
             {} migrated, {} superseded, {} segments written, {} stale tmp files removed",
            self.scanned,
            self.ok,
            self.quarantined.len(),
            self.checker_rejected,
            self.migrated,
            self.superseded,
            self.segments_written,
            self.tmp_removed
        )
    }

    /// The machine-readable report written to `quarantine/report.json`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut entries = String::new();
        for (i, (file, reason)) in self.quarantined.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            let _ = write!(
                entries,
                r#"{{"file":{},"reason":{}}}"#,
                json_str(file),
                json_str(reason)
            );
        }
        format!(
            concat!(
                r#"{{"scanned":{},"ok":{},"tmp_removed":{},"#,
                r#""checker_rejected":{},"migrated":{},"superseded":{},"#,
                r#""segments_written":{},"quarantined":[{}]}}"#
            ),
            self.scanned,
            self.ok,
            self.tmp_removed,
            self.checker_rejected,
            self.migrated,
            self.superseded,
            self.segments_written,
            entries
        )
    }
}

/// Encodes a string as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ProofStore {
    /// Validates every entry in the store, quarantining the bad ones —
    /// an alias for [`ProofStore::compact`], kept for the PR 5 surface
    /// (`rx store scrub`): since the store became log-structured, the
    /// scrub *is* the compaction pass.
    ///
    /// # Errors
    ///
    /// As [`ProofStore::compact`].
    pub fn scrub(
        &self,
        validate: Option<(&CheckedProgram, &ProverOptions)>,
    ) -> io::Result<ScrubReport> {
        self.compact(validate)
    }

    /// Migrates a legacy flat-directory store into segments: exactly a
    /// [`ProofStore::compact`] pass (which rewrites flat entries too);
    /// the report's `migrated` field says how many flat entries moved.
    ///
    /// # Errors
    ///
    /// As [`ProofStore::compact`].
    pub fn migrate(&self) -> io::Result<ScrubReport> {
        self.compact(None)
    }

    /// Compacts the store: validates every segment frame, flat entry and
    /// head record, rewrites the live set into fresh segments, atomically
    /// swaps the manifest, then removes the old segments and migrated
    /// flat files.
    ///
    /// * Corrupt frames are **quarantined** (their bytes are preserved
    ///   under [`QUARANTINE_DIR`], with a reason), and a corrupt frame
    ///   ends its segment's scan — the unparseable tail is quarantined
    ///   whole. Bad flat/head files are moved into quarantine like the
    ///   PR 5 scrub did. Quarantining never deletes evidence: a
    ///   false-positive costs a future miss, not data.
    /// * With `validate` supplied, every entry keyed by that program and
    ///   options is additionally run through the independent certificate
    ///   checker; rejects are quarantined too ("checker rejected").
    /// * Duplicate frames for one key are superseded (content-addressed:
    ///   identical payloads) and dropped.
    /// * Stale `.tmp-*` / `.probe-*` files — debris of crashed writers —
    ///   are deleted.
    /// * When anything was quarantined, a machine-readable report is
    ///   written to a fresh `quarantine/report-NNNN.json` (one per pass,
    ///   never overwritten) and mirrored to `quarantine/report.json`.
    ///
    /// The manifest swap is the commit point: a crash before it leaves
    /// the old manifest and old segments intact (fresh segments are
    /// orphans with duplicate content — harmless); a crash after it
    /// leaves old segments as unreferenced files that the next
    /// compaction sweeps.
    ///
    /// # Errors
    ///
    /// Listing failures, unreadable segments, and failures writing the
    /// fresh segments or the manifest (all with the offending path in the
    /// message). On error the store keeps serving its current index.
    pub fn compact(
        &self,
        validate: Option<(&CheckedProgram, &ProverOptions)>,
    ) -> io::Result<ScrubReport> {
        let _ = self.flush();
        let inner = &*self.inner;
        let quarantine = inner.root.join(QUARANTINE_DIR);
        let mut log = inner.log_lock();
        let mut report = ScrubReport::default();

        // Key → property name, for entries the supplied program can vouch
        // for (same program, property and options fingerprints).
        let mut expected: HashMap<Key, String> = HashMap::new();
        if let Some((checked, options)) = validate {
            let fps = checked.fingerprints();
            let opts_fp = options.fingerprint();
            for prop in &checked.program().properties {
                if let Some(pfp) = fps.property(&prop.name) {
                    expected.insert((fps.program, pfp, opts_fp), prop.name.clone());
                }
            }
        }

        // Validates one decoded payload; Err is the quarantine reason.
        let check_payload =
            |key: Key, payload: &[u8], rejected: &mut usize| -> Result<(), String> {
                let Some(cert) = decode_cert_payload(payload) else {
                    return Err("undecodable certificate payload".to_owned());
                };
                match (validate, expected.get(&key)) {
                    (Some((checked, options)), Some(prop_name)) => {
                        if cert.property() != *prop_name {
                            Err(format!(
                                "filed under `{prop_name}` but certifies `{}`",
                                cert.property()
                            ))
                        } else {
                            crate::check_certificate(checked, &cert, options).map_err(|e| {
                                *rejected += 1;
                                format!("checker rejected: {e}")
                            })
                        }
                    }
                    _ => Ok(()),
                }
            };

        // Pass 1: the root directory — tmp/probe debris, head records,
        // legacy flat entries.
        let mut flat_live: Vec<(Key, Vec<u8>)> = Vec::new();
        let mut flat_files: HashMap<Key, PathBuf> = HashMap::new();
        for path in inner
            .fs
            .read_dir(&inner.root)
            .map_err(|e| err_at(e, "list store root", &inner.root))?
        {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with(".tmp-") || name.starts_with(".probe-") {
                if inner.fs.remove_file(&path).is_ok() {
                    report.tmp_removed += 1;
                }
                continue;
            }
            let is_cert = name.ends_with(".cert");
            let is_head = name.ends_with(".head");
            if !is_cert && !is_head {
                continue; // MANIFEST, shard dirs, quarantine/, user files, …
            }
            report.scanned += 1;
            let verdict: Result<Option<(Key, Vec<u8>)>, String> = match inner.fs.read(&path) {
                Err(e) => {
                    inner.count_io_error();
                    Err(format!("unreadable: {e}"))
                }
                Ok(bytes) => match decode_frame(&bytes) {
                    None => Err(
                        "corrupt frame (bad magic, version, or integrity fingerprint)".to_owned(),
                    ),
                    Some(payload) if is_head => match decode_head(&payload) {
                        Some(_) => Ok(None),
                        None => Err("undecodable head payload".to_owned()),
                    },
                    Some(payload) => match parse_entry_name(name) {
                        None => Err("unparseable entry file name".to_owned()),
                        Some(key) => {
                            match check_payload(key, &payload, &mut report.checker_rejected) {
                                Ok(()) => Ok(Some((key, payload))),
                                Err(reason) => Err(reason),
                            }
                        }
                    },
                },
            };
            match verdict {
                Ok(None) => report.ok += 1, // heads stay in place
                Ok(Some((key, payload))) => {
                    flat_files.insert(key, path.clone());
                    flat_live.push((key, payload));
                }
                Err(reason) => {
                    let moved = inner
                        .fs
                        .create_dir_all(&quarantine)
                        .and_then(|()| inner.fs.rename(&path, &quarantine.join(name)));
                    let outcome = match moved {
                        Ok(()) => reason,
                        Err(e) => format!("{reason}; quarantine move failed: {e}"),
                    };
                    report.quarantined.push((name.to_owned(), outcome));
                }
            }
        }

        // Pass 2: every segment the (merged) manifest knows about.
        let mut live: Vec<(Key, Vec<u8>)> = Vec::new();
        let mut seen: HashSet<Key> = HashSet::new();
        for shard in 0..SHARD_COUNT {
            for &seq in &log.manifest.segments[shard] {
                let path = inner.segment_path(shard, seq);
                let bytes = match inner.fs.read(&path) {
                    Ok(b) => b,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => {
                        inner.count_io_error();
                        return Err(err_at(e, "read segment during compaction", &path));
                    }
                };
                let mut pos = 0usize;
                loop {
                    match parse_frame(&bytes, pos) {
                        Some(frame) => {
                            report.scanned += 1;
                            let end = frame.payload_start + frame.payload_len;
                            if seen.contains(&frame.key) {
                                report.superseded += 1;
                            } else {
                                let payload = &bytes[frame.payload_start..end];
                                match check_payload(
                                    frame.key,
                                    payload,
                                    &mut report.checker_rejected,
                                ) {
                                    Ok(()) => {
                                        seen.insert(frame.key);
                                        live.push((frame.key, payload.to_vec()));
                                    }
                                    Err(reason) => {
                                        let fname = format!(
                                            "shard-{shard:02x}-seg-{seq:08}-off-{pos}.frame"
                                        );
                                        let _ =
                                            inner.fs.create_dir_all(&quarantine).and_then(|()| {
                                                inner.fs.write(
                                                    &quarantine.join(&fname),
                                                    &bytes[pos..end],
                                                )
                                            });
                                        report.quarantined.push((fname, reason));
                                    }
                                }
                            }
                            pos = end;
                        }
                        None => {
                            if pos < bytes.len() {
                                // Unparseable tail: quarantine it whole —
                                // the frames inside it (if any) cannot be
                                // trusted past the corruption point.
                                report.scanned += 1;
                                let fname =
                                    format!("shard-{shard:02x}-seg-{seq:08}-off-{pos}.frame");
                                let _ = inner.fs.create_dir_all(&quarantine).and_then(|()| {
                                    inner.fs.write(&quarantine.join(&fname), &bytes[pos..])
                                });
                                report.quarantined.push((
                                    fname,
                                    "corrupt frame (bad magic, version, bounds, or integrity \
                                     fingerprint)"
                                        .to_owned(),
                                ));
                            }
                            break;
                        }
                    }
                }
            }
        }

        // Merge the flat tier behind the segments (segments win), then fix
        // a deterministic rewrite order.
        let mut migrated_paths: Vec<PathBuf> = Vec::new();
        for (key, payload) in flat_live {
            if seen.contains(&key) {
                report.superseded += 1;
                // The flat duplicate of a segment entry is removed with the
                // old segments below.
                if let Some(p) = flat_files.remove(&key) {
                    migrated_paths.push(p);
                }
            } else {
                seen.insert(key);
                report.migrated += 1;
                if let Some(p) = flat_files.remove(&key) {
                    migrated_paths.push(p);
                }
                live.push((key, payload));
            }
        }
        live.sort_by_key(|(k, _)| *k);
        report.ok += live.len();

        // Pass 3: rewrite the live set into fresh segments, build the new
        // index as we go.
        let mut m2 = Manifest::empty();
        m2.next_seq = log.manifest.next_seq;
        let mut new_index: HashMap<Key, Loc> = HashMap::new();
        for shard in 0..SHARD_COUNT {
            let mut seg_bytes: Vec<u8> = Vec::new();
            let mut seg_locs: Vec<(Key, u64, u32, u64)> = Vec::new();
            let flush_seg = |seg_bytes: &mut Vec<u8>,
                             seg_locs: &mut Vec<(Key, u64, u32, u64)>,
                             m2: &mut Manifest,
                             new_index: &mut HashMap<Key, Loc>,
                             report: &mut ScrubReport|
             -> io::Result<()> {
                if seg_bytes.is_empty() {
                    return Ok(());
                }
                let seq = m2.next_seq;
                let dir = inner.root.join(shard_dir_name(shard));
                inner
                    .fs
                    .create_dir_all(&dir)
                    .map_err(|e| err_at(e, "create shard directory", &dir))?;
                inner.write_atomic(&inner.segment_path(shard, seq), seg_bytes)?;
                for (key, offset, len, payload_fp) in seg_locs.drain(..) {
                    new_index.insert(
                        key,
                        Loc::Seg {
                            shard: shard as u8,
                            seq,
                            offset,
                            len,
                            payload_fp,
                        },
                    );
                }
                m2.segments[shard].push(seq);
                m2.next_seq = seq + 1;
                report.segments_written += 1;
                seg_bytes.clear();
                Ok(())
            };
            for (key, payload) in live.iter().filter(|(k, _)| shard_of(*k) == shard) {
                let (frame, payload_fp) = build_frame(*key, payload);
                if !seg_bytes.is_empty()
                    && seg_bytes.len() as u64 + frame.len() as u64 > SEGMENT_CAP_BYTES
                {
                    flush_seg(
                        &mut seg_bytes,
                        &mut seg_locs,
                        &mut m2,
                        &mut new_index,
                        &mut report,
                    )?;
                }
                let offset = seg_bytes.len() as u64 + FRAME_HEADER as u64;
                seg_locs.push((*key, offset, payload.len() as u32, payload_fp));
                seg_bytes.extend_from_slice(&frame);
            }
            flush_seg(
                &mut seg_bytes,
                &mut seg_locs,
                &mut m2,
                &mut new_index,
                &mut report,
            )?;
        }

        // Pass 4: the commit point — swap the manifest.
        inner.write_manifest(&m2)?;

        // Pass 5: sweep what the new manifest no longer references — old
        // segments, shard-dir debris, migrated flat files. Best-effort:
        // leftovers are orphans the next compaction sweeps.
        for shard in 0..SHARD_COUNT {
            let dir = inner.root.join(shard_dir_name(shard));
            if !inner.fs.exists(&dir) {
                continue;
            }
            let Ok(listing) = inner.fs.read_dir(&dir) else {
                continue;
            };
            for path in listing {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if name.starts_with(".tmp-") {
                    if inner.fs.remove_file(&path).is_ok() {
                        report.tmp_removed += 1;
                    }
                    continue;
                }
                match parse_segment_name(name) {
                    Some(seq) if !m2.segments[shard].contains(&seq) => {
                        let _ = inner.fs.remove_file(&path);
                    }
                    _ => {}
                }
            }
        }
        for path in migrated_paths {
            let _ = inner.fs.remove_file(&path);
        }

        // Pass 6: serve the rewritten store.
        log.manifest = m2;
        log.index = new_index;
        log.shards = vec![ShardState::default(); SHARD_COUNT];
        drop(log);

        if !report.quarantined.is_empty() {
            // Best-effort: the report is advisory; a failed write must not
            // fail the pass that just cleaned the store. Each pass gets
            // its own sequenced `report-NNNN.json` (earlier reports are
            // evidence — a second pass must not destroy the first's), and
            // `report.json` is rewritten as a copy of the latest.
            let _ = inner.fs.create_dir_all(&quarantine).and_then(|()| {
                let seq = (0..u32::MAX)
                    .map(|i| quarantine.join(format!("report-{i:04}.json")))
                    .find(|p| !inner.fs.exists(p))
                    .expect("fewer than u32::MAX scrub reports");
                inner.fs.write(&seq, report.render_json().as_bytes())?;
                inner.fs.write(
                    &quarantine.join("report.json"),
                    report.render_json().as_bytes(),
                )
            });
        }
        Ok(report)
    }
}

/// A snapshot of the store's shape and health (`rx store stat`).
#[derive(Debug, Clone, Default)]
pub struct StoreStat {
    /// Keys served from segment logs.
    pub entries: usize,
    /// Keys still served from legacy flat files.
    pub flat_entries: usize,
    /// Head records under the root.
    pub heads: usize,
    /// Shards (fixed by the format).
    pub shards: usize,
    /// Live segment files.
    pub segments: usize,
    /// Total bytes across live segment files.
    pub segment_bytes: u64,
    /// Total bytes across legacy flat entry files.
    pub flat_bytes: u64,
    /// Total bytes across head files.
    pub head_bytes: u64,
    /// Wall-clock cost of the open-time index build, milliseconds.
    pub index_build_ms: f64,
    /// Segments skipped (unreadable) during the open-time index build.
    pub scan_skipped: u64,
    /// Certificates currently held by the LRU hot tier.
    pub hot_entries: usize,
}

impl StoreStat {
    /// The human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        format!(
            "entries        {} in segments, {} flat, {} heads\n\
             segments       {} across {} shards ({} bytes)\n\
             flat bytes     {}\n\
             head bytes     {}\n\
             index build    {:.3} ms ({} segments skipped)\n\
             hot tier       {} certificates\n",
            self.entries,
            self.flat_entries,
            self.heads,
            self.segments,
            self.shards,
            self.segment_bytes,
            self.flat_bytes,
            self.head_bytes,
            self.index_build_ms,
            self.scan_skipped,
            self.hot_entries
        )
    }

    /// The `--json` rendering.
    pub fn render_json(&self) -> String {
        format!(
            concat!(
                "{{\n  \"entries\": {},\n  \"flat_entries\": {},\n  \"heads\": {},\n",
                "  \"shards\": {},\n  \"segments\": {},\n  \"segment_bytes\": {},\n",
                "  \"flat_bytes\": {},\n  \"head_bytes\": {},\n  \"index_build_ms\": {:.3},\n",
                "  \"scan_skipped\": {},\n  \"hot_entries\": {}\n}}\n"
            ),
            self.entries,
            self.flat_entries,
            self.heads,
            self.shards,
            self.segments,
            self.segment_bytes,
            self.flat_bytes,
            self.head_bytes,
            self.index_build_ms,
            self.scan_skipped,
            self.hot_entries
        )
    }
}

impl ProofStore {
    /// Measures the store: entry/segment/shard counts, on-disk bytes and
    /// the open-time index build cost.
    ///
    /// # Errors
    ///
    /// Only if the store root cannot be listed; unreadable individual
    /// files contribute zero bytes.
    pub fn stat(&self) -> io::Result<StoreStat> {
        let inner = &*self.inner;
        let log = inner.log_lock();
        let mut stat = StoreStat {
            shards: SHARD_COUNT,
            index_build_ms: log.build_ms,
            scan_skipped: log.scan_skipped,
            hot_entries: inner.lru_lock().map.len(),
            ..StoreStat::default()
        };
        for loc in log.index.values() {
            match loc {
                Loc::Seg { .. } => stat.entries += 1,
                Loc::Flat => stat.flat_entries += 1,
            }
        }
        for shard in 0..SHARD_COUNT {
            for &seq in &log.manifest.segments[shard] {
                let path = inner.segment_path(shard, seq);
                if let Ok(len) = inner.fs.file_len(&path) {
                    stat.segments += 1;
                    stat.segment_bytes += len;
                }
            }
        }
        for path in inner
            .fs
            .read_dir(&inner.root)
            .map_err(|e| err_at(e, "list store root", &inner.root))?
        {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(".cert") {
                stat.flat_bytes += inner.fs.file_len(&path).unwrap_or(0);
            } else if name.ends_with(".head") {
                stat.heads += 1;
                stat.head_bytes += inner.fs.file_len(&path).unwrap_or(0);
            }
        }
        Ok(stat)
    }
}

/// The result of a store-backed verification run.
#[derive(Debug)]
pub struct StoreReport {
    /// The underlying incremental report ([`IncrementalReport::reused`]
    /// counts certificates served from the store and validated).
    pub report: IncrementalReport,
    /// Previous certificates found in the store and offered to the planner.
    pub loaded: usize,
    /// Entries written back after this run.
    pub saved: usize,
}

/// Verifies every property of `new`, reusing proofs from `store` where the
/// dependency analysis allows, and persists this run's certificates back.
///
/// Candidate certificates come from two places: **exact** entries keyed by
/// the current program fingerprint (hit when editing back to a previously
/// proved version), and the **previous** run's entries found via the head
/// record (planned onto the full/per-case/re-prove ladder exactly like an
/// in-memory [`crate::reverify`]). Every candidate taken — wholesale or
/// spliced — must pass [`crate::check_certificate`] against `new` before it
/// is reported as reused; rejects are re-proved from scratch.
///
/// Persistence is best-effort: I/O failures while writing back cost future
/// misses, not verification failures.
///
/// # Errors
///
/// Proof-search failures are reported per-property inside the report;
/// errors are reserved for malformed inputs (impossible here: loaded
/// candidates are filtered before planning).
pub fn verify_with_store(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    jobs: usize,
) -> Result<StoreReport, VerifyError> {
    verify_with_store_observed(new, options, store, jobs, None)
}

/// [`verify_with_store`] with a per-property [`crate::incremental::PropObserver`]
/// invoked as each outcome is decided (used by the session engine's
/// instrumentation; `None` is exactly `verify_with_store`).
pub fn verify_with_store_observed(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    jobs: usize,
    observer: Option<crate::incremental::PropObserver<'_>>,
) -> Result<StoreReport, VerifyError> {
    let previous = load_candidates(new, options, store);
    let loaded = previous.len();
    let report = crate::incremental::reverify_core(&previous, new, options, jobs, true, observer)?;
    let saved = persist_outcomes(new, options, store, &report.outcomes);
    Ok(StoreReport {
        report,
        loaded,
        saved,
    })
}

/// The **plan** half of [`verify_with_store`]: loads every certificate the
/// store can offer for `new`'s properties — exact entries keyed by the
/// current program fingerprint, then the previous run's entries via the
/// head record — filtered down to decodable, correctly-filed candidates.
///
/// The returned slice feeds the reuse planner
/// ([`crate::reverify_jobs_observed`] with validation, or
/// [`crate::DepGraph`] directly); nothing in it is trusted until it passes
/// the independent checker.
pub fn load_candidates(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
) -> Vec<(String, Certificate)> {
    let fps = new.fingerprints();
    let opts_fp = options.fingerprint();
    let head = store.load_head(&new.program().name, opts_fp);

    let mut previous: Vec<(String, Certificate)> = Vec::new();
    for prop in &new.program().properties {
        let name = &prop.name;
        let exact = fps
            .property(name)
            .and_then(|pfp| store.load(fps.program, pfp, opts_fp));
        let candidate = exact.or_else(|| {
            let head = head.as_ref()?;
            if head.program == fps.program {
                // Same program: the exact lookup above already covered it.
                return None;
            }
            let (_, old_pfp) = head.properties.iter().find(|(n, _)| n == name)?;
            store.load(head.program, *old_pfp, opts_fp)
        });
        // A corrupt-but-decodable entry could certify a different property;
        // filter it here so planning (which treats that as a caller bug in
        // the in-memory API) just sees a miss.
        if let Some(cert) = candidate {
            if cert.property() == *name {
                // The planner wants owned certificates; one deep clone per
                // candidate per run, off the hot lookup path.
                previous.push((name.clone(), (*cert).clone()));
            }
        }
    }
    previous
}

/// The **persist** half of [`verify_with_store`]: writes this run's
/// certificates and the program's head record back to the store, group-
/// committing the whole batch with one [`ProofStore::flush`], and returns
/// how many entries are durably saved (batch entries rolled back by a
/// failed commit are subtracted).
///
/// Best-effort by design: I/O failures cost future misses, never
/// verification failures. Outcomes are persisted serially in declaration
/// order, so serial and `--jobs N` runs append identical bytes.
pub fn persist_outcomes(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    outcomes: &[(String, Outcome)],
) -> usize {
    let fps = new.fingerprints();
    let opts_fp = options.fingerprint();
    let dropped_before = store.dropped_entries();
    let mut saved = 0usize;
    for (name, outcome) in outcomes {
        let (Some(cert), Some(pfp)) = (outcome.certificate(), fps.property(name)) else {
            continue;
        };
        if store.save(fps.program, pfp, opts_fp, cert).is_ok() {
            saved += 1;
        }
    }
    // The group commit for everything this run appended. A failed shard
    // rolls its batch back; those entries were counted saved above, so the
    // dropped delta comes back off the total.
    let _ = store.flush();
    let head = StoreHead {
        program: fps.program,
        properties: new
            .program()
            .properties
            .iter()
            .filter_map(|p| Some((p.name.clone(), fps.property(&p.name)?)))
            .collect(),
    };
    let _ = store.save_head(&new.program().name, opts_fp, &head);
    let dropped = usize::try_from(store.dropped_entries().saturating_sub(dropped_before))
        .unwrap_or(usize::MAX);
    saved.saturating_sub(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_round_trip() {
        let mut m = Manifest::empty();
        m.segments[3] = vec![0, 5, 9];
        m.segments[15] = vec![2];
        m.next_seq = 10;
        let back = dec_manifest(&enc_manifest(&m)).expect("decodes");
        assert_eq!(back.segments, m.segments);
        assert_eq!(back.next_seq, m.next_seq);
        assert!(dec_manifest(&enc_manifest(&m)[1..]).is_none());
    }

    #[test]
    fn frames_parse_back_and_reject_corruption() {
        let key = (Fp(1), Fp(2), Fp(3));
        let (frame, pfp) = build_frame(key, b"payload-bytes");
        let f = parse_frame(&frame, 0).expect("parses");
        assert_eq!(f.key, key);
        assert_eq!(f.payload_fp, pfp);
        assert_eq!(
            &frame[f.payload_start..f.payload_start + f.payload_len],
            b"payload-bytes"
        );
        // Truncations and bit flips all fail to parse.
        for cut in 0..frame.len() {
            assert!(parse_frame(&frame[..cut], 0).is_none(), "cut {cut}");
        }
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            match parse_frame(&bad, 0) {
                // The key bytes carry no checksum of their own: a flip there
                // yields a well-formed frame under a key nobody looks up — a
                // harmless miss, not an escape.
                Some(f) if (8..32).contains(&i) => assert_ne!(f.key, key, "flip {i}"),
                Some(_) => panic!("flip {i} parsed"),
                None => assert!(!(8..32).contains(&i), "flip {i} rejected"),
            }
        }
    }

    #[test]
    fn flat_entry_names_parse_back() {
        let key = (Fp(0xdead), Fp(1), Fp(u64::MAX));
        let name = format!("{}-{}-{}.cert", key.0, key.1, key.2);
        assert_eq!(parse_entry_name(&name), Some(key));
        assert_eq!(parse_entry_name("head-x-y.head"), None);
        assert_eq!(parse_entry_name("junk.cert"), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let checked = reflex_kernels::car::checked();
        let options = ProverOptions::default();
        let (_, outcome) = crate::prove_all(&checked, &options).remove(0);
        let cert = Arc::new(outcome.certificate().expect("proved").clone());
        let mut lru = Lru::default();
        for i in 0..LRU_CAPACITY {
            lru.insert((Fp(i as u64), Fp(0), Fp(0)), Arc::clone(&cert));
        }
        // Touch key 0 so key 1 is the coldest.
        assert!(lru.get(&(Fp(0), Fp(0), Fp(0))).is_some());
        lru.insert((Fp(999_999), Fp(0), Fp(0)), Arc::clone(&cert));
        assert_eq!(lru.map.len(), LRU_CAPACITY);
        assert!(lru.get(&(Fp(1), Fp(0), Fp(0))).is_none(), "coldest evicted");
        assert!(lru.get(&(Fp(0), Fp(0), Fp(0))).is_some());
    }
}
