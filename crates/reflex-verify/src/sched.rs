//! A hand-rolled work-stealing pool over pre-enumerated, independent
//! proof obligations.
//!
//! Proof search fans out at two levels: properties across a program, and
//! inductive cases within a property. Both reduce to the same shape — a
//! fixed list of independent tasks whose results must be collected *in
//! index order* so outcomes and certificates are identical to a serial
//! run regardless of thread timing.
//!
//! [`run_indexed`] implements that shape as an injector/stealer pool (no
//! external deps — crossbeam is not vendored):
//!
//! * a global **injector** hands out contiguous chunks of indices via one
//!   atomic cursor, amortizing contention to one fetch-add per chunk;
//! * each worker drains its chunk from a **local deque**; when both its
//!   deque and the injector are empty it **steals half** of the richest
//!   victim's remaining work, so a worker stuck behind one expensive
//!   obligation cannot strand the tail of its chunk while others idle —
//!   the "one huge property serializes a worker" failure mode of the old
//!   per-property fan-out;
//! * every result lands in its index's slot; the caller reads the slots
//!   in order. Scheduling decides only *who* computes a result, never
//!   *what* it is, which is the whole determinism argument (DESIGN.md
//!   §6.9).
//!
//! Panics on worker threads propagate to the caller (the scope joins the
//! workers), preserving `std::thread::scope` semantics; callers that want
//! panic isolation wrap the task body in
//! [`crate::options::catch_crash`] themselves.
//!
//! The calling thread's symbolic session-stats scope
//! ([`reflex_symbolic::with_session_stats`]) is inherited by every worker,
//! so per-session counters survive the hop onto pool threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `run(i)` for every `i in 0..count` on `workers` threads and
/// returns the results in index order. `workers <= 1` (or `count <= 1`)
/// degenerates to a serial loop on the calling thread.
pub fn run_indexed<R, F>(workers: usize, count: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.min(count).max(1);
    if workers == 1 {
        return (0..count).map(run).collect();
    }

    // Chunk size: small enough that stealing has something to rebalance,
    // large enough to amortize the injector cursor. ~8 chunks per worker.
    let chunk = (count / (workers * 8)).max(1);
    let injector = AtomicUsize::new(0);
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();

    let pop_local = |me: usize| -> Option<usize> {
        locals[me].lock().expect("sched local poisoned").pop_front()
    };
    let refill = |me: usize| -> Option<usize> {
        let start = injector.fetch_add(chunk, Ordering::Relaxed);
        if start >= count {
            return None;
        }
        let end = (start + chunk).min(count);
        let mut local = locals[me].lock().expect("sched local poisoned");
        local.extend(start + 1..end);
        Some(start)
    };
    let steal = |me: usize| -> Option<usize> {
        // Victim with the most queued work; take the back half of its
        // deque (the part it would reach last).
        let victim = (0..workers)
            .filter(|&v| v != me)
            .max_by_key(|&v| locals[v].lock().expect("sched local poisoned").len())?;
        let mut theirs = locals[victim].lock().expect("sched local poisoned");
        let n = theirs.len();
        if n == 0 {
            return None;
        }
        let take = n.div_ceil(2);
        let stolen: Vec<usize> = (0..take).filter_map(|_| theirs.pop_back()).collect();
        drop(theirs);
        let (&first, rest) = stolen.split_first()?;
        let mut mine = locals[me].lock().expect("sched local poisoned");
        mine.extend(rest.iter().copied());
        Some(first)
    };

    // The session-stats scope is thread-local; carry the caller's onto
    // each worker so scoped counters keep counting across the pool.
    let session = reflex_symbolic::current_session_stats();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let run = &run;
            let slots = &slots;
            let pop_local = &pop_local;
            let refill = &refill;
            let steal = &steal;
            let session = session.clone();
            let work = move || {
                while let Some(i) = pop_local(me).or_else(|| refill(me)).or_else(|| steal(me)) {
                    *slots[i].lock().expect("sched slot poisoned") = Some(run(i));
                }
            };
            scope.spawn(move || match session {
                Some(stats) => reflex_symbolic::with_session_stats(stats, work),
                None => work(),
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sched slot poisoned")
                .expect("every obligation slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 17] {
            let out = run_indexed(workers, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = (0..257).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let _ = run_indexed(8, 257, |i| ran[i].fetch_add(1, Ordering::SeqCst));
        assert!(ran.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_counts_work() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn workers_inherit_the_callers_session_stats_scope() {
        use reflex_ast::{BinOp, Ty};
        use reflex_symbolic::{Solver, SymCtx, SymKind, Term};
        let stats = reflex_symbolic::SymSessionStats::new();
        reflex_symbolic::with_session_stats(std::sync::Arc::clone(&stats), || {
            let _ = run_indexed(4, 16, |i| {
                let mut ctx = SymCtx::new();
                let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
                let mut s = Solver::new();
                s.assert_term(Term::bin(BinOp::Eq, x.clone(), Term::lit(i as i64)), true);
                s.entails(&Term::bin(BinOp::Eq, x, Term::lit(i as i64)), true)
            });
        });
        assert!(
            stats.memo_queries() >= 16,
            "queries issued on pool workers must land in the scoped session: {}",
            stats.memo_queries()
        );
    }

    #[test]
    fn uneven_task_costs_rebalance() {
        // One pathological task; the rest must not wait behind it.
        let out = run_indexed(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out.len(), 64);
    }
}
