//! Injectable filesystem for the proof store.
//!
//! PR 2 gave the *runtime* deterministic fault injection (`FaultPlan` /
//! `FaultyWorld`); this module applies the same discipline to the
//! *verifier's* environment. Everything the [`crate::ProofStore`] does to
//! disk goes through a [`VerifyFs`], so the chaos harness and the
//! robustness tests can replay a seeded schedule of I/O faults — ENOSPC,
//! short writes, torn (never-synced) writes, read EIO, fsync and rename
//! failures — against the real store code, byte for byte, and assert that
//! every one degrades to a cache miss or a reported error, never a wrong
//! certificate.
//!
//! Two implementations:
//!
//! * [`RealFs`] — the actual filesystem (the default everywhere);
//! * [`FaultyFs`] — wraps the real filesystem and injects faults from a
//!   deterministic [`FsFaultPlan`]: per-operation decisions are a pure
//!   function of `(seed, operation index)` via the same FNV fingerprinting
//!   the rest of the system uses, so a seed fully reproduces a schedule.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The filesystem operations the proof store needs. Implementations must
/// be shareable across the session's worker threads.
pub trait VerifyFs: fmt::Debug + Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Writes a whole file (create or truncate).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends bytes to the end of a file, creating it if missing — the
    /// log-structured store's segment writer.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Reads exactly `len` bytes starting at byte `offset`.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Truncates a file to exactly `len` bytes (discarding the tail).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// The file's current length in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Flushes a previously written file's contents to durable storage
    /// (`sync_all`). A failure here means the bytes may not survive a
    /// crash — callers must treat the file as unwritten.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// The entries of a directory (files and subdirectories), sorted by
    /// file name so every caller iterates deterministically.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Whether callers may issue reads from multiple threads at once.
    /// Fault-injecting filesystems return `false`: their schedules key on
    /// a serial operation count, and concurrent reads would make fault
    /// placement nondeterministic. Bulk readers (the store's open-time
    /// index scan) fan out only when this is `true`.
    fn concurrent_reads(&self) -> bool {
        true
    }
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl VerifyFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut f = fs::File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The injectable fault classes, mirroring what flaky disks actually do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsFault {
    /// A read fails with EIO-style `Other`.
    ReadEio,
    /// A write fails up front with an ENOSPC-style error; nothing lands.
    WriteEnospc,
    /// A short write: a prefix of the bytes lands, then the write errors.
    WriteShort,
    /// A torn write: a prefix of the bytes lands and the write *reports
    /// success* — the loss only surfaces when the file is fsynced (or,
    /// if the caller skips fsync, never, which is exactly the
    /// crash-between-write-and-rename window the store must close).
    WriteTorn,
    /// `sync_all` fails; the file's contents must be treated as lost.
    SyncFail,
    /// The atomic rename fails.
    RenameFail,
}

/// Which operation class a fault decision is being made for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOp {
    /// [`VerifyFs::read`].
    Read,
    /// [`VerifyFs::write`].
    Write,
    /// [`VerifyFs::sync`].
    Sync,
    /// [`VerifyFs::rename`].
    Rename,
}

/// A deterministic schedule of filesystem faults.
///
/// Like the runtime's `FaultPlan`, decisions are stateless functions of
/// the plan and an operation counter — no RNG state to keep in sync, so a
/// seed printed in a failing test reproduces the schedule exactly.
#[derive(Debug, Clone)]
pub enum FsFaultPlan {
    /// Inject nothing (useful as a baseline in harnesses).
    None,
    /// Fault each eligible operation with probability `rate_ppm` parts
    /// per million, derived from `(seed, operation index)`.
    Random {
        /// Schedule seed.
        seed: u64,
        /// Fault probability in parts per million (1_000_000 = always).
        rate_ppm: u32,
    },
    /// Fault exactly the listed operations: the `nth` (0-based) call of
    /// each [`FsOp`] class gets the given fault.
    Scripted(Vec<(FsOp, u64, FsFault)>),
}

impl FsFaultPlan {
    /// The fault (if any) for the `global`-th operation overall, which is
    /// the `of_kind`-th operation of class `op`.
    fn decide(&self, op: FsOp, global: u64, of_kind: u64) -> Option<FsFault> {
        match self {
            FsFaultPlan::None => None,
            FsFaultPlan::Random { seed, rate_ppm } => {
                // The roll lives in `reflex-rng` (shared with the
                // simulator's other injectors); it reproduces this
                // module's original FNV derivation bit for bit, pinned by
                // `fault_roll_matches_the_original_fp_hasher_derivation`.
                let roll = reflex_rng::fault_roll(*seed, global);
                if roll % 1_000_000 >= u64::from(*rate_ppm) {
                    return None;
                }
                // A second, independent draw picks the flavor.
                let flavor = (roll / 1_000_000) % 3;
                Some(match op {
                    FsOp::Read => FsFault::ReadEio,
                    FsOp::Write => match flavor {
                        0 => FsFault::WriteEnospc,
                        1 => FsFault::WriteShort,
                        _ => FsFault::WriteTorn,
                    },
                    FsOp::Sync => FsFault::SyncFail,
                    FsOp::Rename => FsFault::RenameFail,
                })
            }
            FsFaultPlan::Scripted(steps) => steps
                .iter()
                .find(|(o, nth, _)| *o == op && *nth == of_kind)
                .map(|(_, _, fault)| *fault),
        }
    }
}

#[derive(Debug)]
struct FaultyInner {
    real: RealFs,
    plan: FsFaultPlan,
    /// When cleared, the filesystem behaves perfectly — the harness's
    /// "disk recovered" switch.
    active: AtomicBool,
    ops: AtomicU64,
    per_kind: Mutex<HashMap<FsOp, u64>>,
    /// Files whose last write was torn: their bytes must be considered
    /// lost until a successful re-write, so fsync on them fails.
    torn: Mutex<HashSet<PathBuf>>,
    injected: AtomicU64,
}

/// A [`VerifyFs`] over the real filesystem that injects deterministic
/// faults from an [`FsFaultPlan`]. Clones share one schedule and one
/// operation counter.
#[derive(Debug, Clone)]
pub struct FaultyFs {
    inner: Arc<FaultyInner>,
}

impl FaultyFs {
    /// A faulty filesystem following `plan`.
    pub fn new(plan: FsFaultPlan) -> FaultyFs {
        FaultyFs {
            inner: Arc::new(FaultyInner {
                real: RealFs,
                plan,
                active: AtomicBool::new(true),
                ops: AtomicU64::new(0),
                per_kind: Mutex::new(HashMap::new()),
                torn: Mutex::new(HashSet::new()),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// A random schedule: each eligible operation faults with probability
    /// `rate_ppm` parts per million, derived from the seed.
    pub fn seeded(seed: u64, rate_ppm: u32) -> FaultyFs {
        FaultyFs::new(FsFaultPlan::Random { seed, rate_ppm })
    }

    /// Stops injecting faults — the disk has "recovered". Torn files stay
    /// torn until rewritten; the schedule's counters keep advancing so a
    /// later [`FaultyFs::unheal`] resumes the same schedule.
    pub fn heal(&self) {
        self.inner.active.store(false, Ordering::SeqCst);
    }

    /// Resumes injecting faults after [`FaultyFs::heal`].
    pub fn unheal(&self) {
        self.inner.active.store(true, Ordering::SeqCst);
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::SeqCst)
    }

    /// The fault (if any) to inject for the next operation of class `op`.
    fn next_fault(&self, op: FsOp) -> Option<FsFault> {
        let inner = &*self.inner;
        let global = inner.ops.fetch_add(1, Ordering::SeqCst);
        let of_kind = {
            let mut per_kind = inner.per_kind.lock().expect("per-kind counters poisoned");
            let slot = per_kind.entry(op).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        if !inner.active.load(Ordering::SeqCst) {
            return None;
        }
        let fault = inner.plan.decide(op, global, of_kind);
        if fault.is_some() {
            inner.injected.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }

    fn mark_torn(&self, path: &Path, torn: bool) {
        let mut set = self.inner.torn.lock().expect("torn set poisoned");
        if torn {
            set.insert(path.to_path_buf());
        } else {
            set.remove(path);
        }
    }

    fn is_torn(&self, path: &Path) -> bool {
        self.inner
            .torn
            .lock()
            .expect("torn set poisoned")
            .contains(path)
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

impl VerifyFs for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault(FsOp::Read) {
            Some(FsFault::ReadEio) => Err(injected("EIO on read")),
            _ => self.inner.real.read(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault(FsOp::Write) {
            Some(FsFault::WriteEnospc) => Err(injected("ENOSPC")),
            Some(FsFault::WriteShort) => {
                let _ = self.inner.real.write(path, &bytes[..bytes.len() / 2]);
                self.mark_torn(path, true);
                Err(injected("short write"))
            }
            Some(FsFault::WriteTorn) => {
                // The write *claims* success but only a prefix is durable:
                // the loss surfaces at fsync, or — if the caller skips
                // fsync — never, until the truncated frame is read back.
                self.inner.real.write(path, &bytes[..bytes.len() / 2])?;
                self.mark_torn(path, true);
                Ok(())
            }
            _ => {
                self.inner.real.write(path, bytes)?;
                self.mark_torn(path, false);
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Appends share the write fault class: the same schedules that tear
        // whole-file writes tear segment appends, with the torn prefix
        // confined to the appended bytes (the already-durable head of the
        // segment is untouched, exactly like a real partial append).
        match self.next_fault(FsOp::Write) {
            Some(FsFault::WriteEnospc) => Err(injected("ENOSPC on append")),
            Some(FsFault::WriteShort) => {
                let _ = self.inner.real.append(path, &bytes[..bytes.len() / 2]);
                self.mark_torn(path, true);
                Err(injected("short append"))
            }
            Some(FsFault::WriteTorn) => {
                self.inner.real.append(path, &bytes[..bytes.len() / 2])?;
                self.mark_torn(path, true);
                Ok(())
            }
            // Unlike `write`, a clean append does NOT clear an earlier torn
            // mark: the lost bytes are still in the middle of the file, and
            // only truncating them away (or rewriting the whole file) makes
            // its contents trustworthy again.
            _ => self.inner.real.append(path, bytes),
        }
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        match self.next_fault(FsOp::Read) {
            Some(FsFault::ReadEio) => Err(injected("EIO on positioned read")),
            _ => self.inner.real.read_at(path, offset, len),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        // Truncation is how the store discards an untrusted (possibly torn)
        // tail after a failed append or fsync; once the tail is gone the
        // surviving prefix is exactly the bytes that were last synced, so
        // the torn mark is cleared.
        self.inner.real.truncate(path, len)?;
        self.mark_torn(path, false);
        Ok(())
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.real.file_len(path)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        if self.is_torn(path) {
            // Syncing a torn file reports the lost bytes regardless of the
            // schedule: that is fsync doing its one job.
            return Err(injected("fsync surfaced a torn write"));
        }
        match self.next_fault(FsOp::Sync) {
            Some(FsFault::SyncFail) => Err(injected("fsync failure")),
            _ => self.inner.real.sync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault(FsOp::Rename) {
            Some(FsFault::RenameFail) => Err(injected("rename failure")),
            _ => {
                self.inner.real.rename(from, to)?;
                if self.is_torn(from) {
                    self.mark_torn(from, false);
                    self.mark_torn(to, true);
                }
                Ok(())
            }
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.mark_torn(path, false);
        self.inner.real.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.real.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.real.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.real.exists(path)
    }

    fn concurrent_reads(&self) -> bool {
        // Fault schedules are keyed on a serial op count; concurrent
        // readers would race for positions and break replay determinism.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_deterministic_per_seed() {
        let plan = FsFaultPlan::Random {
            seed: 7,
            rate_ppm: 200_000,
        };
        let a: Vec<Option<FsFault>> = (0..200).map(|i| plan.decide(FsOp::Write, i, i)).collect();
        let b: Vec<Option<FsFault>> = (0..200).map(|i| plan.decide(FsOp::Write, i, i)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(Option::is_some), "rate 20% must fire in 200");
        assert!(a.iter().any(Option::is_none), "rate 20% must also pass");
    }

    #[test]
    fn fault_roll_matches_the_original_fp_hasher_derivation() {
        // The roll used to be computed inline with reflex-ast's FpHasher;
        // recorded chaos seeds must keep their schedules now that it
        // lives in reflex-rng.
        for seed in [0u64, 7, 0xBEEF] {
            for global in 0..512u64 {
                let mut h = reflex_ast::fingerprint::FpHasher::new();
                h.write_str("fs-fault");
                h.write(&seed.to_le_bytes());
                h.write(&global.to_le_bytes());
                assert_eq!(
                    reflex_rng::fault_roll(seed, global),
                    h.finish().0,
                    "seed {seed} op {global}"
                );
            }
        }
    }

    #[test]
    fn scripted_faults_hit_the_nth_call_of_their_kind() {
        let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
            FsOp::Write,
            1,
            FsFault::WriteEnospc,
        )]));
        let dir = std::env::temp_dir().join(format!("rx-vfs-test-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("a");
        assert!(fs.write(&p, b"first").is_ok());
        assert!(fs.write(&p, b"second").is_err(), "second write faults");
        assert!(fs.write(&p, b"third").is_ok());
        assert_eq!(fs.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_report_success_but_fail_fsync() {
        let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
            FsOp::Write,
            0,
            FsFault::WriteTorn,
        )]));
        let dir = std::env::temp_dir().join(format!("rx-vfs-torn-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("frame");
        assert!(fs.write(&p, b"0123456789").is_ok(), "torn write lies");
        assert_eq!(fs.read(&p).unwrap(), b"01234", "only a prefix landed");
        assert!(fs.sync(&p).is_err(), "fsync surfaces the loss");
        // A healthy rewrite clears the torn state.
        assert!(fs.write(&p, b"ok").is_ok());
        assert!(fs.sync(&p).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_appends_stay_torn_until_truncated() {
        let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
            FsOp::Write,
            1,
            FsFault::WriteTorn,
        )]));
        let dir = std::env::temp_dir().join(format!("rx-vfs-append-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("seg");
        assert!(fs.append(&p, b"aaaa").is_ok());
        assert!(fs.sync(&p).is_ok(), "clean append syncs");
        assert!(fs.append(&p, b"bbbb").is_ok(), "torn append lies");
        assert_eq!(fs.read(&p).unwrap(), b"aaaabb", "half the append landed");
        assert!(fs.sync(&p).is_err(), "fsync surfaces the torn append");
        // A later clean append does not absolve the torn middle…
        assert!(fs.append(&p, b"cc").is_ok());
        assert!(fs.sync(&p).is_err(), "file still untrustworthy");
        // …but truncating the untrusted tail back to the durable prefix does.
        assert!(fs.truncate(&p, 4).is_ok());
        assert!(fs.sync(&p).is_ok());
        assert_eq!(fs.read(&p).unwrap(), b"aaaa");
        assert_eq!(fs.file_len(&p).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn positioned_reads_share_the_read_fault_class() {
        let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
            FsOp::Read,
            0,
            FsFault::ReadEio,
        )]));
        let dir = std::env::temp_dir().join(format!("rx-vfs-readat-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("x");
        fs.write(&p, b"0123456789").unwrap();
        assert!(fs.read_at(&p, 2, 4).is_err(), "first read faults");
        assert_eq!(fs.read_at(&p, 2, 4).unwrap(), b"2345");
        assert_eq!(fs.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn healing_stops_injection() {
        let fs = FaultyFs::seeded(3, 1_000_000);
        let dir = std::env::temp_dir().join(format!("rx-vfs-heal-{}", std::process::id()));
        fs.create_dir_all(&dir).unwrap();
        let p = dir.join("x");
        assert!(fs.write(&p, b"abcd").is_err() || fs.is_torn(&p));
        fs.heal();
        assert!(fs.write(&p, b"abcd").is_ok());
        assert!(fs.sync(&p).is_ok());
        assert_eq!(fs.read(&p).unwrap(), b"abcd");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
