//! Pushbutton verification for Reflex programs — the paper's core
//! contribution (§5), reproduced as a proof-search engine emitting
//! machine-checkable certificates.
//!
//! * [`prove`] / [`prove_all`] — fully automatic proof search for trace
//!   properties (`ImmBefore`, `ImmAfter`, `Enables`, `Ensures`,
//!   `Disables`) and non-interference, by induction over the behavioral
//!   abstraction [`Abstraction`];
//! * [`check_certificate`] — the independent trusted checker that validates
//!   every step of a certificate (the analog of Coq's kernel);
//! * [`falsify`] — bounded concrete counterexample search for properties
//!   the automation fails on;
//! * [`ProverOptions`] — the §6.4 optimization toggles, for the ablation
//!   experiments.
//!
//! # Example
//!
//! ```
//! use reflex_parser::parse_program;
//! use reflex_verify::{prove, check_certificate, ProverOptions};
//!
//! let src = r#"
//! components { Pinger "p.py" (); }
//! messages { Ping(str); Pong(str); }
//! init { p <- spawn Pinger(); }
//! handlers {
//!   when Pinger:Ping(s) { send(p, Pong(s)); }
//! }
//! properties {
//!   PongOnlyAfterPing: forall s: str.
//!     [Recv(Pinger(), Ping(s))] Enables [Send(Pinger(), Pong(s))];
//! }
//! "#;
//! let program = parse_program("ping", src).unwrap();
//! let checked = reflex_typeck::check(&program).unwrap();
//! let options = ProverOptions::default();
//! let outcome = prove(&checked, "PongOnlyAfterPing", &options).unwrap();
//! let cert = outcome.certificate().expect("proved");
//! check_certificate(&checked, cert, &options).expect("certificate valid");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstraction;
pub mod canon;
pub mod certificate;
mod checker;
mod falsify;
pub mod incremental;
mod ni_prover;
mod options;
mod shared;
mod trace_prover;

pub use abstraction::{Abstraction, World};
pub use certificate::Certificate;
pub use checker::{check_certificate, CheckError};
pub use falsify::{falsify, Counterexample, FalsifyOptions};
pub use incremental::{reverify, IncrementalReport};
pub use options::{Outcome, ProofFailure, ProverOptions, VerifyError};

use reflex_ast::PropBody;
use reflex_typeck::CheckedProgram;

/// Proves the named property of a checked program.
///
/// Builds the program's behavioral abstraction and runs the appropriate
/// prover. For verifying many properties of one program, build the
/// [`Abstraction`] once and use [`prove_with`].
///
/// # Errors
///
/// Returns [`VerifyError::NoSuchProperty`] if the property does not exist.
/// Proof-search failures are reported inside [`Outcome`], not as errors.
pub fn prove(
    checked: &CheckedProgram,
    property: &str,
    options: &ProverOptions,
) -> Result<Outcome, VerifyError> {
    let abs = Abstraction::build(checked, options);
    prove_with(&abs, property, options)
}

/// Proves the named property against a pre-built abstraction.
///
/// # Errors
///
/// Returns [`VerifyError::NoSuchProperty`] if the property does not exist.
pub fn prove_with(
    abs: &Abstraction<'_>,
    property: &str,
    options: &ProverOptions,
) -> Result<Outcome, VerifyError> {
    let prop = abs
        .checked()
        .program()
        .property(property)
        .ok_or_else(|| VerifyError::NoSuchProperty {
            name: property.to_owned(),
        })?;
    // The §7 design lesson, reproduced as a hard boundary: a `broadcast`
    // can emit an unbounded number of send actions, which the induction
    // over BehAbs cannot case-split. (The interpreter and the falsifier
    // execute broadcasts fine — only the *automation* refuses.)
    if program_uses_broadcast(abs.checked().program()) {
        return Ok(Outcome::Failed(ProofFailure {
            location: "program".into(),
            reason: "the program uses `broadcast`, which emits an unbounded \
number of actions; rewrite it with `lookup` (paper §7: this is precisely \
why Reflex replaced broadcast)"
                .into(),
        }));
    }
    Ok(match &prop.body {
        PropBody::Trace(tp) => trace_prover::prove_trace(abs, options, prop, tp),
        PropBody::NonInterference(spec) => ni_prover::prove_ni(abs, options, prop, spec),
    })
}

/// Whether any handler or the init section uses the unautomatable
/// `broadcast` primitive.
pub(crate) fn program_uses_broadcast(program: &reflex_ast::Program) -> bool {
    let mut found = false;
    let mut scan = |cmd: &reflex_ast::Cmd| {
        cmd.visit(&mut |c| {
            if matches!(c, reflex_ast::Cmd::Broadcast { .. }) {
                found = true;
            }
        });
    };
    scan(&program.init);
    for h in &program.handlers {
        scan(&h.body);
    }
    found
}

/// Proves every property of the program, returning `(name, outcome)`
/// pairs in declaration order.
pub fn prove_all(checked: &CheckedProgram, options: &ProverOptions) -> Vec<(String, Outcome)> {
    let abs = Abstraction::build(checked, options);
    checked
        .program()
        .properties
        .iter()
        .map(|p| {
            let outcome =
                prove_with(&abs, &p.name, options).expect("property exists by construction");
            (p.name.clone(), outcome)
        })
        .collect()
}
