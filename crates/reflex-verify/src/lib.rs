//! Pushbutton verification for Reflex programs — the paper's core
//! contribution (§5), reproduced as a proof-search engine emitting
//! machine-checkable certificates.
//!
//! * [`prove`] / [`prove_all`] — fully automatic proof search for trace
//!   properties (`ImmBefore`, `ImmAfter`, `Enables`, `Ensures`,
//!   `Disables`) and non-interference, by induction over the behavioral
//!   abstraction [`Abstraction`];
//! * [`check_certificate`] — the independent trusted checker that validates
//!   every step of a certificate (the analog of Coq's kernel);
//! * [`falsify`] — bounded concrete counterexample search for properties
//!   the automation fails on;
//! * [`ProverOptions`] — the §6.4 optimization toggles, for the ablation
//!   experiments.
//!
//! # Example
//!
//! ```
//! use reflex_parser::parse_program;
//! use reflex_verify::{prove, check_certificate, ProverOptions};
//!
//! let src = r#"
//! components { Pinger "p.py" (); }
//! messages { Ping(str); Pong(str); }
//! init { p <- spawn Pinger(); }
//! handlers {
//!   when Pinger:Ping(s) { send(p, Pong(s)); }
//! }
//! properties {
//!   PongOnlyAfterPing: forall s: str.
//!     [Recv(Pinger(), Ping(s))] Enables [Send(Pinger(), Pong(s))];
//! }
//! "#;
//! let program = parse_program("ping", src).unwrap();
//! let checked = reflex_typeck::check(&program).unwrap();
//! let options = ProverOptions::default();
//! let outcome = prove(&checked, "PongOnlyAfterPing", &options).unwrap();
//! let cert = outcome.certificate().expect("proved");
//! check_certificate(&checked, cert, &options).expect("certificate valid");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstraction;
pub mod budget;
mod cache;
pub mod canon;
pub mod certificate;
mod checker;
pub mod clock;
mod codec;
mod falsify;
pub mod incremental;
mod ni_prover;
mod oblig;
mod options;
pub mod sched;
mod shared;
mod stats;
pub mod store;
mod trace_prover;
pub mod vfs;

pub use abstraction::{Abstraction, World};
pub use budget::{BudgetExceeded, ProofBudget};
pub use cache::{CacheStats, ProofCache};
pub use certificate::{Certificate, DepSet};
pub use checker::{check_certificate, check_certificate_with, CheckError};
pub use clock::{Clock, RealClock, VirtualClock};
pub use falsify::{falsify, Counterexample, FalsifyOptions};
pub use incremental::{
    reverify, reverify_jobs, reverify_observed, DepGraph, IncrementalReport, PropObserver, Reuse,
    ReusePlan,
};
pub use options::{
    catch_crash, resolve_jobs, Outcome, PanicPlan, ProofFailure, ProverOptions, VerifyError,
};
pub use stats::{paths_explored, PropStats, ProverStats};
pub use store::{
    load_candidates, persist_outcomes, verify_with_store, verify_with_store_observed, ProofStore,
    ScrubReport, StoreHead, StoreReport, StoreStat, QUARANTINE_DIR, STORE_VERSION,
};
pub use vfs::{FaultyFs, FsFault, FsFaultPlan, FsOp, RealFs, VerifyFs};

use reflex_ast::PropBody;
use reflex_typeck::CheckedProgram;

/// Encodes a certificate with the store's deterministic binary codec.
///
/// Equal certificates produce equal bytes (no padding, no timestamps), so
/// byte-comparing two encodings is exactly certificate equality — the
/// wire protocol ships certificates this way, and the daemon-vs-one-shot
/// identity tests diff these bytes directly.
pub fn certificate_to_bytes(cert: &Certificate) -> Vec<u8> {
    let mut e = codec::Enc::new();
    codec::enc_certificate(&mut e, cert);
    e.buf
}

/// Decodes a certificate produced by [`certificate_to_bytes`].
///
/// Returns `None` on any truncation, trailing garbage or tag mismatch —
/// the same corrupt-means-miss discipline the proof store uses.
pub fn certificate_from_bytes(bytes: &[u8]) -> Option<Certificate> {
    let mut d = codec::Dec::new(bytes);
    let cert = codec::dec_certificate(&mut d)?;
    d.finish()?;
    Some(cert)
}

/// Proves the named property of a checked program.
///
/// Builds the program's behavioral abstraction and runs the appropriate
/// prover. For verifying many properties of one program, build the
/// [`Abstraction`] once and use [`prove_with`].
///
/// # Errors
///
/// Returns [`VerifyError::NoSuchProperty`] if the property does not exist.
/// Proof-search failures are reported inside [`Outcome`], not as errors.
pub fn prove(
    checked: &CheckedProgram,
    property: &str,
    options: &ProverOptions,
) -> Result<Outcome, VerifyError> {
    let abs = Abstraction::build(checked, options);
    prove_with(&abs, property, options)
}

/// Proves the named property against a pre-built abstraction.
///
/// # Errors
///
/// Returns [`VerifyError::NoSuchProperty`] if the property does not exist.
pub fn prove_with(
    abs: &Abstraction<'_>,
    property: &str,
    options: &ProverOptions,
) -> Result<Outcome, VerifyError> {
    // A private cache still pays off within one property (repeated
    // obligations), and — because cached packages are pure functions of
    // their keys — yields exactly the certificate a warm cross-property
    // cache would.
    let cache = options.shared_cache.then(ProofCache::new);
    prove_with_cache(abs, property, options, cache.as_ref())
}

/// Proves the named property against a pre-built abstraction, sharing
/// subproofs through `cache`.
///
/// Pass the same [`ProofCache`] for every property of a program to reuse
/// auxiliary invariants and lemmas across them (this is what [`prove_all`]
/// and [`prove_all_parallel`] do). The cache never changes outcomes or
/// certificates — cached subproofs are self-contained packages that are
/// pure functions of their keys — and it is ignored entirely when
/// [`ProverOptions::shared_cache`] is off.
///
/// # Errors
///
/// Returns [`VerifyError::NoSuchProperty`] if the property does not exist.
pub fn prove_with_cache(
    abs: &Abstraction<'_>,
    property: &str,
    options: &ProverOptions,
    cache: Option<&ProofCache>,
) -> Result<Outcome, VerifyError> {
    let prop =
        abs.checked()
            .program()
            .property(property)
            .ok_or_else(|| VerifyError::NoSuchProperty {
                name: property.to_owned(),
            })?;
    if let Some(outcome) = pre_check(abs, options, property) {
        return Ok(outcome);
    }
    let shared = if options.shared_cache { cache } else { None };
    // The whole property proof is one task for the scratch term arena:
    // nodes it re-interns stay thread-local, and the scratch is torn down
    // when the task ends (see `reflex_symbolic::arena`).
    let outcome = reflex_symbolic::with_scratch(|| match &prop.body {
        PropBody::Trace(tp) => trace_prover::prove_trace(abs, options, prop, tp, shared),
        PropBody::NonInterference(spec) => ni_prover::prove_ni(abs, options, prop, spec),
    });
    Ok(finalize_outcome(abs, outcome))
}

/// The pre-flight checks every prover entry (whole-property and
/// obligation-scheduled alike) must run before searching: `Some` is a
/// short-circuit outcome.
pub(crate) fn pre_check(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    property: &str,
) -> Option<Outcome> {
    // The §7 design lesson, reproduced as a hard boundary: a `broadcast`
    // can emit an unbounded number of send actions, which the induction
    // over BehAbs cannot case-split. (The interpreter and the falsifier
    // execute broadcasts fine — only the *automation* refuses.)
    if program_uses_broadcast(abs.checked().program()) {
        return Some(Outcome::Failed(ProofFailure {
            location: "program".into(),
            reason: "the program uses `broadcast`, which emits an unbounded \
number of actions; rewrite it with `lookup` (paper §7: this is precisely \
why Reflex replaced broadcast)"
                .into(),
        }));
    }
    // Fail fast when the session budget is already spent: a batch whose
    // budget tripped on one property should not burn the same allowance
    // again on each remaining property.
    if let Some(b) = &options.budget {
        if let Err(why) = b.check() {
            let failure = ProofFailure {
                location: format!("property `{property}`"),
                reason: format!(
                    "{} ({why}) before the search started",
                    budget::BUDGET_REASON_PREFIX
                ),
            };
            return Some(if matches!(why, budget::BudgetExceeded::Cancelled) {
                Outcome::Cancelled(failure)
            } else {
                Outcome::Timeout(failure)
            });
        }
    }
    None
}

/// The shared post-processing every prover exit must apply. Idempotent, so
/// the scheduled path may apply it to outcomes that already passed through.
pub(crate) fn finalize_outcome(abs: &Abstraction<'_>, mut outcome: Outcome) -> Outcome {
    // A failure manufactured by a budget tick is a *timeout* (or, for an
    // explicit cancel, a *cancellation*), not a verdict about the
    // property; re-classify it at this (single) boundary.
    if let Outcome::Failed(f) = &outcome {
        if budget::is_cancel_failure(f) {
            outcome = Outcome::Cancelled(f.clone());
        } else if budget::is_budget_failure(f) {
            outcome = Outcome::Timeout(f.clone());
        }
    }
    // Stamp the certificate with what its induction consulted, so the
    // incremental planner and the proof store can reason about it later.
    // The dependency set is a deterministic function of the (deterministic)
    // certificate and the program, so serial, parallel and re-proved runs
    // all stamp identical sets.
    if let Outcome::Proved(cert) = &mut outcome {
        let deps = certificate::DepSet::compute(abs.checked(), abs.ranges_fp(), cert);
        cert.set_deps(deps);
    }
    outcome
}

/// Whether any handler or the init section uses the unautomatable
/// `broadcast` primitive.
pub(crate) fn program_uses_broadcast(program: &reflex_ast::Program) -> bool {
    let mut found = false;
    let mut scan = |cmd: &reflex_ast::Cmd| {
        cmd.visit(&mut |c| {
            if matches!(c, reflex_ast::Cmd::Broadcast { .. }) {
                found = true;
            }
        });
    };
    scan(&program.init);
    for h in &program.handlers {
        scan(&h.body);
    }
    found
}

/// Proves every property of the program, returning `(name, outcome)`
/// pairs in declaration order. Properties share one [`ProofCache`], so an
/// auxiliary invariant derived for one property is reused by the rest.
pub fn prove_all(checked: &CheckedProgram, options: &ProverOptions) -> Vec<(String, Outcome)> {
    let abs = Abstraction::build(checked, options);
    let cache = ProofCache::new();
    checked
        .program()
        .properties
        .iter()
        .map(|p| {
            let outcome = prove_with_cache(&abs, &p.name, options, Some(&cache))
                .expect("property exists by construction");
            (p.name.clone(), outcome)
        })
        .collect()
}

/// Proves every property of the program on `jobs` worker threads (`0`:
/// one per available CPU), returning `(name, outcome)` pairs in
/// declaration order.
///
/// The abstraction is built once and shared; the properties are fanned out
/// over a work queue and share one [`ProofCache`]. Because cached
/// subproofs are pure functions of their keys (see [`ProofCache`]), every
/// outcome and certificate is identical to [`prove_all`]'s, for every
/// `jobs` value — thread timing decides only which property pays for a
/// shared subproof first.
pub fn prove_all_parallel(
    checked: &CheckedProgram,
    options: &ProverOptions,
    jobs: usize,
) -> Vec<(String, Outcome)> {
    prove_all_parallel_with_stats(checked, options, jobs).0
}

/// [`prove_all_parallel`], also returning the run's [`ProverStats`].
///
/// Parallelism is scheduled at the *obligation* level, not the property
/// level: each property is first prepared (pre-checks, base cases,
/// obligation enumeration — itself fanned out across workers), then every
/// obligation of every property enters one flat work-stealing pool, so a
/// single huge property no longer serializes a worker while its siblings'
/// workers idle. Outcomes and certificates are identical to [`prove_all`]
/// for every `jobs` value — see `oblig.rs` for the determinism argument.
pub fn prove_all_parallel_with_stats(
    checked: &CheckedProgram,
    options: &ProverOptions,
    jobs: usize,
) -> (Vec<(String, Outcome)>, ProverStats) {
    use std::time::Instant;

    let jobs = options::resolve_jobs(jobs);
    let start = Instant::now();
    let paths_before = stats::paths_explored();

    let abs = Abstraction::build(checked, options);
    let cache = ProofCache::new();
    let props = &checked.program().properties;

    // This run's own solver counters; the pool re-installs the scope on
    // every worker, so the reported numbers cover exactly this run even
    // when other sessions share the process-global interner and memo.
    let session = reflex_symbolic::SymSessionStats::new();
    let (results, rows) =
        reflex_symbolic::with_session_stats(std::sync::Arc::clone(&session), || {
            // Phase 1: prepare every property (pre-checks + base cases), in
            // parallel across properties.
            let prepared: Vec<(oblig::Prepared<'_, '_>, f64)> =
                sched::run_indexed(jobs, props.len(), |i| {
                    let t0 = Instant::now();
                    let p = oblig::prepare(&abs, options, &props[i], Some(&cache));
                    (p, t0.elapsed().as_secs_f64() * 1e3)
                });

            // Phase 2: one flat pool over every obligation of every property.
            let tasks: Vec<(usize, usize)> = prepared
                .iter()
                .enumerate()
                .flat_map(|(pi, (p, _))| (0..oblig::unit_count(p)).map(move |u| (pi, u)))
                .collect();
            let unit_results: Vec<(oblig::UnitOut, f64)> =
                sched::run_indexed(jobs, tasks.len(), |t| {
                    let (pi, u) = tasks[t];
                    let t0 = Instant::now();
                    let out = oblig::run_unit(&prepared[pi].0, u, &abs, options, Some(&cache));
                    (out, t0.elapsed().as_secs_f64() * 1e3)
                });

            // Phase 3: reassemble per property, in declaration order. Task
            // order is property-major, so a sequential split regroups the
            // unit results.
            let mut unit_iter = unit_results.into_iter();
            let mut results = Vec::with_capacity(props.len());
            let mut rows = Vec::with_capacity(props.len());
            for (prop, (p, prep_ms)) in props.iter().zip(prepared) {
                let mut units = Vec::with_capacity(oblig::unit_count(&p));
                let mut wall_ms = prep_ms;
                for _ in 0..oblig::unit_count(&p) {
                    let (out, unit_ms) = unit_iter.next().expect("every obligation has a result");
                    units.push(out);
                    wall_ms += unit_ms;
                }
                let outcome = oblig::assemble(p, units, &abs);
                rows.push(PropStats {
                    name: prop.name.clone(),
                    proved: outcome.is_proved(),
                    wall_ms,
                    obligations: outcome
                        .certificate()
                        .map_or(0, certificate::Certificate::obligation_count),
                });
                results.push((prop.name.clone(), outcome));
            }
            (results, rows)
        });
    let stats = ProverStats {
        jobs,
        total_ms: start.elapsed().as_secs_f64() * 1e3,
        properties: rows,
        paths_explored: stats::paths_explored() - paths_before,
        cache: cache.stats(),
        solver_queries: session.memo_queries(),
        solver_memo_hits: session.memo_hits(),
        interned_terms: reflex_symbolic::intern_stats().nodes,
    };
    (results, stats)
}
