//! The cached behavioral abstraction: init paths and all exchange cases.

use std::collections::BTreeMap;

use reflex_ast::{BinOp, Ty, UnOp, Value};
use reflex_symbolic::{Evaluator, Exchange, Path, SymCtx, SymState, SymVar, Term};
use reflex_typeck::CheckedProgram;

use crate::options::ProverOptions;

/// One "world": the behavioral abstraction rooted at one init path.
///
/// Init sections may branch (e.g. on an external `call` result), producing
/// several post-init states; the induction must hold over each. Handlers
/// are evaluated against the *generic* pre-state derived from the init
/// state (opaque mutable variables, init-time component handles).
#[derive(Debug, Clone)]
pub struct World {
    /// The init path this world is rooted at.
    pub init: Path,
    /// The generic pre-state for the inductive step.
    pub pre: SymState,
    /// One exchange per `(component type, message type)` pair, in
    /// [`reflex_ast::Program::exchange_cases`] order.
    pub exchanges: Vec<Exchange>,
    /// Sound interval facts about numeric state variables in *every*
    /// reachable pre-state (e.g. `0 <= attempts`), instantiated at this
    /// world's pre-state symbols. Derived by a standard interval fixpoint
    /// with widening over the exchange paths; the provers and the checker
    /// add them to every inductive-step solver context.
    pub range_assumptions: Vec<(Term, bool)>,
}

/// The symbolic behavioral abstraction of a program, computed once and
/// shared by every property proof (one of the reasons re-verification after
/// program edits is fast).
#[derive(Debug)]
pub struct Abstraction<'p> {
    checked: &'p CheckedProgram,
    /// The worlds, one per init path.
    pub worlds: Vec<World>,
}

impl<'p> Abstraction<'p> {
    /// Builds the abstraction by symbolically evaluating init and every
    /// exchange case.
    pub fn build(checked: &'p CheckedProgram, options: &ProverOptions) -> Abstraction<'p> {
        let mut evaluator = Evaluator::new(checked);
        evaluator.prune = options.prune_paths;
        let mut ctx = SymCtx::new();
        let init_paths = evaluator.eval_init(&mut ctx);
        let mut worlds = Vec::with_capacity(init_paths.len());
        for init in init_paths {
            let pre = evaluator.generic_pre_state(&mut ctx, &init.state);
            let mut exchanges = Vec::new();
            for case in checked.program().exchange_cases() {
                exchanges.push(evaluator.eval_exchange(&mut ctx, &pre, case.ctype, case.msg));
            }
            let range_assumptions = compute_ranges(checked, &init.state, &pre, &exchanges);
            worlds.push(World {
                init,
                pre,
                exchanges,
                range_assumptions,
            });
        }
        Abstraction { checked, worlds }
    }

    /// The checked program.
    pub fn checked(&self) -> &'p CheckedProgram {
        self.checked
    }

    /// A canonical fingerprint of the per-world interval range assumptions.
    ///
    /// The range assumptions are derived from *every* exchange path, so an
    /// edit anywhere in the program may strengthen or weaken the solver
    /// context of every inductive case. Certificates record this
    /// fingerprint in their dependency set; the planner refuses any reuse
    /// when it changes (see [`crate::certificate::DepSet`]).
    pub fn ranges_fp(&self) -> reflex_ast::Fp {
        let mut h = reflex_ast::fingerprint::FpHasher::new();
        h.write_str("ranges");
        for world in &self.worlds {
            h.write_str("world");
            for (term, pol) in &world.range_assumptions {
                h.write_str(&term.to_string());
                h.write(&[u8::from(*pol)]);
            }
        }
        h.finish()
    }

    /// Total number of symbolic paths across all worlds and cases (a
    /// proof-effort measure reported by the benches).
    pub fn path_count(&self) -> usize {
        self.worlds
            .iter()
            .map(|w| w.exchanges.iter().map(|e| e.paths.len()).sum::<usize>() + 1)
            .sum()
    }
}

/// A (possibly unbounded) integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Interval {
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Interval {
    const TOP: Interval = Interval { lo: None, hi: None };

    fn exact(n: i64) -> Interval {
        Interval {
            lo: Some(n),
            hi: Some(n),
        }
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    fn meet(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).and_then(|(a, b)| a.checked_add(b)),
            hi: self.hi.zip(other.hi).and_then(|(a, b)| a.checked_add(b)),
        }
    }

    fn neg(self) -> Interval {
        Interval {
            lo: self.hi.and_then(i64::checked_neg),
            hi: self.lo.and_then(i64::checked_neg),
        }
    }
}

/// Abstractly evaluates a numeric term under per-symbol intervals.
fn eval_interval(t: &Term, env: &BTreeMap<SymVar, Interval>) -> Interval {
    match t {
        Term::Lit(Value::Num(n)) => Interval::exact(*n),
        Term::Sym(s) => env.get(s).copied().unwrap_or(Interval::TOP),
        Term::Un(UnOp::Neg, inner) => eval_interval(inner, env).neg(),
        Term::Bin(BinOp::Add, l, r) => eval_interval(l, env).add(eval_interval(r, env)),
        Term::Bin(BinOp::Sub, l, r) => eval_interval(l, env).add(eval_interval(r, env).neg()),
        _ => Interval::TOP,
    }
}

/// Refines `env` with single-variable bounds extracted from a path
/// condition literal (`var ⋈ const` shapes only — this is a cheap
/// refinement, not the solver).
fn refine_with_condition(env: &mut BTreeMap<SymVar, Interval>, term: &Term, pol: bool) {
    let (op, l, r) = match term {
        Term::Bin(op @ (BinOp::Lt | BinOp::Le | BinOp::Eq), l, r) => (*op, &**l, &**r),
        _ => return,
    };
    let (sym, c, var_on_left) = match (l, r) {
        (Term::Sym(s), Term::Lit(Value::Num(n))) if s.ty == Ty::Num => (s.clone(), *n, true),
        (Term::Lit(Value::Num(n)), Term::Sym(s)) if s.ty == Ty::Num => (s.clone(), *n, false),
        _ => return,
    };
    let cur = env.entry(sym).or_insert(Interval::TOP);
    let bound = match (op, pol, var_on_left) {
        (BinOp::Lt, true, true) => Interval {
            lo: None,
            hi: Some(c - 1),
        },
        (BinOp::Lt, true, false) => Interval {
            lo: Some(c + 1),
            hi: None,
        },
        (BinOp::Lt, false, true) => Interval {
            lo: Some(c),
            hi: None,
        },
        (BinOp::Lt, false, false) => Interval {
            lo: None,
            hi: Some(c),
        },
        (BinOp::Le, true, true) => Interval {
            lo: None,
            hi: Some(c),
        },
        (BinOp::Le, true, false) => Interval {
            lo: Some(c),
            hi: None,
        },
        (BinOp::Le, false, true) => Interval {
            lo: Some(c + 1),
            hi: None,
        },
        (BinOp::Le, false, false) => Interval {
            lo: None,
            hi: Some(c - 1),
        },
        (BinOp::Eq, true, _) => Interval::exact(c),
        (BinOp::Eq, false, _) => return,
        _ => unreachable!("op restricted above"),
    };
    *cur = cur.meet(bound);
}

/// Computes sound interval invariants for the mutable numeric state
/// variables of one world, by fixpoint over the exchange paths (with
/// widening to ⊤ for bounds still unstable after a fixed number of
/// rounds), and returns them as solver assumptions over the pre-state
/// symbols.
fn compute_ranges(
    checked: &CheckedProgram,
    init_state: &SymState,
    pre: &SymState,
    exchanges: &[Exchange],
) -> Vec<(Term, bool)> {
    // Mutable numeric state variables and their pre-state symbols.
    let mut vars: Vec<(String, SymVar)> = Vec::new();
    for (name, info) in checked.globals() {
        if info.mutable && info.ty == Ty::Num {
            if let Some(Term::Sym(sym)) = pre.data.get(name) {
                vars.push((name.clone(), sym.clone()));
            }
        }
    }
    if vars.is_empty() {
        return Vec::new();
    }

    // Start from the init values.
    let mut ranges: BTreeMap<String, Interval> = BTreeMap::new();
    for (name, _) in &vars {
        let iv = match init_state.data.get(name) {
            Some(Term::Lit(Value::Num(n))) => Interval::exact(*n),
            _ => Interval::TOP,
        };
        ranges.insert(name.clone(), iv);
    }

    const WIDEN_AFTER: usize = 8;
    for round in 0..WIDEN_AFTER + 2 {
        let mut next = ranges.clone();
        for exchange in exchanges {
            for path in &exchange.paths {
                // Pre-state environment refined by the path condition.
                let mut env: BTreeMap<SymVar, Interval> = vars
                    .iter()
                    .map(|(name, sym)| (sym.clone(), ranges[name]))
                    .collect();
                for (t, pol) in &path.condition {
                    refine_with_condition(&mut env, t, *pol);
                }
                for (name, _) in &vars {
                    let post = path.state.data.get(name).expect("state var present");
                    let post_iv = eval_interval(post, &env);
                    let entry = next.get_mut(name).expect("seeded");
                    *entry = entry.join(post_iv);
                }
            }
        }
        if next == ranges {
            break;
        }
        if round >= WIDEN_AFTER {
            // Widen whatever is still moving.
            for (name, iv) in next.iter_mut() {
                let old = ranges[name];
                if iv.lo != old.lo {
                    iv.lo = None;
                }
                if iv.hi != old.hi {
                    iv.hi = None;
                }
            }
        }
        ranges = next;
    }
    // One more safety pass: after widening the result must be inductive;
    // verify and drop anything that still moves.
    let verify = |ranges: &BTreeMap<String, Interval>| -> bool {
        for exchange in exchanges {
            for path in &exchange.paths {
                let mut env: BTreeMap<SymVar, Interval> = vars
                    .iter()
                    .map(|(name, sym)| (sym.clone(), ranges[name]))
                    .collect();
                for (t, pol) in &path.condition {
                    refine_with_condition(&mut env, t, *pol);
                }
                for (name, _) in &vars {
                    let post = path.state.data.get(name).expect("state var present");
                    let post_iv = eval_interval(post, &env);
                    if ranges[name].join(post_iv) != ranges[name] {
                        return false;
                    }
                }
            }
        }
        true
    };
    if !verify(&ranges) {
        return Vec::new();
    }

    let mut out = Vec::new();
    for (name, sym) in &vars {
        let iv = ranges[name];
        let sym_term = Term::Sym(sym.clone());
        if let Some(lo) = iv.lo {
            out.push((Term::bin(BinOp::Le, Term::lit(lo), sym_term.clone()), true));
        }
        if let Some(hi) = iv.hi {
            out.push((Term::bin(BinOp::Le, sym_term, Term::lit(hi)), true));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_ast::build::ProgramBuilder;
    use reflex_ast::Expr;

    #[test]
    fn builds_worlds_and_exchanges() {
        let program = ProgramBuilder::new("t")
            .component("C", "c.py", [])
            .component("D", "d.py", [])
            .message("M", [Ty::Num])
            .message("N", [])
            .state("x", Ty::Num, Expr::lit(0i64))
            .init_spawn("c0", "C", [])
            .handler("C", "M", ["n"], |h| {
                h.if_else(
                    Expr::var("x").le(Expr::lit(2i64)),
                    |t| {
                        t.assign("x", Expr::var("x").add(Expr::lit(1i64)));
                    },
                    |e| {
                        e.send(Expr::var("c0"), "N", []);
                    },
                );
            })
            .finish();
        let checked = reflex_typeck::check(&program).expect("well-formed");
        let abs = Abstraction::build(&checked, &ProverOptions::default());
        assert_eq!(abs.worlds.len(), 1);
        let w = &abs.worlds[0];
        assert_eq!(w.exchanges.len(), 4); // 2 comp types × 2 msgs
        let cm = w
            .exchanges
            .iter()
            .find(|e| e.ctype == "C" && e.msg == "M")
            .expect("case exists");
        assert_eq!(cm.paths.len(), 2);
        assert!(abs.path_count() >= 5);
        // Implicit cases have a single silent path.
        let dn = w
            .exchanges
            .iter()
            .find(|e| e.ctype == "D" && e.msg == "N")
            .expect("case exists");
        assert_eq!(dn.paths.len(), 1);
        assert!(dn.paths[0].actions.is_empty());
        assert!(!dn.explicit);
    }
}
