//! Prover instrumentation: the counter block surfaced by
//! `rx verify --stats` and the benchmark harness.
//!
//! Counters that cross module boundaries (paths explored) are process-wide
//! atomics; [`ProverStats`] is assembled from *deltas* between snapshots
//! taken around one prover run, so unrelated earlier runs in the same
//! process do not leak in. The per-property wall-clock and outcome rows
//! are collected by [`crate::prove_all_parallel_with_stats`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheStats;

/// Symbolic path segments analyzed so far in this process (main-induction
/// paths, invariant-induction paths, and NI paths all count).
static PATHS_EXPLORED: AtomicU64 = AtomicU64::new(0);

/// Records one analyzed symbolic path segment.
pub(crate) fn note_path() {
    PATHS_EXPLORED.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide paths-explored counter (monotone; diff two readings to
/// scope it to one run).
pub fn paths_explored() -> u64 {
    PATHS_EXPLORED.load(Ordering::Relaxed)
}

/// Per-property measurement row.
#[derive(Debug, Clone)]
pub struct PropStats {
    /// Property name.
    pub name: String,
    /// Whether the proof search succeeded.
    pub proved: bool,
    /// Proof-search wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Discharged obligations in the certificate (`0` if failed).
    pub obligations: usize,
}

/// The counter block for one prover run.
#[derive(Debug, Clone)]
pub struct ProverStats {
    /// Worker threads used for the property fan-out.
    pub jobs: usize,
    /// Total wall-clock of the run, milliseconds.
    pub total_ms: f64,
    /// Per-property rows, in declaration order.
    pub properties: Vec<PropStats>,
    /// Symbolic path segments analyzed during the run.
    pub paths_explored: u64,
    /// Shared proof-cache counters (zero when `shared_cache` is off).
    pub cache: CacheStats,
    /// Solver entailment queries issued during the run.
    pub solver_queries: u64,
    /// Entailment queries answered from the global memo table.
    pub solver_memo_hits: u64,
    /// Distinct hash-consed term nodes alive in the interner.
    pub interned_terms: u64,
}

impl ProverStats {
    /// Renders the counter block as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "prover stats: {} propert{} in {:.1} ms ({} job{})",
            self.properties.len(),
            if self.properties.len() == 1 {
                "y"
            } else {
                "ies"
            },
            self.total_ms,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
        );
        let _ = writeln!(s, "  paths explored:     {}", self.paths_explored);
        let _ = writeln!(
            s,
            "  invariant cache:    {} hits / {} misses ({} entries)",
            self.cache.invariant_hits, self.cache.invariant_misses, self.cache.invariant_entries
        );
        let _ = writeln!(
            s,
            "  lemma cache:        {} hits / {} misses ({} entries)",
            self.cache.lemma_hits, self.cache.lemma_misses, self.cache.lemma_entries
        );
        let _ = writeln!(
            s,
            "  solver entailments: {} queries, {} memo hits",
            self.solver_queries, self.solver_memo_hits
        );
        let _ = writeln!(s, "  interned terms:     {}", self.interned_terms);
        for p in &self.properties {
            let _ = writeln!(
                s,
                "  {:>10.2} ms  {}  {} ({} obligations)",
                p.wall_ms,
                if p.proved { "✓" } else { "✗" },
                p.name,
                p.obligations
            );
        }
        s
    }
}
