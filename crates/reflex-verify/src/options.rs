//! Prover configuration and outcomes.

use std::fmt;

/// Configuration of the proof search.
///
/// The three toggles correspond to the §6.4 optimizations whose effect the
/// paper reports (80× average speedup, 5× memory): disabling any of them
/// only makes the search slower or weaker, never unsound. They exist so the
/// ablation benches can reproduce that experiment.
#[derive(Debug, Clone)]
pub struct ProverOptions {
    /// Skip symbolic analysis of handler cases that cannot syntactically
    /// emit an action matching the property's trigger pattern ("a simple
    /// syntactic check suffices", §6.4).
    pub syntactic_skip: bool,
    /// Prune infeasible paths and collapse entailed branches during
    /// symbolic evaluation ("domain-specific reduction strategies", §6.4).
    pub prune_paths: bool,
    /// Cache and reuse proved auxiliary invariants across obligations
    /// ("saving subproofs at key cut points", §6.4).
    pub cache_invariants: bool,
    /// Maximum depth of chained auxiliary invariants (the secondary
    /// inductions of §5.1 may themselves require supporting invariants).
    pub max_invariant_depth: usize,
    /// Share proved auxiliary invariants and lemmas *across properties*
    /// through a [`crate::ProofCache`] — §6.4's "saving subproofs at key
    /// cut points" taken fleet-wide. Cached subproofs are self-contained
    /// packages proved from a fresh context, so a cache hit and a fresh
    /// derivation yield identical certificates (see `cache.rs`); and every
    /// certificate is still validated step-by-step by the independent
    /// checker, so a cache bug can surface only as a check failure, never a
    /// wrong "Proved".
    pub shared_cache: bool,
    /// Worker threads for case-level parallelism *inside* one property
    /// proof (the per-`(component type, message type)` inductive cases are
    /// independent). `1` is fully serial; `0` means one worker per
    /// available CPU. Results are collected in case order, so the emitted
    /// certificate is identical for every value.
    pub jobs: usize,
    /// Optional cooperative wall-clock/node budget and cancellation token
    /// (see [`crate::ProofBudget`]). Like `jobs`, a budget can only stop a
    /// search early — it never changes what a completed search proves — so
    /// it is excluded from [`ProverOptions::fingerprint`] and from
    /// equality.
    pub budget: Option<std::sync::Arc<crate::budget::ProofBudget>>,
    /// Test-only chaos hook: the name of a property whose proof task should
    /// deliberately panic, exercising the session's panic isolation. The
    /// panic only fires when the `panic-injection` cargo feature is enabled;
    /// without it the field is inert. Like `budget`, this is run-scoped
    /// scaffolding that can only *stop* a proof, never change what one
    /// proves, so it is excluded from [`ProverOptions::fingerprint`] and
    /// from equality — a crashed property must not fork the proof-store
    /// namespace.
    pub panic_on: Option<String>,
    /// Seeded chaos hook: a [`PanicPlan`] deciding *per property name*
    /// whether its proof task should deliberately panic. The simulator's
    /// generalization of [`ProverOptions::panic_on`] (which names exactly
    /// one victim): the plan is a pure function of `(seed, property)`, so
    /// a root seed reproduces the crash set. Gated behind the same
    /// `panic-injection` feature and excluded from fingerprints and
    /// equality for the same reason.
    pub panic_plan: Option<std::sync::Arc<PanicPlan>>,
}

/// A deterministic schedule of injected proof-task panics.
///
/// Each property panics iff the FNV/SplitMix roll of `(seed, name)` lands
/// under `rate_ppm` parts per million — stateless, so serial and parallel
/// runs crash the same set. [`PanicPlan::disarm`] turns the plan off (the
/// "chaos stopped" switch the watch scenario flips before its recovery
/// pass), after which every decision is `false`.
#[derive(Debug)]
pub struct PanicPlan {
    seed: u64,
    rate_ppm: u32,
    armed: std::sync::atomic::AtomicBool,
}

impl PanicPlan {
    /// A plan firing on `rate_ppm` parts per million of property names.
    pub fn seeded(seed: u64, rate_ppm: u32) -> PanicPlan {
        PanicPlan {
            seed,
            rate_ppm,
            armed: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Stops all injection (decisions become `false`).
    pub fn disarm(&self) {
        self.armed.store(false, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether the proof task for `property` should panic.
    pub fn should_panic(&self, property: &str) -> bool {
        self.armed.load(std::sync::atomic::Ordering::SeqCst)
            && reflex_rng::derive(self.seed, property) % 1_000_000 < u64::from(self.rate_ppm)
    }
}

// Manual impls: `budget` carries atomics (no `Eq`) and, like `panic_on`,
// is run-scoped scaffolding, not configuration — two options values are
// "the same configuration" iff the deterministic fields agree.
impl PartialEq for ProverOptions {
    fn eq(&self, other: &Self) -> bool {
        self.syntactic_skip == other.syntactic_skip
            && self.prune_paths == other.prune_paths
            && self.cache_invariants == other.cache_invariants
            && self.max_invariant_depth == other.max_invariant_depth
            && self.shared_cache == other.shared_cache
            && self.jobs == other.jobs
    }
}

impl Eq for ProverOptions {}

impl Default for ProverOptions {
    fn default() -> Self {
        ProverOptions {
            syntactic_skip: true,
            prune_paths: true,
            cache_invariants: true,
            max_invariant_depth: 6,
            shared_cache: true,
            jobs: 1,
            budget: None,
            panic_on: None,
            panic_plan: None,
        }
    }
}

impl ProverOptions {
    /// The configuration used by the paper's final system (all
    /// optimizations on).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A deliberately slow configuration with every optimization disabled,
    /// for the ablation experiment.
    pub fn unoptimized() -> Self {
        ProverOptions {
            syntactic_skip: false,
            prune_paths: false,
            cache_invariants: false,
            max_invariant_depth: 6,
            shared_cache: false,
            jobs: 1,
            budget: None,
            panic_on: None,
            panic_plan: None,
        }
    }

    /// Whether the chaos hooks request a deliberate panic for `property`
    /// (either the single-victim [`ProverOptions::panic_on`] or a seeded
    /// [`PanicPlan`]). Only consulted when the `panic-injection` feature
    /// is compiled in.
    pub fn panic_armed(&self, property: &str) -> bool {
        self.panic_on.as_deref() == Some(property)
            || self
                .panic_plan
                .as_ref()
                .is_some_and(|plan| plan.should_panic(property))
    }

    /// The number of worker threads [`ProverOptions::jobs`] resolves to
    /// (`0` means one per available CPU).
    pub fn effective_jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }

    /// A stable fingerprint of the options that can affect the *content* of
    /// an emitted certificate. Used as part of the proof-store key: a
    /// certificate proved under one configuration must never be served to a
    /// run using another.
    ///
    /// `jobs` and `shared_cache` are deliberately excluded — by
    /// construction (see [`crate::ProofCache`] and the parallel provers)
    /// they never change outcomes or certificates, and including them would
    /// needlessly split the store between serial and parallel runs.
    pub fn fingerprint(&self) -> reflex_ast::Fp {
        let mut h = reflex_ast::fingerprint::FpHasher::new();
        h.write_str("prover-options");
        h.write(&[
            u8::from(self.syntactic_skip),
            u8::from(self.prune_paths),
            u8::from(self.cache_invariants),
        ]);
        h.write(&(self.max_invariant_depth as u64).to_le_bytes());
        h.finish()
    }
}

/// Resolves a `jobs` request: `0` means one worker per available CPU.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Why the proof search failed.
///
/// Reflex automation is deliberately incomplete (§5.3): a failure means the
/// property could not be *proved*, not necessarily that it is false. Use
/// [`crate::falsify`] to search for a concrete counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofFailure {
    /// Which part of the induction failed.
    pub location: String,
    /// Human-readable explanation of the unprovable obligation.
    pub reason: String,
}

impl fmt::Display for ProofFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// The result of running the prover on one property.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The property was proved; the certificate records the full argument
    /// and can be validated independently with
    /// [`crate::check_certificate`].
    Proved(crate::certificate::Certificate),
    /// The proof search failed.
    Failed(ProofFailure),
    /// The proof search was stopped by a session budget or cancellation
    /// before it could finish (see [`crate::ProofBudget`]). Unlike
    /// [`Outcome::Failed`], this says nothing about the property — a rerun
    /// with a larger budget may well prove it.
    Timeout(ProofFailure),
    /// The proof search was stopped by an explicit cancellation request
    /// ([`crate::ProofBudget::cancel`]) rather than an exhausted
    /// allowance. Like [`Outcome::Timeout`], this says nothing about the
    /// property — the caller asked for the work to stop.
    Cancelled(ProofFailure),
    /// The proof task panicked and was isolated by [`catch_crash`]. Like
    /// [`Outcome::Timeout`], this says nothing about the property itself —
    /// it records a defect (or injected fault) in the prover run. A crashed
    /// outcome carries no certificate, so it can never be persisted to a
    /// [`crate::ProofStore`]; and because the crash hook is excluded from
    /// [`ProverOptions::fingerprint`], a crash never forks the store
    /// namespace either.
    Crashed(ProofFailure),
}

impl Outcome {
    /// Whether the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved(_))
    }

    /// Whether the proof search was stopped by an exhausted budget.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Outcome::Timeout(_))
    }

    /// Whether the proof search was stopped by explicit cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Outcome::Cancelled(_))
    }

    /// Whether the proof task panicked and was isolated.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed(_))
    }

    /// The certificate, if proved.
    pub fn certificate(&self) -> Option<&crate::certificate::Certificate> {
        match self {
            Outcome::Proved(c) => Some(c),
            Outcome::Failed(_)
            | Outcome::Timeout(_)
            | Outcome::Cancelled(_)
            | Outcome::Crashed(_) => None,
        }
    }

    /// The failure, if the proof search failed, was stopped, or crashed.
    pub fn failure(&self) -> Option<&ProofFailure> {
        match self {
            Outcome::Proved(_) => None,
            Outcome::Failed(e)
            | Outcome::Timeout(e)
            | Outcome::Cancelled(e)
            | Outcome::Crashed(e) => Some(e),
        }
    }
}

/// Runs one proof task with panic isolation: a panic inside `f` is caught
/// and surfaced as `Err(Outcome::Crashed)` for the given property instead
/// of unwinding into (and killing) the caller's job pool.
///
/// The crash reason is the panic payload when it is a string (the common
/// case — `panic!`/`assert!` messages), so serial and parallel runs of the
/// same deterministic panic classify identically; worker scheduling decides
/// nothing.
// The Err variant is the classified verdict itself, produced at most once
// per crashed property — not an error type on a hot path worth boxing.
#[allow(clippy::result_large_err)]
pub fn catch_crash<R>(property: &str, f: impl FnOnce() -> R) -> Result<R, Outcome> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            let reason = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "proof task panicked with a non-string payload".to_owned()
            };
            Err(Outcome::Crashed(ProofFailure {
                location: format!("property `{property}`"),
                reason: format!("proof task panicked: {reason}"),
            }))
        }
    }
}

/// Errors that prevent the prover from running at all (as opposed to proof
/// search failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The named property does not exist in the program.
    NoSuchProperty {
        /// The requested name.
        name: String,
    },
    /// A previous-certificate slice contains the same property twice.
    DuplicateCertificate {
        /// The duplicated name.
        name: String,
    },
    /// A previous-certificate slice files a certificate under a name
    /// different from the property it certifies.
    CertificateMismatch {
        /// The name the certificate was filed under.
        name: String,
        /// The property the certificate actually certifies.
        certified: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoSuchProperty { name } => {
                write!(f, "no property named `{name}` in the program")
            }
            VerifyError::DuplicateCertificate { name } => {
                write!(f, "two previous certificates for property `{name}`")
            }
            VerifyError::CertificateMismatch { name, certified } => {
                write!(
                    f,
                    "certificate filed under `{name}` actually certifies `{certified}`"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}
