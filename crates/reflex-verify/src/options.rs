//! Prover configuration and outcomes.

use std::fmt;

/// Configuration of the proof search.
///
/// The three toggles correspond to the §6.4 optimizations whose effect the
/// paper reports (80× average speedup, 5× memory): disabling any of them
/// only makes the search slower or weaker, never unsound. They exist so the
/// ablation benches can reproduce that experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProverOptions {
    /// Skip symbolic analysis of handler cases that cannot syntactically
    /// emit an action matching the property's trigger pattern ("a simple
    /// syntactic check suffices", §6.4).
    pub syntactic_skip: bool,
    /// Prune infeasible paths and collapse entailed branches during
    /// symbolic evaluation ("domain-specific reduction strategies", §6.4).
    pub prune_paths: bool,
    /// Cache and reuse proved auxiliary invariants across obligations
    /// ("saving subproofs at key cut points", §6.4).
    pub cache_invariants: bool,
    /// Maximum depth of chained auxiliary invariants (the secondary
    /// inductions of §5.1 may themselves require supporting invariants).
    pub max_invariant_depth: usize,
}

impl Default for ProverOptions {
    fn default() -> Self {
        ProverOptions {
            syntactic_skip: true,
            prune_paths: true,
            cache_invariants: true,
            max_invariant_depth: 6,
        }
    }
}

impl ProverOptions {
    /// The configuration used by the paper's final system (all
    /// optimizations on).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A deliberately slow configuration with every optimization disabled,
    /// for the ablation experiment.
    pub fn unoptimized() -> Self {
        ProverOptions {
            syntactic_skip: false,
            prune_paths: false,
            cache_invariants: false,
            max_invariant_depth: 6,
        }
    }
}

/// Why the proof search failed.
///
/// Reflex automation is deliberately incomplete (§5.3): a failure means the
/// property could not be *proved*, not necessarily that it is false. Use
/// [`crate::falsify`] to search for a concrete counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofFailure {
    /// Which part of the induction failed.
    pub location: String,
    /// Human-readable explanation of the unprovable obligation.
    pub reason: String,
}

impl fmt::Display for ProofFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// The result of running the prover on one property.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The property was proved; the certificate records the full argument
    /// and can be validated independently with
    /// [`crate::check_certificate`].
    Proved(crate::certificate::Certificate),
    /// The proof search failed.
    Failed(ProofFailure),
}

impl Outcome {
    /// Whether the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, Outcome::Proved(_))
    }

    /// The certificate, if proved.
    pub fn certificate(&self) -> Option<&crate::certificate::Certificate> {
        match self {
            Outcome::Proved(c) => Some(c),
            Outcome::Failed(_) => None,
        }
    }

    /// The failure, if the proof search failed.
    pub fn failure(&self) -> Option<&ProofFailure> {
        match self {
            Outcome::Proved(_) => None,
            Outcome::Failed(e) => Some(e),
        }
    }
}

/// Errors that prevent the prover from running at all (as opposed to proof
/// search failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The named property does not exist in the program.
    NoSuchProperty {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoSuchProperty { name } => {
                write!(f, "no property named `{name}` in the program")
            }
        }
    }
}

impl std::error::Error for VerifyError {}
