//! Bounded counterexample search (falsification).
//!
//! When proof search fails, Reflex's incompleteness (§5.3) leaves two
//! possibilities: the property is true but beyond the automation, or it is
//! simply false. This module explores the *concrete* behavioral abstraction
//! breadth-first over small value domains, checking the property on every
//! reachable trace; a violation yields a concrete counterexample trace.
//! This reproduces the paper's §6.3 experience, where two failing web
//! server properties turned out to be false.

use std::collections::BTreeMap;

use reflex_ast::{Cmd, CompId, Expr, Fdesc, PropBody, Ty, Value};
use reflex_trace::{check_trace, Action, CompInst, Msg, PropError, Trace, Violation};
use reflex_typeck::CheckedProgram;

/// Limits for the bounded search.
#[derive(Debug, Clone)]
pub struct FalsifyOptions {
    /// Maximum number of exchanges after init.
    pub max_exchanges: usize,
    /// Maximum number of explored states.
    pub max_states: usize,
    /// Cap on distinct literals per type in the generated payload domain.
    pub domain_per_type: usize,
}

impl Default for FalsifyOptions {
    fn default() -> Self {
        FalsifyOptions {
            max_exchanges: 4,
            max_states: 20_000,
            domain_per_type: 3,
        }
    }
}

/// A concrete counterexample to a trace property.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated property.
    pub property: String,
    /// The violating trace, in chronological order.
    pub trace: Trace,
    /// The concrete violation found by the trace checker.
    pub violation: Violation,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample to `{}`:", self.property)?;
        write!(f, "{}", self.trace)?;
        writeln!(f, "  violation: {}", self.violation)
    }
}

#[derive(Debug, Clone)]
struct ConcState {
    data: BTreeMap<String, Value>,
    comps: BTreeMap<String, CompInst>,
    comp_list: Vec<CompInst>,
    trace: Trace,
    next_id: u64,
    next_fd: u64,
    exchanges: usize,
}

/// Searches for a concrete counterexample to the named trace property.
///
/// Returns `None` when no violation is found within the bounds (which is
/// *not* a proof — use [`crate::prove`] for that) and for non-interference
/// properties, which are relational and outside the falsifier's scope.
pub fn falsify(
    checked: &CheckedProgram,
    prop_name: &str,
    options: &FalsifyOptions,
) -> Option<Counterexample> {
    let program = checked.program();
    let prop = program.property(prop_name)?;
    let PropBody::Trace(tp) = &prop.body else {
        return None;
    };

    let domain = build_domain(checked, options);
    let falsifier = Falsifier {
        checked,
        domain,
        options,
    };

    // Run init (forking on external call results).
    let init_state = ConcState {
        data: checked.state_initial_values().into_iter().collect(),
        comps: BTreeMap::new(),
        comp_list: Vec::new(),
        trace: Trace::new(),
        next_id: 0,
        next_fd: 0,
        exchanges: 0,
    };
    let mut frontier = falsifier.run_cmd(init_state, &program.init);

    let mut visited = 0usize;
    while let Some(state) = frontier.pop() {
        visited += 1;
        if visited > options.max_states {
            return None;
        }
        if let Err(PropError::Violation(violation)) = check_trace(&state.trace, tp) {
            return Some(Counterexample {
                property: prop_name.to_owned(),
                trace: state.trace,
                violation,
            });
        }
        if state.exchanges >= options.max_exchanges {
            continue;
        }
        // Enumerate exchanges: any existing component may send any message
        // with any payload from the domain. Exchanges with no handler whose
        // implicit Select/Recv actions cannot match either property pattern
        // are pure noise and are skipped to keep the search tractable.
        for sender in state.comp_list.clone() {
            for msg_decl in &program.messages {
                if program.handler(&sender.ctype, &msg_decl.name).is_none()
                    && !recv_relevant(tp, &sender.ctype, &msg_decl.name)
                {
                    continue;
                }
                for payload in falsifier.payloads(&msg_decl.payload) {
                    let mut s = state.clone();
                    s.exchanges += 1;
                    s.trace.push(Action::Select {
                        comp: sender.clone(),
                    });
                    s.trace.push(Action::Recv {
                        comp: sender.clone(),
                        msg: Msg::new(&msg_decl.name, payload.clone()),
                    });
                    if let Some(h) = program.handler(&sender.ctype, &msg_decl.name) {
                        s.comps
                            .insert(reflex_ast::Handler::SENDER.to_owned(), sender.clone());
                        for (p, v) in h.params.iter().zip(&payload) {
                            s.data.insert(p.clone(), v.clone());
                        }
                        for mut out in falsifier.run_cmd(s, &h.body) {
                            // Handler-local bindings do not persist.
                            out.comps.remove(reflex_ast::Handler::SENDER);
                            frontier.push(out);
                        }
                    } else {
                        frontier.push(s);
                    }
                }
            }
        }
    }
    None
}

/// Whether the implicit `Select`/`Recv` actions of an exchange for
/// `(ctype, msg)` could match either pattern of the property.
fn recv_relevant(tp: &reflex_ast::TraceProp, ctype: &str, msg: &str) -> bool {
    use reflex_ast::ActionPat;
    [&tp.a, &tp.b].iter().any(|pat| match pat {
        ActionPat::Recv { comp, msg: m, .. } => {
            m == msg && comp.ctype.as_deref().is_none_or(|c| c == ctype)
        }
        ActionPat::Select { comp } => comp.ctype.as_deref().is_none_or(|c| c == ctype),
        _ => false,
    })
}

fn build_domain(checked: &CheckedProgram, options: &FalsifyOptions) -> BTreeMap<Ty, Vec<Value>> {
    let mut strings: Vec<Value> = vec![Value::from("a"), Value::from("b")];
    let mut nums: Vec<Value> = vec![Value::Num(0), Value::Num(1)];
    // Literals appearing in the program make the domain relevant.
    let mut harvest = |e: &Expr| {
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match e {
                Expr::Lit(Value::Str(s)) => {
                    let v = Value::from(s.clone());
                    if !strings.contains(&v) {
                        strings.push(v);
                    }
                }
                Expr::Lit(Value::Num(n)) => {
                    let v = Value::Num(*n);
                    if !nums.contains(&v) {
                        nums.push(v);
                    }
                }
                Expr::Lit(_) => {}
                Expr::Var(_) => {}
                Expr::Cfg(inner, _) => stack.push(inner),
                Expr::Un(_, t) => stack.push(t),
                Expr::Bin(_, l, r) => {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
    };
    let program = checked.program();
    let mut visit_cmd = |cmd: &Cmd| {
        cmd.visit(&mut |c| match c {
            Cmd::Assign(_, e) => harvest(e),
            Cmd::If { cond, .. } => harvest(cond),
            Cmd::Send { target, args, .. } => {
                harvest(target);
                args.iter().for_each(&mut harvest);
            }
            Cmd::Spawn { config, .. } => config.iter().for_each(&mut harvest),
            Cmd::Call { args, .. } => args.iter().for_each(&mut harvest),
            Cmd::Lookup { pred, .. } => harvest(pred),
            _ => {}
        });
    };
    visit_cmd(&program.init);
    for h in &program.handlers {
        visit_cmd(&h.body);
    }
    strings.truncate(options.domain_per_type);
    nums.truncate(options.domain_per_type);
    let mut domain = BTreeMap::new();
    domain.insert(Ty::Str, strings);
    domain.insert(Ty::Num, nums);
    domain.insert(Ty::Bool, vec![Value::Bool(false), Value::Bool(true)]);
    domain.insert(
        Ty::Fdesc,
        vec![Value::Fdesc(Fdesc::new(100)), Value::Fdesc(Fdesc::new(101))],
    );
    domain
}

struct Falsifier<'a> {
    checked: &'a CheckedProgram,
    domain: BTreeMap<Ty, Vec<Value>>,
    options: &'a FalsifyOptions,
}

impl<'a> Falsifier<'a> {
    fn payloads(&self, tys: &[Ty]) -> Vec<Vec<Value>> {
        let mut out = vec![Vec::new()];
        for ty in tys {
            let values = &self.domain[ty];
            let mut next = Vec::with_capacity(out.len() * values.len());
            for prefix in &out {
                for v in values {
                    let mut p = prefix.clone();
                    p.push(v.clone());
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }

    fn eval(&self, state: &ConcState, e: &Expr) -> Value {
        match e {
            Expr::Lit(v) => v.clone(),
            Expr::Var(x) => state
                .data
                .get(x)
                .cloned()
                .or_else(|| state.comps.get(x).map(|c| Value::Comp(c.id)))
                .expect("typeck: variable in scope"),
            Expr::Cfg(inner, field) => {
                let Value::Comp(id) = self.eval(state, inner) else {
                    unreachable!("typeck: component expression");
                };
                let comp = state
                    .comp_list
                    .iter()
                    .find(|c| c.id == id)
                    .expect("component exists");
                let decl = self
                    .checked
                    .program()
                    .comp_type(&comp.ctype)
                    .expect("declared");
                let (idx, _) = decl.config_field(field).expect("field exists");
                comp.config[idx].clone()
            }
            Expr::Un(op, t) => {
                let v = self.eval(state, t);
                match (op, v) {
                    (reflex_ast::UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (reflex_ast::UnOp::Neg, Value::Num(n)) => Value::Num(n.wrapping_neg()),
                    _ => unreachable!("typeck"),
                }
            }
            Expr::Bin(op, l, r) => {
                use reflex_ast::BinOp::*;
                let a = self.eval(state, l);
                let b = self.eval(state, r);
                match (op, a, b) {
                    (Eq, a, b) => Value::Bool(a == b),
                    (Ne, a, b) => Value::Bool(a != b),
                    (And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(y)),
                    (Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(y)),
                    (Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
                    (Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
                    (Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                    _ => unreachable!("typeck"),
                }
            }
        }
    }

    /// Runs a command concretely; external calls fork over the string
    /// domain (they are world inputs).
    fn run_cmd(&self, state: ConcState, cmd: &Cmd) -> Vec<ConcState> {
        match cmd {
            Cmd::Nop => vec![state],
            Cmd::Block(cs) => {
                let mut states = vec![state];
                for c in cs {
                    let mut next = Vec::new();
                    for s in states {
                        next.extend(self.run_cmd(s, c));
                    }
                    states = next;
                }
                states
            }
            Cmd::Assign(x, e) => {
                let mut s = state;
                let v = self.eval(&s, e);
                s.data.insert(x.clone(), v);
                vec![s]
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(&state, cond) == Value::Bool(true);
                self.run_cmd(state, if taken { then_branch } else { else_branch })
            }
            Cmd::Send { target, msg, args } => {
                let mut s = state;
                let Value::Comp(id) = self.eval(&s, target) else {
                    unreachable!("typeck");
                };
                let comp = s
                    .comp_list
                    .iter()
                    .find(|c| c.id == id)
                    .expect("component exists")
                    .clone();
                let values: Vec<Value> = args.iter().map(|a| self.eval(&s, a)).collect();
                s.trace.push(Action::Send {
                    comp,
                    msg: Msg::new(msg, values),
                });
                vec![s]
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let mut s = state;
                let values: Vec<Value> = config.iter().map(|c| self.eval(&s, c)).collect();
                let comp = CompInst::new(CompId::new(s.next_id), ctype.clone(), values);
                s.next_id += 1;
                s.next_fd += 1;
                s.comp_list.push(comp.clone());
                s.comps.insert(binder.clone(), comp.clone());
                s.trace.push(Action::Spawn { comp });
                vec![s]
            }
            Cmd::Call { binder, func, args } => {
                let values: Vec<Value> = args.iter().map(|a| self.eval(&state, a)).collect();
                let mut out = Vec::new();
                for result in self.domain[&Ty::Str]
                    .iter()
                    .take(self.options.domain_per_type.min(2))
                {
                    let mut s = state.clone();
                    s.trace.push(Action::Call {
                        func: func.clone(),
                        args: values.clone(),
                        result: result.clone(),
                    });
                    s.data.insert(binder.clone(), result.clone());
                    out.push(s);
                }
                out
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                let mut s = state;
                let candidates: Vec<CompInst> = s
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    s.comps.insert(binder.clone(), c.clone());
                    if self.eval(&s, pred) == Value::Bool(true) {
                        let values: Vec<Value> = args.iter().map(|a| self.eval(&s, a)).collect();
                        s.trace.push(Action::Send {
                            comp: c,
                            msg: Msg::new(msg, values),
                        });
                    }
                }
                s.comps.remove(binder);
                vec![s]
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                // First-match semantics, like the runtime.
                let candidates: Vec<CompInst> = state
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                let mut hit = None;
                for c in candidates {
                    let mut probe = state.clone();
                    probe.comps.insert(binder.clone(), c.clone());
                    if self.eval(&probe, pred) == Value::Bool(true) {
                        hit = Some(c);
                        break;
                    }
                }
                match hit {
                    Some(c) => {
                        let mut s = state;
                        s.comps.insert(binder.clone(), c);
                        let mut out = self.run_cmd(s, found);
                        for o in &mut out {
                            o.comps.remove(binder);
                        }
                        out
                    }
                    None => self.run_cmd(state, missing),
                }
            }
        }
    }
}
