//! The shared cross-property proof cache.
//!
//! The paper's §6.4 caches subproofs "at key cut points" *within* one
//! property's search; the Figure-6 kernels, however, re-derive the same
//! auxiliary invariants (monotone-counter guards, spawn-origin lemmas) for
//! property after property. This module lifts both caches out of the
//! per-property prover state into one concurrency-safe table shared by
//! every property of a program — including properties proved on different
//! threads by [`crate::prove_all_parallel`].
//!
//! # Determinism by purity
//!
//! The cache memoizes **self-contained proof packages**:
//!
//! * an *invariant package* is the full certificate slice produced by
//!   proving `∀ vars, guard ⇒ (∃/∄) pattern` in a **fresh** prover context
//!   (empty local cache, depth 0, no shared-cache reads of its own);
//! * a *lemma package* is the self-contained [`LemmaCert`] for
//!   `∀ vars, [a] Enables [b]`, proved the same way (it may read invariant
//!   packages, which is harmless — see below).
//!
//! Because a package is computed from nothing but the program abstraction,
//! the options, and its key, it is a **pure function of the key**: a cache
//! hit returns byte-for-byte what a fresh computation would have produced.
//! Thread timing decides only *who pays* for a package, never its value —
//! which is how `prove_all_parallel` can share work across racing
//! properties and still emit certificates identical to the serial run's.
//! (Two threads may both miss and compute the same package concurrently;
//! the first insert wins and the duplicates are equal, so even that race
//! is invisible.) Failures are packages too — a standalone proof failure
//! is equally key-determined — so unprovable obligations are also shared.
//!
//! Purity has one structural requirement: a package computation must never
//! read the invariant table while one of its own keys is in flight, or the
//! answer would depend on the call chain (and a self-referential key would
//! recurse forever). Invariant packages therefore run with the shared
//! cache detached entirely; lemma packages run with it attached but can
//! only reach *invariant* packages (invariant search never proves lemmas),
//! so no package can ever wait on itself.
//!
//! # Soundness
//!
//! The cache does not extend the trusted base. Spliced packages end up as
//! ordinary invariant/lemma entries inside the emitted [`Certificate`],
//! and [`crate::check_certificate`] re-derives every step of every entry;
//! a corrupted cache can only produce certificates that fail the check,
//! never a wrong "Proved".
//!
//! [`Certificate`]: crate::Certificate

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use reflex_ast::{ActionPat, Ty};

use crate::canon::Guard;
use crate::certificate::{InvariantCert, LemmaCert};
use crate::options::ProofFailure;

/// Key of an invariant package: quantified variables (with the requesting
/// property's types), canonical guard, specialized pattern, polarity.
pub(crate) type SharedInvKey = (Vec<(String, Ty)>, Guard, ActionPat, bool);

/// Key of a lemma package: quantified variables and the two action
/// patterns of `∀ vars, [a] Enables [b]`.
pub(crate) type SharedLemmaKey = (Vec<(String, Ty)>, ActionPat, ActionPat);

/// A memoized invariant proof: the certificate slice the fresh-context
/// proof appended (root last, every internal reference pointing backwards
/// within the slice), or the key-determined failure.
pub(crate) type InvariantPackage = Result<Vec<InvariantCert>, ProofFailure>;

/// A memoized lemma proof (`None`: the lemma is not provable).
pub(crate) type LemmaPackage = Option<LemmaCert>;

/// Concurrency-safe cross-property cache of invariant and lemma proofs.
///
/// Create one per program (or per [`crate::prove_all`] /
/// [`crate::prove_all_parallel`] run) and pass it to
/// [`crate::prove_with_cache`]; see the module docs for the determinism
/// and soundness arguments.
#[derive(Default)]
pub struct ProofCache {
    invariants: RwLock<HashMap<SharedInvKey, Arc<InvariantPackage>>>,
    lemmas: RwLock<HashMap<SharedLemmaKey, Arc<LemmaPackage>>>,
    invariant_hits: AtomicU64,
    invariant_misses: AtomicU64,
    lemma_hits: AtomicU64,
    lemma_misses: AtomicU64,
}

impl ProofCache {
    /// Creates an empty cache.
    pub fn new() -> ProofCache {
        ProofCache::default()
    }

    /// Returns the invariant package for `key`, computing (and publishing)
    /// it with `compute` on a miss.
    pub(crate) fn invariant_package(
        &self,
        key: &SharedInvKey,
        compute: impl FnOnce() -> InvariantPackage,
    ) -> Arc<InvariantPackage> {
        if let Some(hit) = self.invariants.read().expect("cache poisoned").get(key) {
            self.invariant_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.invariant_misses.fetch_add(1, Ordering::Relaxed);
        let pkg = Arc::new(compute());
        Arc::clone(
            self.invariants
                .write()
                .expect("cache poisoned")
                .entry(key.clone())
                .or_insert(pkg),
        )
    }

    /// Returns the lemma package for `key`, computing (and publishing) it
    /// with `compute` on a miss.
    pub(crate) fn lemma_package(
        &self,
        key: &SharedLemmaKey,
        compute: impl FnOnce() -> LemmaPackage,
    ) -> Arc<LemmaPackage> {
        if let Some(hit) = self.lemmas.read().expect("cache poisoned").get(key) {
            self.lemma_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.lemma_misses.fetch_add(1, Ordering::Relaxed);
        let pkg = Arc::new(compute());
        Arc::clone(
            self.lemmas
                .write()
                .expect("cache poisoned")
                .entry(key.clone())
                .or_insert(pkg),
        )
    }

    /// A snapshot of the cache's occupancy and hit counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            invariant_entries: self.invariants.read().expect("cache poisoned").len() as u64,
            lemma_entries: self.lemmas.read().expect("cache poisoned").len() as u64,
            invariant_hits: self.invariant_hits.load(Ordering::Relaxed),
            invariant_misses: self.invariant_misses.load(Ordering::Relaxed),
            lemma_hits: self.lemma_hits.load(Ordering::Relaxed),
            lemma_misses: self.lemma_misses.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ProofCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProofCache")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Occupancy and hit counters of a [`ProofCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct invariant packages stored.
    pub invariant_entries: u64,
    /// Distinct lemma packages stored.
    pub lemma_entries: u64,
    /// Invariant requests answered from the table.
    pub invariant_hits: u64,
    /// Invariant requests that computed a fresh package.
    pub invariant_misses: u64,
    /// Lemma requests answered from the table.
    pub lemma_hits: u64,
    /// Lemma requests that computed a fresh package.
    pub lemma_misses: u64,
}
