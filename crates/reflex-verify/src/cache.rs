//! The shared cross-property proof cache.
//!
//! The paper's §6.4 caches subproofs "at key cut points" *within* one
//! property's search; the Figure-6 kernels, however, re-derive the same
//! auxiliary invariants (monotone-counter guards, spawn-origin lemmas) for
//! property after property. This module lifts both caches out of the
//! per-property prover state into one concurrency-safe table shared by
//! every property of a program — including properties proved on different
//! threads by [`crate::prove_all_parallel`].
//!
//! # Determinism by purity
//!
//! The cache memoizes **self-contained proof packages**:
//!
//! * an *invariant package* is the full certificate slice produced by
//!   proving `∀ vars, guard ⇒ (∃/∄) pattern` in a **fresh** prover context
//!   (empty local cache, depth 0, no shared-cache reads of its own);
//! * a *lemma package* is the self-contained [`LemmaCert`] for
//!   `∀ vars, [a] Enables [b]`, proved the same way (it may read invariant
//!   packages, which is harmless — see below).
//!
//! Because a package is computed from nothing but the program abstraction,
//! the options, and its key, it is a **pure function of the key**: a cache
//! hit returns byte-for-byte what a fresh computation would have produced.
//! Thread timing decides only *who pays* for a package, never its value —
//! which is how `prove_all_parallel` can share work across racing
//! properties and still emit certificates identical to the serial run's.
//! (Two threads may both miss and compute the same package concurrently;
//! the first insert wins and the duplicates are equal, so even that race
//! is invisible.) Failures are packages too — a standalone proof failure
//! is equally key-determined — so unprovable obligations are also shared.
//!
//! Purity has one structural requirement: a package computation must never
//! read the invariant table while one of its own keys is in flight, or the
//! answer would depend on the call chain (and a self-referential key would
//! recurse forever). Invariant packages therefore run with the shared
//! cache detached entirely; lemma packages run with it attached but can
//! only reach *invariant* packages (invariant search never proves lemmas),
//! so no package can ever wait on itself.
//!
//! # Soundness
//!
//! The cache does not extend the trusted base. Spliced packages end up as
//! ordinary invariant/lemma entries inside the emitted [`Certificate`],
//! and [`crate::check_certificate`] re-derives every step of every entry;
//! a corrupted cache can only produce certificates that fail the check,
//! never a wrong "Proved".
//!
//! [`Certificate`]: crate::Certificate

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use reflex_ast::{ActionPat, Ty};

use crate::canon::Guard;
use crate::certificate::{InvariantCert, LemmaCert};
use crate::options::ProofFailure;

/// Key of an invariant package: quantified variables (with the requesting
/// property's types), canonical guard, specialized pattern, polarity.
pub(crate) type SharedInvKey = (Vec<(String, Ty)>, Guard, ActionPat, bool);

/// Key of a lemma package: quantified variables and the two action
/// patterns of `∀ vars, [a] Enables [b]`.
pub(crate) type SharedLemmaKey = (Vec<(String, Ty)>, ActionPat, ActionPat);

/// A memoized invariant proof: the certificate slice the fresh-context
/// proof appended (root last, every internal reference pointing backwards
/// within the slice), or the key-determined failure.
pub(crate) type InvariantPackage = Result<Vec<InvariantCert>, ProofFailure>;

/// A memoized lemma proof (`None`: the lemma is not provable).
pub(crate) type LemmaPackage = Option<LemmaCert>;

/// Shards per table. Workers hammering the cache during obligation-level
/// scheduling contend on a key's shard, not the whole table.
const SHARD_COUNT: usize = 64;

/// A sharded, read-mostly concurrent map: a hit takes one shard's read
/// lock; a miss upgrades that shard to a write lock with an `or_insert`
/// double-check so racing computations of the same key keep the first
/// published package (they are equal anyway — packages are pure).
struct Sharded<K, V> {
    shards: Vec<RwLock<HashMap<K, Arc<V>>>>,
}

impl<K: Hash + Eq + Clone, V> Sharded<K, V> {
    fn new() -> Sharded<K, V> {
        Sharded {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Arc<V>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    fn get_or_compute(
        &self,
        key: &K,
        compute: impl FnOnce() -> V,
        hits: &AtomicU64,
        misses: &AtomicU64,
    ) -> Arc<V> {
        let shard = self.shard(key);
        if let Some(hit) = shard.read().expect("cache poisoned").get(key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        misses.fetch_add(1, Ordering::Relaxed);
        let pkg = Arc::new(compute());
        Arc::clone(
            shard
                .write()
                .expect("cache poisoned")
                .entry(key.clone())
                .or_insert(pkg),
        )
    }

    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache poisoned").len() as u64)
            .sum()
    }
}

impl<K, V> Default for Sharded<K, V>
where
    K: Hash + Eq + Clone,
{
    fn default() -> Self {
        Sharded::new()
    }
}

/// Concurrency-safe cross-property cache of invariant and lemma proofs.
///
/// Create one per program (or per [`crate::prove_all`] /
/// [`crate::prove_all_parallel`] run) and pass it to
/// [`crate::prove_with_cache`]; see the module docs for the determinism
/// and soundness arguments.
#[derive(Default)]
pub struct ProofCache {
    invariants: Sharded<SharedInvKey, InvariantPackage>,
    lemmas: Sharded<SharedLemmaKey, LemmaPackage>,
    invariant_hits: AtomicU64,
    invariant_misses: AtomicU64,
    lemma_hits: AtomicU64,
    lemma_misses: AtomicU64,
}

impl ProofCache {
    /// Creates an empty cache.
    pub fn new() -> ProofCache {
        ProofCache::default()
    }

    /// Returns the invariant package for `key`, computing (and publishing)
    /// it with `compute` on a miss.
    pub(crate) fn invariant_package(
        &self,
        key: &SharedInvKey,
        compute: impl FnOnce() -> InvariantPackage,
    ) -> Arc<InvariantPackage> {
        self.invariants
            .get_or_compute(key, compute, &self.invariant_hits, &self.invariant_misses)
    }

    /// Returns the lemma package for `key`, computing (and publishing) it
    /// with `compute` on a miss.
    pub(crate) fn lemma_package(
        &self,
        key: &SharedLemmaKey,
        compute: impl FnOnce() -> LemmaPackage,
    ) -> Arc<LemmaPackage> {
        self.lemmas
            .get_or_compute(key, compute, &self.lemma_hits, &self.lemma_misses)
    }

    /// A snapshot of the cache's occupancy and hit counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            invariant_entries: self.invariants.len(),
            lemma_entries: self.lemmas.len(),
            invariant_hits: self.invariant_hits.load(Ordering::Relaxed),
            invariant_misses: self.invariant_misses.load(Ordering::Relaxed),
            lemma_hits: self.lemma_hits.load(Ordering::Relaxed),
            lemma_misses: self.lemma_misses.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ProofCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProofCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 threads race `get_or_compute` over an overlapping key space: no
    /// insert may be lost, every key must resolve to exactly one value on
    /// every thread (first publish wins), and the hit/miss counters must
    /// account for every request.
    #[test]
    fn sharded_map_under_contention_loses_no_inserts() {
        const KEYS: u64 = 257;
        const PER_THREAD: u64 = 1024;
        let map: Sharded<u64, (u64, u64)> = Sharded::new();
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let seen: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let (map, hits, misses) = (&map, &hits, &misses);
                    scope.spawn(move || {
                        (0..PER_THREAD)
                            .map(|i| {
                                let key = (t.wrapping_mul(31) + i) % KEYS;
                                let v = map.get_or_compute(&key, || (t, i), hits, misses);
                                (key, v.0 * PER_THREAD + v.1)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(map.len(), KEYS, "every key must be inserted exactly once");
        // The first published value for a key is the value forever, for
        // every thread.
        let mut value_of = std::collections::HashMap::new();
        for thread in &seen {
            for &(key, value) in thread {
                assert_eq!(
                    *value_of.entry(key).or_insert(value),
                    value,
                    "key {key} must resolve to one stable value"
                );
            }
        }
        assert_eq!(
            hits.load(Ordering::Relaxed) + misses.load(Ordering::Relaxed),
            8 * PER_THREAD,
            "every request is either a hit or a miss"
        );
        // Racing computations may both run (both count as misses), but at
        // least one miss per key is structural.
        assert!(misses.load(Ordering::Relaxed) >= KEYS);
    }
}

/// Occupancy and hit counters of a [`ProofCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct invariant packages stored.
    pub invariant_entries: u64,
    /// Distinct lemma packages stored.
    pub lemma_entries: u64,
    /// Invariant requests answered from the table.
    pub invariant_hits: u64,
    /// Invariant requests that computed a fresh package.
    pub invariant_misses: u64,
    /// Lemma requests answered from the table.
    pub lemma_hits: u64,
    /// Lemma requests that computed a fresh package.
    pub lemma_misses: u64,
}
