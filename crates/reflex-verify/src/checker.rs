//! Independent validation of proof certificates.
//!
//! The checker is the *trusted core* of the reproduction, playing the role
//! of Coq's kernel: the proof search in [`crate::trace_prover`] is free to
//! use any heuristic, because nothing it produces is believed until this
//! module re-derives it. The checker re-runs the deterministic parts
//! (symbolic evaluation of the program, trigger enumeration) and validates
//! every claimed justification with solver entailments; it contains no
//! search.
//!
//! Certificates are checked against the same [`ProverOptions`] that
//! produced them, because the options determine the shape of the symbolic
//! path set the certificate indexes into.

use std::fmt;

use reflex_ast::{ActionPat, PropBody, TraceProp, TracePropKind, Ty};
use reflex_symbolic::{CondKind, Path, Solver, SymAction, SymBindings, SymComp, SymState, Term};
use reflex_typeck::CheckedProgram;

use crate::abstraction::Abstraction;
use crate::canon::prop_term;
use crate::certificate::{
    Certificate, CompOriginRef, InvPathJust, InvariantCert, Justification, NegPrior, NegPriorStep,
    TraceCert,
};
use crate::options::ProverOptions;
use crate::shared::{
    case_can_emit_match, conds_entailed, conds_refuted, definite_match, definite_no_match,
    specialize_pattern, trigger_instances,
};

/// A certificate that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckErrorInner {
    /// Where in the certificate the problem is.
    pub context: String,
    /// What is wrong.
    pub reason: String,
}

/// Certificate validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError(pub CheckErrorInner);

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate rejected at {}: {}",
            self.0.context, self.0.reason
        )
    }
}

impl std::error::Error for CheckError {}

fn reject(context: impl Into<String>, reason: impl Into<String>) -> CheckError {
    CheckError(CheckErrorInner {
        context: context.into(),
        reason: reason.into(),
    })
}

/// Validates `certificate` against `checked`, under the options it was
/// produced with.
///
/// # Errors
///
/// Returns a [`CheckError`] describing the first invalid step.
pub fn check_certificate(
    checked: &CheckedProgram,
    certificate: &Certificate,
    options: &ProverOptions,
) -> Result<(), CheckError> {
    // Programs using `broadcast` are outside the automatable fragment
    // (§7): the symbolic abstraction under-approximates them, so no
    // certificate over it can be trusted — and the prover never emits one.
    if crate::program_uses_broadcast(checked.program()) {
        return Err(reject(
            "program",
            "programs using `broadcast` have no checkable certificates",
        ));
    }
    let abs = Abstraction::build(checked, options);
    check_certificate_with(&abs, certificate, options)
}

/// [`check_certificate`] against a pre-built behavioral abstraction.
///
/// Building the abstraction dominates the cost of checking small
/// certificates, so a caller validating many certificates of one program —
/// the incremental pipeline re-checking every store-loaded proof — should
/// build it once and use this entry point. `abs` must have been built from
/// the program and options the certificate is being checked against;
/// [`check_certificate`] is exactly this function after an
/// [`Abstraction::build`].
///
/// # Errors
///
/// Returns a [`CheckError`] describing the first invalid step.
pub fn check_certificate_with(
    abs: &Abstraction<'_>,
    certificate: &Certificate,
    options: &ProverOptions,
) -> Result<(), CheckError> {
    let checked = abs.checked();
    if crate::program_uses_broadcast(checked.program()) {
        return Err(reject(
            "program",
            "programs using `broadcast` have no checkable certificates",
        ));
    }
    // Checking replays the proof's term construction; give it the same
    // scratch term arena a proof task gets.
    reflex_symbolic::with_scratch(|| check_certificate_inner(abs, certificate, options))
}

fn check_certificate_inner(
    abs: &Abstraction<'_>,
    certificate: &Certificate,
    options: &ProverOptions,
) -> Result<(), CheckError> {
    let checked = abs.checked();
    match certificate {
        Certificate::Trace(cert) => check_trace_cert(checked, abs, cert, options),
        Certificate::NonInterference(cert) => {
            // The NI analysis is deterministic and search-free; checking
            // is re-running it and comparing the full case inventory.
            let prop = checked
                .program()
                .property(&cert.property)
                .ok_or_else(|| reject("property", format!("no property `{}`", cert.property)))?;
            let PropBody::NonInterference(spec) = &prop.body else {
                return Err(reject(
                    "property",
                    format!("`{}` is not a non-interference property", cert.property),
                ));
            };
            match crate::ni_prover::prove_ni(abs, options, prop, spec) {
                crate::options::Outcome::Proved(Certificate::NonInterference(re)) => {
                    // Compare the proof content only: the dependency set is
                    // a planning artifact recorded against the program the
                    // proof originally ran over, which may legitimately
                    // differ from this checker's program.
                    if re.property == cert.property && re.cases == cert.cases {
                        Ok(())
                    } else {
                        Err(reject(
                            "non-interference",
                            "certificate does not match the re-derived analysis",
                        ))
                    }
                }
                crate::options::Outcome::Proved(_) => unreachable!("NI proof yields NI cert"),
                crate::options::Outcome::Failed(e)
                | crate::options::Outcome::Timeout(e)
                | crate::options::Outcome::Cancelled(e)
                | crate::options::Outcome::Crashed(e) => Err(reject(
                    "non-interference",
                    format!("re-derivation failed: {e}"),
                )),
            }
        }
    }
}

fn check_trace_cert(
    checked: &CheckedProgram,
    abs: &Abstraction<'_>,
    cert: &TraceCert,
    options: &ProverOptions,
) -> Result<(), CheckError> {
    let prop = checked
        .program()
        .property(&cert.property)
        .ok_or_else(|| reject("property", format!("no property `{}`", cert.property)))?;
    let PropBody::Trace(tp) = &prop.body else {
        return Err(reject(
            "property",
            format!("`{}` is not a trace property", cert.property),
        ));
    };
    check_trace_cert_core(checked, abs, cert, tp, options, 0)
}

/// Maximum lemma nesting the checker accepts (mirrors the prover).
const MAX_LEMMA_DEPTH: usize = 2;

fn check_trace_cert_core(
    checked: &CheckedProgram,
    abs: &Abstraction<'_>,
    cert: &TraceCert,
    tp: &TraceProp,
    options: &ProverOptions,
    lemma_depth: usize,
) -> Result<(), CheckError> {
    let forall_ty = |_v: &str| Ty::Str;

    // 0. Validate the auxiliary lemmas (each is a full `Enables`
    //    certificate in its own right).
    if !cert.lemmas.is_empty() && lemma_depth >= MAX_LEMMA_DEPTH {
        return Err(reject("lemmas", "lemma nesting too deep"));
    }
    for (li, lemma) in cert.lemmas.iter().enumerate() {
        let ctx = format!("lemma #{li}");
        // The positive-obligation variable rule must hold for the lemma.
        let b_vars = lemma.b.vars();
        for v in lemma.a.vars() {
            if !b_vars.contains(&v) {
                return Err(reject(&ctx, format!("lemma variable `{v}` not in trigger")));
            }
        }
        let lemma_tp = TraceProp::new(TracePropKind::Enables, lemma.a.clone(), lemma.b.clone());
        check_trace_cert_core(
            checked,
            abs,
            &lemma.cert,
            &lemma_tp,
            options,
            lemma_depth + 1,
        )?;
    }

    // 1. Validate all auxiliary invariants first (references must point
    //    backwards, so this order is well-founded).
    for (id, inv) in cert.invariants.iter().enumerate() {
        check_invariant(checked, abs, cert, id, inv, options)?;
    }

    // 2. Base cases.
    if cert.base.len() != abs.worlds.len() {
        return Err(reject("base", "wrong number of base cases"));
    }
    for (wi, (world, path_cert)) in abs.worlds.iter().zip(&cert.base).enumerate() {
        let actions: Vec<&SymAction> = world.init.actions.iter().collect();
        check_segment(
            cert,
            tp,
            &forall_ty,
            &actions,
            &world.init.condition,
            None,
            &path_cert.obligations,
            &format!("base {wi}"),
        )?;
    }

    // 3. Inductive cases, in (world × exchange) order.
    let expected_cases: usize = abs.worlds.iter().map(|w| w.exchanges.len()).sum();
    if cert.cases.len() != expected_cases {
        return Err(reject("cases", "wrong number of inductive cases"));
    }
    let mut case_iter = cert.cases.iter();
    for (wi, world) in abs.worlds.iter().enumerate() {
        for exchange in &world.exchanges {
            let case = case_iter.next().expect("length checked");
            let ctx = format!("world {wi}, case {}:{}", exchange.ctype, exchange.msg);
            if case.ctype != exchange.ctype || case.msg != exchange.msg {
                return Err(reject(&ctx, "case order mismatch"));
            }
            if case.skipped {
                if case_can_emit_match(checked, &exchange.ctype, &exchange.msg, tp.trigger()) {
                    return Err(reject(
                        &ctx,
                        "claimed syntactic skip, but the case can emit a trigger match",
                    ));
                }
                continue;
            }
            if case.paths.len() != exchange.paths.len() {
                return Err(reject(&ctx, "wrong number of path certificates"));
            }
            for (pi, (path, path_cert)) in exchange.paths.iter().zip(&case.paths).enumerate() {
                let actions = exchange.appended_actions(path);
                let conditions: Vec<(Term, bool)> = world
                    .range_assumptions
                    .iter()
                    .chain(path.condition.iter())
                    .cloned()
                    .collect();
                check_segment(
                    cert,
                    tp,
                    &forall_ty,
                    &actions,
                    &conditions,
                    Some((&world.pre, &exchange.sender, path)),
                    &path_cert.obligations,
                    &format!("{ctx}, path {pi}"),
                )?;
            }
        }
    }
    Ok(())
}

/// Validates the obligations of one appended-action segment. `pre` is
/// `None` for base cases (empty prior trace).
#[allow(clippy::too_many_arguments)]
fn check_segment(
    cert: &TraceCert,
    tp: &reflex_ast::TraceProp,
    forall_ty: &impl Fn(&str) -> Ty,
    actions: &[&SymAction],
    conditions: &[(Term, bool)],
    exchange_ctx: Option<(&SymState, &SymComp, &Path)>,
    obligations: &[(usize, Justification)],
    ctx: &str,
) -> Result<(), CheckError> {
    let pre: Option<&SymState> = exchange_ctx.map(|(p, _, _)| p);
    let solver0 = Solver::with_assumptions(conditions);
    let instances = trigger_instances(tp.trigger(), actions, &SymBindings::new());
    if instances.len() != obligations.len()
        || instances
            .iter()
            .zip(obligations)
            .any(|(inst, (idx, _))| inst.index != *idx)
    {
        return Err(reject(
            ctx,
            "certificate does not cover exactly the trigger instances",
        ));
    }
    for (inst, (_, just)) in instances.iter().zip(obligations) {
        let octx = format!("{ctx}, trigger #{}", inst.index);
        // Context for this obligation: path condition + match conditions.
        let mut solver = solver0.clone();
        for (t, pol) in &inst.conds {
            solver.assert_term(t.clone(), *pol);
        }
        match just {
            Justification::Refuted => {
                if !(conds_refuted(&solver0, &inst.conds) || solver.is_unsat()) {
                    return Err(reject(&octx, "claimed refutation does not hold"));
                }
                continue;
            }
            Justification::Witness { index } => {
                let position_ok = match tp.kind {
                    TracePropKind::Enables => *index < inst.index,
                    TracePropKind::Ensures => *index > inst.index,
                    TracePropKind::ImmBefore => inst.index > 0 && *index == inst.index - 1,
                    TracePropKind::ImmAfter => *index == inst.index + 1,
                    TracePropKind::Disables => false,
                };
                if !position_ok || *index >= actions.len() {
                    return Err(reject(&octx, "witness index at an illegal position"));
                }
                if !definite_match(&solver, tp.obligation(), actions[*index], &inst.bindings) {
                    return Err(reject(&octx, "claimed witness does not definitely match"));
                }
            }
            Justification::Invariant { inv_id } => {
                if tp.kind != TracePropKind::Enables {
                    return Err(reject(&octx, "invariant justification outside Enables"));
                }
                let Some(world_pre) = pre else {
                    return Err(reject(&octx, "invariant justification in a base case"));
                };
                check_invariant_applies(
                    cert,
                    *inv_id,
                    true,
                    tp.obligation(),
                    inst,
                    &solver,
                    world_pre,
                    &octx,
                )?;
            }
            Justification::NoMatch { prior } => {
                if tp.kind != TracePropKind::Disables {
                    return Err(reject(&octx, "NoMatch justification outside Disables"));
                }
                for (j, action) in actions.iter().enumerate().take(inst.index) {
                    if !definite_no_match(&solver, tp.obligation(), action, &inst.bindings) {
                        return Err(reject(
                            &octx,
                            format!("action #{j} may match the forbidden pattern"),
                        ));
                    }
                }
                match (prior, exchange_ctx) {
                    (NegPrior::EmptyTrace, None) => {}
                    (NegPrior::EmptyTrace, Some(_)) => {
                        return Err(reject(&octx, "EmptyTrace claimed in an inductive case"))
                    }
                    (NegPrior::Invariant { .. } | NegPrior::MissedLookup { .. }, None) => {
                        return Err(reject(&octx, "inductive justification in a base case"))
                    }
                    (NegPrior::Invariant { inv_id }, Some((world_pre, _, _))) => {
                        check_invariant_applies(
                            cert,
                            *inv_id,
                            false,
                            tp.obligation(),
                            inst,
                            &solver,
                            world_pre,
                            &octx,
                        )?;
                    }
                    (NegPrior::MissedLookup { lookup_index }, Some((_, _, path))) => {
                        let Some(ml) = path.missed_lookups.get(*lookup_index) else {
                            return Err(reject(&octx, "dangling missed-lookup index"));
                        };
                        if !crate::trace_prover::missed_lookup_covers(
                            ml,
                            tp.obligation(),
                            inst,
                            &solver,
                        ) {
                            return Err(reject(
                                &octx,
                                "claimed missed lookup does not cover the pattern",
                            ));
                        }
                    }
                }
            }
            Justification::ViaCompOrigin { origin, lemma_id } => {
                if tp.kind != TracePropKind::Enables {
                    return Err(reject(&octx, "ViaCompOrigin outside Enables"));
                }
                let Some((_, sender, path)) = exchange_ctx else {
                    return Err(reject(&octx, "ViaCompOrigin in a base case"));
                };
                // Resolve the origin component.
                let comp: &SymComp = match origin {
                    CompOriginRef::Sender => sender,
                    CompOriginRef::Lookup { index } => {
                        let mut found = None;
                        let mut li = 0;
                        for kind in &path.cond_kinds {
                            if let CondKind::LookupPred { comp } = kind {
                                if li == *index {
                                    found = Some(comp);
                                    break;
                                }
                                li += 1;
                            }
                        }
                        let Some(c) = found else {
                            return Err(reject(&octx, "dangling lookup origin index"));
                        };
                        // A same-exchange spawn of this type would break
                        // the ordering argument.
                        if actions.iter().any(
                            |a| matches!(a, SymAction::Spawn { comp: s } if s.ctype == c.ctype),
                        ) {
                            return Err(reject(
                                &octx,
                                "lookup origin invalid: same-type spawn in this exchange",
                            ));
                        }
                        c
                    }
                };
                let Some(lemma_id) = lemma_id else {
                    // Direct discharge: the obligation must be a spawn
                    // pattern the origin component provably matches.
                    match reflex_symbolic::unify_action(
                        tp.obligation(),
                        &SymAction::Spawn { comp: comp.clone() },
                        &inst.bindings,
                    ) {
                        reflex_symbolic::Unify::Match { conditions, .. }
                            if conds_entailed(&solver, &conditions) =>
                        {
                            continue;
                        }
                        _ => {
                            return Err(reject(
                                &octx,
                                "origin component does not match the spawn obligation",
                            ))
                        }
                    }
                };
                let Some(lemma) = cert.lemmas.get(*lemma_id) else {
                    return Err(reject(&octx, "dangling lemma id"));
                };
                // The lemma's spawn pattern must pin the origin component.
                let ActionPat::Spawn {
                    comp:
                        reflex_ast::CompPat {
                            ctype: Some(pat_ctype),
                            config: Some(fields),
                        },
                } = &lemma.b
                else {
                    return Err(reject(
                        &octx,
                        "lemma trigger is not a concrete spawn pattern",
                    ));
                };
                if *pat_ctype != comp.ctype || fields.len() != comp.config.len() {
                    return Err(reject(&octx, "lemma spawn pattern does not fit the origin"));
                }
                for (field, cfg_term) in fields.iter().zip(&comp.config) {
                    match field {
                        reflex_ast::PatField::Any => {}
                        reflex_ast::PatField::Lit(val) => {
                            let lit = Term::Lit(val.clone());
                            if !solver.entails_equal(cfg_term, &lit) {
                                return Err(reject(
                                    &octx,
                                    "origin configuration does not match the lemma literal",
                                ));
                            }
                        }
                        reflex_ast::PatField::Var(v) => {
                            let Some(bound) = inst.bindings.get(v) else {
                                return Err(reject(
                                    &octx,
                                    format!("lemma variable `{v}` unbound at the obligation"),
                                ));
                            };
                            if bound != cfg_term && !solver.entails_equal(bound, cfg_term) {
                                return Err(reject(
                                    &octx,
                                    format!(
                                        "binding of `{v}` is not provably the origin's \
                                         configuration field"
                                    ),
                                ));
                            }
                        }
                    }
                }
                // The lemma's conclusion must be exactly the (specialized)
                // obligation.
                let expected = specialize_pattern(tp.obligation(), &inst.bindings);
                if lemma.a != expected {
                    return Err(reject(
                        &octx,
                        format!(
                            "lemma proves `{}` but the obligation needs `{expected}`",
                            lemma.a
                        ),
                    ));
                }
            }
        }
        // Silence unused warning for forall_ty in release config — it is
        // used below through check_invariant_applies indirectly.
        let _ = forall_ty;
    }
    Ok(())
}

/// Verifies that invariant `inv_id` discharges this obligation: right
/// polarity, exactly the specialized obligation pattern, and a guard whose
/// instantiation (pre-state + the trigger's bindings) is entailed.
#[allow(clippy::too_many_arguments)]
fn check_invariant_applies(
    cert: &TraceCert,
    inv_id: usize,
    positive: bool,
    obligation: &ActionPat,
    inst: &crate::shared::TriggerInstance,
    solver: &Solver,
    pre: &SymState,
    ctx: &str,
) -> Result<(), CheckError> {
    let Some(inv) = cert.invariants.get(inv_id) else {
        return Err(reject(ctx, format!("dangling invariant id {inv_id}")));
    };
    if inv.positive != positive {
        return Err(reject(ctx, "invariant has the wrong polarity"));
    }
    let expected = specialize_pattern(obligation, &inst.bindings);
    if inv.pattern != expected {
        return Err(reject(
            ctx,
            format!(
                "invariant pattern `{}` does not match the obligation `{expected}`",
                inv.pattern
            ),
        ));
    }
    let binding = |v: &str| inst.bindings.get(v).cloned();
    let guard_inst = inv.guard.instantiate_with(pre, &binding);
    if !conds_entailed(solver, &guard_inst) {
        return Err(reject(
            ctx,
            format!(
                "the invariant guard `{}` is not entailed at this obligation",
                inv.guard
            ),
        ));
    }
    // For a positive invariant, its conclusion must pin every pattern
    // variable the obligation needs: each pattern variable must be bound
    // by the trigger instance (which `specialize_pattern` + binding
    // entailment connect to the invariant's quantifiers).
    if positive {
        for v in inv.pattern.vars() {
            if inst.bindings.get(&v).is_none() {
                return Err(reject(
                    ctx,
                    format!("pattern variable `{v}` is unbound at the obligation"),
                ));
            }
        }
    }
    Ok(())
}

/// Validates one auxiliary invariant's induction.
fn check_invariant(
    checked: &CheckedProgram,
    abs: &Abstraction<'_>,
    cert: &TraceCert,
    id: usize,
    inv: &InvariantCert,
    _options: &ProverOptions,
) -> Result<(), CheckError> {
    let ctx0 = format!("invariant #{id} ({inv})");
    let mut sigma0 = SymBindings::new();
    for (v, ty) in &inv.vars {
        sigma0.insert(v.clone(), prop_term(v, *ty));
    }
    // Every guard/pattern property variable must be quantified.
    for v in inv.guard.prop_vars().into_iter().chain(inv.pattern.vars()) {
        if !inv.vars.iter().any(|(n, _)| *n == v) {
            return Err(reject(&ctx0, format!("unquantified variable `{v}`")));
        }
    }

    // Base cases.
    if inv.base.len() != abs.worlds.len() {
        return Err(reject(&ctx0, "wrong number of base cases"));
    }
    for (wi, (world, just)) in abs.worlds.iter().zip(&inv.base).enumerate() {
        let ctx = format!("{ctx0}, base {wi}");
        let post = inv.guard.instantiate(&world.init.state);
        let mut solver = Solver::with_assumptions(world.init.condition.iter().chain(post.iter()));
        let actions: Vec<&SymAction> = world.init.actions.iter().collect();
        match just {
            InvPathJust::GuardUnsat => {
                if !solver.is_unsat() {
                    return Err(reject(&ctx, "claimed GuardUnsat is satisfiable"));
                }
            }
            InvPathJust::Witness { index } => {
                if !inv.positive {
                    return Err(reject(&ctx, "witness in a negative invariant"));
                }
                if *index >= actions.len()
                    || !definite_match(&solver, &inv.pattern, actions[*index], &sigma0)
                {
                    return Err(reject(&ctx, "claimed base witness does not match"));
                }
            }
            InvPathJust::NegativeOk {
                prior: NegPriorStep::EmptyTrace,
            } => {
                if inv.positive {
                    return Err(reject(&ctx, "NegativeOk in a positive invariant"));
                }
                for (j, act) in actions.iter().enumerate() {
                    if !definite_no_match(&solver, &inv.pattern, act, &sigma0) {
                        return Err(reject(&ctx, format!("init action #{j} may match")));
                    }
                }
            }
            other => {
                return Err(reject(
                    &ctx,
                    format!("illegal base justification {other:?}"),
                ))
            }
        }
    }

    // Inductive cases.
    let expected_cases: usize = abs.worlds.iter().map(|w| w.exchanges.len()).sum();
    if inv.cases.len() != expected_cases {
        return Err(reject(&ctx0, "wrong number of inductive cases"));
    }
    let guard_state_vars: Vec<String> = {
        let mut out = Vec::new();
        for (t, _) in &inv.guard.atoms {
            let mut syms = Vec::new();
            t.collect_syms(&mut syms);
            for s in syms {
                if let reflex_symbolic::SymKind::StateVar(n) = s.kind {
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
        out
    };
    let mut case_iter = inv.cases.iter();
    for (wi, world) in abs.worlds.iter().enumerate() {
        for exchange in &world.exchanges {
            let case = case_iter.next().expect("length checked");
            let ctx = format!(
                "{ctx0}, world {wi}, case {}:{}",
                exchange.ctype, exchange.msg
            );
            if case.ctype != exchange.ctype || case.msg != exchange.msg {
                return Err(reject(&ctx, "case order mismatch"));
            }
            if case.skipped {
                let emits =
                    case_can_emit_match(checked, &exchange.ctype, &exchange.msg, &inv.pattern);
                let assigns = checked
                    .program()
                    .handler(&exchange.ctype, &exchange.msg)
                    .map(|h| {
                        h.body
                            .assigned_vars()
                            .iter()
                            .any(|v| guard_state_vars.contains(v))
                    })
                    .unwrap_or(false);
                if emits || assigns {
                    return Err(reject(&ctx, "claimed skip is not justified"));
                }
                continue;
            }
            if case.paths.len() != exchange.paths.len() {
                return Err(reject(&ctx, "wrong number of path justifications"));
            }
            for (pi, (path, just)) in exchange.paths.iter().zip(&case.paths).enumerate() {
                let pctx = format!("{ctx}, path {pi}");
                let post = inv.guard.instantiate(&path.state);
                let phi: Vec<(Term, bool)> = world
                    .range_assumptions
                    .iter()
                    .cloned()
                    .chain(path.condition.iter().cloned())
                    .chain(post.iter().cloned())
                    .collect();
                let mut solver = Solver::with_assumptions(&phi);
                let pre_atoms = inv.guard.instantiate(&world.pre);
                let actions = exchange.appended_actions(path);
                match just {
                    InvPathJust::GuardUnsat => {
                        if !solver.is_unsat() {
                            return Err(reject(&pctx, "claimed GuardUnsat is satisfiable"));
                        }
                    }
                    InvPathJust::Preserved => {
                        if !inv.positive {
                            return Err(reject(&pctx, "Preserved in a negative invariant"));
                        }
                        if !conds_entailed(&solver, &pre_atoms) {
                            return Err(reject(&pctx, "guard not entailed in the pre-state"));
                        }
                    }
                    InvPathJust::Witness { index } => {
                        if !inv.positive {
                            return Err(reject(&pctx, "witness in a negative invariant"));
                        }
                        if *index >= actions.len()
                            || !definite_match(&solver, &inv.pattern, actions[*index], &sigma0)
                        {
                            return Err(reject(&pctx, "claimed witness does not match"));
                        }
                    }
                    InvPathJust::ViaInvariant { inv_id } => {
                        if !inv.positive {
                            return Err(reject(&pctx, "ViaInvariant in a negative invariant"));
                        }
                        check_invariant_chain(
                            cert, id, *inv_id, inv, &solver, &world.pre, &pctx, true,
                        )?;
                    }
                    InvPathJust::NegativeOk { prior } => {
                        if inv.positive {
                            return Err(reject(&pctx, "NegativeOk in a positive invariant"));
                        }
                        for (j, act) in actions.iter().enumerate() {
                            if !definite_no_match(&solver, &inv.pattern, act, &sigma0) {
                                return Err(reject(
                                    &pctx,
                                    format!("appended action #{j} may match"),
                                ));
                            }
                        }
                        match prior {
                            NegPriorStep::Ih => {
                                if !conds_entailed(&solver, &pre_atoms) {
                                    return Err(reject(
                                        &pctx,
                                        "IH claimed but guard not entailed in the pre-state",
                                    ));
                                }
                            }
                            NegPriorStep::Invariant { inv_id } => {
                                check_invariant_chain(
                                    cert, id, *inv_id, inv, &solver, &world.pre, &pctx, false,
                                )?;
                            }
                            NegPriorStep::EmptyTrace => {
                                return Err(reject(&pctx, "EmptyTrace prior in an inductive case"))
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies a chained invariant reference inside another invariant's
/// induction: backward reference, same pattern and polarity, guard
/// entailed at the pre-state (canonical property variables are shared).
#[allow(clippy::too_many_arguments)]
fn check_invariant_chain(
    cert: &TraceCert,
    current_id: usize,
    target_id: usize,
    inv: &InvariantCert,
    solver: &Solver,
    pre: &SymState,
    ctx: &str,
    positive: bool,
) -> Result<(), CheckError> {
    if target_id >= current_id {
        return Err(reject(
            ctx,
            format!("invariant #{current_id} references non-prior invariant #{target_id}"),
        ));
    }
    let target = &cert.invariants[target_id];
    if target.positive != positive {
        return Err(reject(ctx, "chained invariant has the wrong polarity"));
    }
    if target.pattern != inv.pattern {
        return Err(reject(ctx, "chained invariant proves a different pattern"));
    }
    let guard_inst = target.guard.instantiate(pre);
    if !conds_entailed(solver, &guard_inst) {
        return Err(reject(
            ctx,
            format!(
                "chained guard `{}` not entailed in the pre-state",
                target.guard
            ),
        ));
    }
    Ok(())
}
