//! Dependency-driven incremental re-verification — the future work flagged
//! in the paper's §6.4: "Future work can explore incremental verification
//! in order to further reduce the time required for re-verification."
//!
//! Every certificate records a [`DepSet`]: the canonical fingerprints of
//! the declaration group, the property, the abstraction's range
//! assumptions, and each handler case its induction consulted (plus the
//! cases it discharged purely syntactically). The planner here compares
//! those recorded fingerprints against the *new* program's and sorts each
//! property onto the **reuse ladder**:
//!
//! 1. **full reuse** — nothing the proof consulted changed: the previous
//!    certificate is returned as-is (it is byte-identical to what a
//!    from-scratch run would emit);
//! 2. **per-case reuse** — only some handler cases changed and the
//!    certificate is free of auxiliary invariants and lemmas (which
//!    quantify over *all* handlers): the unchanged base and case proofs
//!    are spliced and only the dirty cases re-proved
//!    ([`crate::trace_prover`]'s partial entry point);
//! 3. **re-prove** — anything else (declaration, property or
//!    range-assumption changes, or invariant/lemma-bearing and NI
//!    certificates with any dirty handler).
//!
//! The planner is *untrusted*, like the proof search itself: a planning
//! bug can cost a missed reuse or a certificate that fails the independent
//! checker — never a wrong "Proved". Reused content is exactly as
//! trustworthy as the original run's; certificates loaded from unreliable
//! media (the on-disk proof store) are additionally re-validated through
//! [`crate::check_certificate`] before being trusted at all.

use std::collections::{BTreeMap, BTreeSet};

use reflex_ast::{Fp, PropBody};
use reflex_typeck::CheckedProgram;

use crate::cache::ProofCache;
use crate::certificate::{Certificate, DepSet};
use crate::options::{Outcome, ProverOptions, VerifyError};
use crate::shared::case_can_emit_match;
use crate::Abstraction;

/// The result of an incremental re-verification.
#[derive(Debug)]
pub struct IncrementalReport {
    /// `(property, outcome)` in declaration order, as from
    /// [`crate::prove_all`].
    pub outcomes: Vec<(String, Outcome)>,
    /// Properties whose previous certificates were reused wholesale.
    pub reused: Vec<String>,
    /// Properties whose certificates were patched per-case: unchanged base
    /// and exchange-case proofs spliced, dirty cases re-proved.
    pub partial: Vec<String>,
    /// Properties that were re-proved from scratch.
    pub reproved: Vec<String>,
}

impl IncrementalReport {
    /// Properties served entirely or partially from previous proofs.
    pub fn reuse_count(&self) -> usize {
        self.reused.len() + self.partial.len()
    }
}

/// What the planner decided for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReusePlan {
    /// Return the previous certificate unchanged.
    Full,
    /// Splice the previous certificate, re-proving only these
    /// `(ctype, msg)` cases.
    Partial {
        /// The dirty exchange cases.
        dirty: BTreeSet<(String, String)>,
    },
    /// Prove from scratch (also used when no previous certificate exists).
    Reprove,
}

/// The dependency graph over a set of previous certificates: which
/// properties consulted which handler cases, by fingerprint.
///
/// Built once per re-verification from the certificates' recorded
/// [`DepSet`]s; [`DepGraph::plan`] maps the edit diff (expressed as the new
/// program's fingerprints) to a [`ReusePlan`] per property.
#[derive(Debug)]
pub struct DepGraph<'c> {
    /// Property name → its previous certificate.
    certs: BTreeMap<&'c str, &'c Certificate>,
    /// Handler case → properties whose proofs fingerprint-track it.
    dependents: BTreeMap<(String, String), Vec<&'c str>>,
}

impl<'c> DepGraph<'c> {
    /// Indexes `previous` by property name (one scan — the certificates
    /// are consulted many times during planning).
    ///
    /// # Errors
    ///
    /// Rejects malformed inputs instead of panicking, so a bad slice can
    /// never abort a long-running watch session:
    /// [`VerifyError::DuplicateCertificate`] when a name appears twice,
    /// [`VerifyError::CertificateMismatch`] when a pair's certificate was
    /// issued for a different property than the name it is filed under.
    pub fn build(previous: &'c [(String, Certificate)]) -> Result<DepGraph<'c>, VerifyError> {
        let mut certs: BTreeMap<&str, &Certificate> = BTreeMap::new();
        let mut dependents: BTreeMap<(String, String), Vec<&str>> = BTreeMap::new();
        for (name, cert) in previous {
            if cert.property() != name {
                return Err(VerifyError::CertificateMismatch {
                    name: name.clone(),
                    certified: cert.property().to_owned(),
                });
            }
            if certs.insert(name.as_str(), cert).is_some() {
                return Err(VerifyError::DuplicateCertificate { name: name.clone() });
            }
            for (ctype, msg, _) in &cert.deps().handlers {
                dependents
                    .entry((ctype.clone(), msg.clone()))
                    .or_default()
                    .push(name.as_str());
            }
        }
        Ok(DepGraph { certs, dependents })
    }

    /// The previous certificate for `property`, if any.
    pub fn certificate(&self, property: &str) -> Option<&'c Certificate> {
        self.certs.get(property).copied()
    }

    /// The properties whose proofs fingerprint-track the `(ctype, msg)`
    /// handler case.
    pub fn dependents_of(&self, ctype: &str, msg: &str) -> &[&'c str] {
        self.dependents
            .get(&(ctype.to_owned(), msg.to_owned()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Plans one property of `new` (whose abstraction has range-assumption
    /// fingerprint `ranges`).
    pub fn plan(&self, property: &str, new: &CheckedProgram, ranges: Fp) -> ReusePlan {
        let Some(cert) = self.certificate(property) else {
            return ReusePlan::Reprove;
        };
        let fps = new.fingerprints();
        let deps = cert.deps();
        // The declaration group shapes the case split and the base cases;
        // the range assumptions feed every inductive solver context; the
        // property is the statement itself. Any change invalidates every
        // part of the proof.
        if deps.decls != fps.decls
            || Some(deps.property) != fps.property(property)
            || deps.ranges != ranges
        {
            return ReusePlan::Reprove;
        }
        // Fingerprint-tracked cases: dirty where the handler changed.
        let mut dirty: BTreeSet<(String, String)> = BTreeSet::new();
        for (ctype, msg, fp) in &deps.handlers {
            if fps.handler(ctype, msg) != Some(*fp) {
                dirty.insert((ctype.clone(), msg.clone()));
            }
        }
        // Syntactically-skipped cases: dirty only if the new handler could
        // now emit an action unifiable with the trigger (the same check the
        // independent checker re-runs to validate a skip).
        let trigger = new
            .program()
            .property(property)
            .and_then(|p| match &p.body {
                PropBody::Trace(tp) => Some(tp.trigger()),
                PropBody::NonInterference(_) => None,
            });
        for (ctype, msg) in &deps.syntactic_only {
            let still_skippable = match trigger {
                Some(pat) => !case_can_emit_match(new, ctype, msg, pat),
                None => false,
            };
            if !still_skippable {
                dirty.insert((ctype.clone(), msg.clone()));
            }
        }
        if dirty.is_empty() {
            return ReusePlan::Full;
        }
        // Per-case splicing is sound and deterministic only for
        // certificates whose justifications are local to their own cases:
        // auxiliary invariants and lemmas quantify over every handler, and
        // the NI conditions are re-derived wholesale.
        match cert {
            Certificate::Trace(t) if t.invariants.is_empty() && t.lemmas.is_empty() => {
                ReusePlan::Partial { dirty }
            }
            _ => ReusePlan::Reprove,
        }
    }
}

/// Re-verifies `new` given the certificates of a previous run.
///
/// `previous` pairs property names with the certificates obtained from a
/// successful [`crate::prove_all`] (or earlier `reverify`) run under the
/// *same* [`ProverOptions`]; mixing configurations is detected by the
/// proof store but is the caller's responsibility here.
///
/// Outcomes are byte-identical to a from-scratch [`crate::prove_all`] over
/// `new` — full reuse only triggers when everything the proof consulted is
/// unchanged, and per-case splicing re-proves exactly the cases a scratch
/// run would prove differently.
///
/// # Errors
///
/// Returns a [`VerifyError`] when `previous` is malformed (duplicate or
/// misfiled certificates); proof-search failures are reported per-property
/// inside the report, never as errors.
pub fn reverify(
    previous: &[(String, Certificate)],
    new: &CheckedProgram,
    options: &ProverOptions,
) -> Result<IncrementalReport, VerifyError> {
    reverify_jobs(previous, new, options, 1)
}

/// [`reverify`] with the re-proving work fanned out over `jobs` worker
/// threads (`0`: one per available CPU).
///
/// The parallel path schedules from the *same* dirty-set plan as the
/// serial one and shares one [`ProofCache`], so outcomes, certificates and
/// report classifications are byte-identical for every `jobs` value (the
/// same guarantee [`crate::prove_all_parallel`] makes).
pub fn reverify_jobs(
    previous: &[(String, Certificate)],
    new: &CheckedProgram,
    options: &ProverOptions,
    jobs: usize,
) -> Result<IncrementalReport, VerifyError> {
    // In-memory certificates are exactly as trustworthy as the run that
    // produced them, so reuse does not re-run the checker.
    reverify_core(previous, new, options, jobs, false, None)
}

/// [`reverify_jobs`] with a per-property [`PropObserver`] invoked as each
/// outcome is decided, and an explicit trust decision for `previous`.
///
/// With `validate` set, every reused or spliced certificate must pass
/// [`crate::check_certificate`] against `new` before it is reported
/// (rejects fall back to a re-prove) — required when `previous` came from
/// unreliable media like the on-disk proof store. Leave it unset for
/// certificates produced in this process. This is the session engine's
/// entry point; `(false, None)` is exactly [`reverify_jobs`].
pub fn reverify_observed(
    previous: &[(String, Certificate)],
    new: &CheckedProgram,
    options: &ProverOptions,
    jobs: usize,
    validate: bool,
    observer: Option<PropObserver<'_>>,
) -> Result<IncrementalReport, VerifyError> {
    reverify_core(previous, new, options, jobs, validate, observer)
}

/// How a property's outcome was actually obtained (the plan, demoted to
/// [`Reuse::Reproved`] when validation rejects reused content).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reuse {
    /// The previous certificate was returned unchanged.
    Full,
    /// Unchanged cases were spliced from the previous certificate; dirty
    /// cases re-proved.
    Partial,
    /// Proved from scratch.
    Reproved,
}

impl Reuse {
    /// Stable lower-case name, as used in instrumentation events.
    pub fn as_str(self) -> &'static str {
        match self {
            Reuse::Full => "full",
            Reuse::Partial => "partial",
            Reuse::Reproved => "reproved",
        }
    }
}

/// Per-property observer invoked as each property's outcome is decided:
/// `(property, reuse, outcome, wall_ms)`. May be called from worker
/// threads, in completion (not declaration) order.
pub type PropObserver<'a> = &'a (dyn Fn(&str, Reuse, &Outcome, f64) + Sync);

/// The engine behind [`reverify_jobs`] and the proof store's
/// [`crate::store::verify_with_store`].
///
/// With `validate` set, every outcome built from previous certificates
/// (full reuse and per-case splices) must additionally pass
/// [`crate::check_certificate`] against `new`; rejects fall back to a
/// from-scratch re-prove. This is the trust boundary for certificates
/// loaded from unreliable media: a corrupt or stale entry costs a re-prove,
/// never a wrong "Proved".
pub(crate) fn reverify_core(
    previous: &[(String, Certificate)],
    new: &CheckedProgram,
    options: &ProverOptions,
    jobs: usize,
    validate: bool,
    observer: Option<PropObserver<'_>>,
) -> Result<IncrementalReport, VerifyError> {
    let graph = DepGraph::build(previous)?;
    let abs = Abstraction::build(new, options);
    let ranges = abs.ranges_fp();
    let props = &new.program().properties;
    let plans: Vec<(String, ReusePlan)> = props
        .iter()
        .map(|p| (p.name.clone(), graph.plan(&p.name, new, ranges)))
        .collect();

    let cache = ProofCache::new();
    let shared = options.shared_cache.then_some(&cache);
    let jobs = crate::options::resolve_jobs(jobs);

    let reprove = |name: &str| -> Result<(Outcome, Reuse), VerifyError> {
        Ok((
            crate::prove_with_cache(&abs, name, options, shared)?,
            Reuse::Reproved,
        ))
    };
    let execute_inner = |name: &str, plan: &ReusePlan| -> Result<(Outcome, Reuse), VerifyError> {
        match plan {
            ReusePlan::Full => {
                let cert = graph
                    .certificate(name)
                    .expect("plan is Full only when a certificate exists");
                if validate && crate::check_certificate_with(&abs, cert, options).is_err() {
                    return reprove(name);
                }
                Ok((Outcome::Proved(cert.clone()), Reuse::Full))
            }
            ReusePlan::Partial { dirty } => {
                let prop = new
                    .program()
                    .property(name)
                    .expect("planned properties come from the program");
                let (PropBody::Trace(tp), Some(Certificate::Trace(prior))) =
                    (&prop.body, graph.certificate(name))
                else {
                    unreachable!("plan is Partial only for trace certificates");
                };
                let mut outcome = crate::trace_prover::prove_trace_partial(
                    &abs, options, prop, tp, shared, prior, dirty,
                );
                if let Outcome::Proved(cert) = &mut outcome {
                    let deps = DepSet::compute(new, ranges, cert);
                    cert.set_deps(deps);
                }
                if validate {
                    if let Outcome::Proved(cert) = &outcome {
                        if crate::check_certificate_with(&abs, cert, options).is_err() {
                            return reprove(name);
                        }
                    }
                }
                Ok((outcome, Reuse::Partial))
            }
            ReusePlan::Reprove => reprove(name),
        }
    };
    let execute = |name: &str, plan: &ReusePlan| -> Result<(Outcome, Reuse), VerifyError> {
        let start = std::time::Instant::now();
        // Panic isolation: a panicking proof task — prover defect or the
        // injected chaos hook — becomes this property's Crashed outcome
        // instead of unwinding into the worker pool and killing every
        // sibling. Serial and parallel runs take the same path.
        let result = match crate::options::catch_crash(name, || execute_inner(name, plan)) {
            Ok(inner) => inner,
            Err(crashed) => Ok((crashed, Reuse::Reproved)),
        };
        if let (Some(observe), Ok((outcome, reuse))) = (observer, &result) {
            observe(name, *reuse, outcome, start.elapsed().as_secs_f64() * 1e3);
        }
        result
    };

    // The shared work-stealing pool schedules the per-property plans (and
    // carries the caller's session-stats scope onto its workers).
    let executed: Vec<Result<(Outcome, Reuse), VerifyError>> =
        crate::sched::run_indexed(jobs, plans.len(), |i| {
            let (name, plan) = &plans[i];
            execute(name, plan)
        });

    let mut outcomes = Vec::with_capacity(plans.len());
    let mut reused = Vec::new();
    let mut partial = Vec::new();
    let mut reproved = Vec::new();
    for ((name, _), result) in plans.into_iter().zip(executed) {
        let (outcome, used) = result?;
        match used {
            Reuse::Full => reused.push(name.clone()),
            Reuse::Partial => partial.push(name.clone()),
            Reuse::Reproved => reproved.push(name.clone()),
        }
        outcomes.push((name, outcome));
    }
    Ok(IncrementalReport {
        outcomes,
        reused,
        partial,
        reproved,
    })
}
