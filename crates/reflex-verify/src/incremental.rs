//! Incremental re-verification — the future work flagged in the paper's
//! §6.4: "Future work can explore incremental verification in order to
//! further reduce the time required for re-verification."
//!
//! After an edit, a property's previous certificate can be **reused**
//! without any re-proving when the edit provably cannot affect its
//! induction:
//!
//! * the declarations (components, messages, state, init) are unchanged —
//!   they shape the case split and base cases;
//! * the property itself is unchanged;
//! * the certificate is *local* — every obligation is discharged by
//!   refutation, an in-exchange witness or a missed-lookup argument, with
//!   no auxiliary invariants or lemmas (those quantify over *all*
//!   handlers, so any handler edit can break them); and
//! * every edited handler is one whose exchange can emit no action
//!   unifiable with the property's trigger pattern (so the edited cases
//!   carry no obligations).
//!
//! Everything else is re-proved from scratch. The reuse decision is
//! deliberately conservative: a reused outcome is exactly as trustworthy
//! as the original run's, because the justifications of unchanged cases
//! are facts about those cases alone.

use reflex_ast::PropBody;
use reflex_typeck::CheckedProgram;

use crate::certificate::{Certificate, Justification, NegPrior};
use crate::options::{Outcome, ProverOptions};
use crate::shared::case_can_emit_match;
use crate::Abstraction;

/// The result of an incremental re-verification.
#[derive(Debug)]
pub struct IncrementalReport {
    /// `(property, outcome)` in declaration order, as from
    /// [`crate::prove_all`].
    pub outcomes: Vec<(String, Outcome)>,
    /// Properties whose previous certificates were reused.
    pub reused: Vec<String>,
    /// Properties that were re-proved.
    pub reproved: Vec<String>,
}

/// Whether a certificate's every justification is local to its own
/// exchange case (see module docs).
fn certificate_is_local(cert: &Certificate) -> bool {
    let Certificate::Trace(t) = cert else {
        return false; // NI quantifies over every handler
    };
    if !t.invariants.is_empty() || !t.lemmas.is_empty() {
        return false;
    }
    t.base
        .iter()
        .chain(t.cases.iter().flat_map(|c| c.paths.iter()))
        .flat_map(|p| p.obligations.iter())
        .all(|(_, just)| match just {
            Justification::Refuted | Justification::Witness { .. } => true,
            Justification::NoMatch { prior } => {
                matches!(prior, NegPrior::EmptyTrace | NegPrior::MissedLookup { .. })
            }
            Justification::Invariant { .. } | Justification::ViaCompOrigin { .. } => false,
        })
}

/// Whether the non-handler parts of two programs agree.
fn decls_unchanged(old: &reflex_ast::Program, new: &reflex_ast::Program) -> bool {
    old.components == new.components
        && old.messages == new.messages
        && old.state == new.state
        && old.init == new.init
}

/// The `(ctype, msg)` pairs whose handler differs between the programs
/// (including added or removed handlers).
fn changed_handlers(old: &reflex_ast::Program, new: &reflex_ast::Program) -> Vec<(String, String)> {
    let mut changed = Vec::new();
    for c in &new.components {
        for m in &new.messages {
            if old.handler(&c.name, &m.name) != new.handler(&c.name, &m.name) {
                changed.push((c.name.clone(), m.name.clone()));
            }
        }
    }
    changed
}

/// Re-verifies `new` given the previous program and its certificates.
///
/// `previous` pairs property names with the certificates obtained from a
/// successful [`crate::prove_all`] run over `old`.
pub fn reverify(
    old: &CheckedProgram,
    previous: &[(String, Certificate)],
    new: &CheckedProgram,
    options: &ProverOptions,
) -> IncrementalReport {
    let mut outcomes = Vec::new();
    let mut reused = Vec::new();
    let mut reproved = Vec::new();

    let structure_ok = decls_unchanged(old.program(), new.program());
    let changed = changed_handlers(old.program(), new.program());

    // Build the abstraction lazily: only if something needs re-proving.
    let mut abs: Option<Abstraction<'_>> = None;

    for prop in &new.program().properties {
        let reusable = structure_ok
            && old.program().property(&prop.name) == Some(prop)
            && previous.iter().any(|(name, cert)| {
                if name != &prop.name {
                    return false;
                }
                if !certificate_is_local(cert) {
                    return false;
                }
                let PropBody::Trace(tp) = &prop.body else {
                    return false;
                };
                changed
                    .iter()
                    .all(|(ctype, msg)| !case_can_emit_match(new, ctype, msg, tp.trigger()))
            });
        if reusable {
            let cert = previous
                .iter()
                .find(|(name, _)| name == &prop.name)
                .map(|(_, c)| c.clone())
                .expect("checked above");
            reused.push(prop.name.clone());
            outcomes.push((prop.name.clone(), Outcome::Proved(cert)));
            continue;
        }
        let abs = abs.get_or_insert_with(|| Abstraction::build(new, options));
        let outcome =
            crate::prove_with(abs, &prop.name, options).expect("property exists by iteration");
        reproved.push(prop.name.clone());
        outcomes.push((prop.name.clone(), outcome));
    }

    IncrementalReport {
        outcomes,
        reused,
        reproved,
    }
}
