//! Automatic proof of non-interference via the `NIlo`/`NIhi` sufficient
//! conditions (paper §5.2, Theorem 1).
//!
//! Given a labeling of components (patterns over type + configuration,
//! possibly mentioning the property's universally quantified variables) and
//! of state variables, the analysis checks, for every exchange case:
//!
//! * **`NIlo`** (sender assumed *low*): the handler never sends to or
//!   spawns a high component and never changes a high state variable;
//! * **`NIhi`** (sender assumed *high*): two runs of the handler from
//!   states agreeing on high inputs, high variables and the
//!   non-deterministic context take the same branches and produce the same
//!   high-visible effects. Concretely, every branch condition must be
//!   *agreement-determined* (built from high variables, message payload,
//!   sender configuration, init-time values and world inputs), `lookup`s
//!   must be restricted to provably high components (whose sub-list the two
//!   runs agree on, inductively), and the payloads of high-directed sends,
//!   the configurations of possibly-high spawns and the new values of high
//!   variables must be agreement-determined.
//!
//! High outputs are compared modulo component identity and file-descriptor
//! values (see DESIGN.md): those are allocator artifacts that legitimately
//! differ between runs with different low traffic.

use std::collections::BTreeSet;

use reflex_ast::{NiSpec, PropertyDecl};
use reflex_symbolic::{
    unify_action, CondKind, Solver, SymAction, SymBindings, SymComp, SymVar, Term, Unify,
};

use crate::abstraction::{Abstraction, World};
use crate::canon::prop_term;
use crate::certificate::{Certificate, NiCaseCert, NiCert};
use crate::options::{Outcome, ProofFailure, ProverOptions};

/// Proves a non-interference property.
pub fn prove_ni(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    prop: &PropertyDecl,
    spec: &NiSpec,
) -> Outcome {
    let prover = NiProver {
        abs,
        prop,
        spec,
        options,
    };
    match prover.prove(options.effective_jobs()) {
        Ok(cert) => Outcome::Proved(Certificate::NonInterference(cert)),
        Err(e) => Outcome::Failed(e),
    }
}

struct NiProver<'a, 'p> {
    abs: &'a Abstraction<'p>,
    prop: &'a PropertyDecl,
    spec: &'a NiSpec,
    options: &'a ProverOptions,
}

/// A non-interference property prepared for cross-property obligation
/// scheduling (see `oblig.rs`): every exchange case is an independent pure
/// obligation, and [`PreparedNi::assemble`] rebuilds exactly the serial
/// result (certificate, or first failure in case order).
pub(crate) struct PreparedNi<'a, 'p> {
    prover: NiProver<'a, 'p>,
    sigma0: SymBindings,
    /// Flat `(world, exchange)` indices in serial visit order.
    units: Vec<(usize, usize)>,
}

/// Prepares one NI property for obligation-level scheduling.
pub(crate) fn prepare_ni<'a, 'p>(
    abs: &'a Abstraction<'p>,
    options: &'a ProverOptions,
    prop: &'a PropertyDecl,
    spec: &'a NiSpec,
) -> PreparedNi<'a, 'p> {
    let prover = NiProver {
        abs,
        prop,
        spec,
        options,
    };
    let sigma0 = prover.sigma0();
    let units: Vec<(usize, usize)> = abs
        .worlds
        .iter()
        .enumerate()
        .flat_map(|(wi, world)| (0..world.exchanges.len()).map(move |ei| (wi, ei)))
        .collect();
    PreparedNi {
        prover,
        sigma0,
        units,
    }
}

impl<'a, 'p> PreparedNi<'a, 'p> {
    /// Number of schedulable obligations.
    pub(crate) fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Discharges obligation `u` (pure; callable from any worker).
    pub(crate) fn run_unit(&self, u: usize) -> Result<NiCaseCert, ProofFailure> {
        let (wi, ei) = self.units[u];
        let world = &self.prover.abs.worlds[wi];
        self.prover
            .check_case(wi, world, &world.exchanges[ei], &self.sigma0)
    }

    /// Rebuilds the serial result from the per-obligation results.
    pub(crate) fn assemble(self, cases: Vec<Result<NiCaseCert, ProofFailure>>) -> Outcome {
        match cases.into_iter().collect::<Result<Vec<_>, _>>() {
            Err(failure) => Outcome::Failed(failure),
            Ok(cases) => Outcome::Proved(Certificate::NonInterference(NiCert {
                property: self.prover.prop.name.clone(),
                cases,
                deps: Default::default(),
            })),
        }
    }
}

/// Conjunction of match side-conditions as a single boolean term
/// (`None` when the condition list is empty, i.e. the match is definite).
fn conds_term(conds: &[(Term, bool)]) -> Option<Term> {
    let mut acc: Option<Term> = None;
    for (t, pol) in conds {
        let lit = if *pol { t.clone() } else { t.clone().not() };
        acc = Some(match acc {
            None => lit,
            Some(a) => a.and(lit),
        });
    }
    acc
}

/// The component-label match conditions of `comp` against every applicable
/// high pattern, with the property's quantified variables pre-bound.
///
/// Returns a list of per-pattern results: `None` entry means a *definite*
/// match (the component is unconditionally high).
fn high_match_terms(spec: &NiSpec, sigma0: &SymBindings, comp: &SymComp) -> Vec<Option<Term>> {
    let mut out = Vec::new();
    for hp in &spec.high_comps {
        let probe = SymAction::Spawn { comp: comp.clone() };
        let pat = reflex_ast::ActionPat::Spawn { comp: hp.clone() };
        match unify_action(&pat, &probe, sigma0) {
            Unify::Never => {}
            Unify::Match {
                conditions: conds, ..
            } => out.push(conds_term(&conds)),
        }
    }
    out
}

/// The "is high" disjunction for `comp`, or a definite answer.
enum Highness {
    Never,
    Always,
    When(Vec<Term>),
}

fn highness(spec: &NiSpec, sigma0: &SymBindings, comp: &SymComp) -> Highness {
    let matches = high_match_terms(spec, sigma0, comp);
    if matches.is_empty() {
        return Highness::Never;
    }
    if matches.iter().any(Option::is_none) {
        return Highness::Always;
    }
    Highness::When(matches.into_iter().flatten().collect())
}

/// Whether `comp` is *provably low* under the solver context: every high
/// pattern's match condition is refuted.
fn provably_low(solver: &Solver, spec: &NiSpec, sigma0: &SymBindings, comp: &SymComp) -> bool {
    match highness(spec, sigma0, comp) {
        Highness::Never => true,
        Highness::Always => false,
        Highness::When(terms) => terms.iter().all(|t| solver.entails(t, false)),
    }
}

/// Whether `comp` is *provably high*: some high pattern's match condition
/// is entailed.
fn provably_high(solver: &Solver, spec: &NiSpec, sigma0: &SymBindings, comp: &SymComp) -> bool {
    match highness(spec, sigma0, comp) {
        Highness::Never => false,
        Highness::Always => true,
        Highness::When(terms) => terms.iter().any(|t| solver.entails(t, true)),
    }
}

fn syms_of(term: &Term) -> Vec<SymVar> {
    let mut out = Vec::new();
    term.collect_syms(&mut out);
    out
}

fn comp_syms(comp: &SymComp) -> Vec<SymVar> {
    let mut out = Vec::new();
    comp.id.collect_syms(&mut out);
    for c in &comp.config {
        c.collect_syms(&mut out);
    }
    out
}

impl<'a, 'p> NiProver<'a, 'p> {
    fn fail(&self, location: impl Into<String>, reason: impl Into<String>) -> ProofFailure {
        ProofFailure {
            location: location.into(),
            reason: reason.into(),
        }
    }

    fn sigma0(&self) -> SymBindings {
        let mut s = SymBindings::new();
        for (v, ty) in &self.prop.forall {
            s.insert(v.clone(), prop_term(v, *ty));
        }
        s
    }

    fn prove(&self, jobs: usize) -> Result<NiCert, ProofFailure> {
        let sigma0 = self.sigma0();
        let units: Vec<(usize, &World, &reflex_symbolic::Exchange)> = self
            .abs
            .worlds
            .iter()
            .enumerate()
            .flat_map(|(wi, world)| world.exchanges.iter().map(move |ex| (wi, world, ex)))
            .collect();
        // Each case is a pure function of the abstraction, so they can be
        // checked on worker threads. Results are collected in case order;
        // on failure the lowest failing index is reported — both identical
        // to the serial loop (which the certificate checker re-runs and
        // compares against, so this must hold exactly).
        let cases = crate::sched::run_indexed(jobs, units.len(), |i| {
            let (wi, world, exchange) = units[i];
            self.check_case(wi, world, exchange, &sigma0)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(NiCert {
            property: self.prop.name.clone(),
            cases,
            deps: Default::default(),
        })
    }

    /// Checks both NI conditions for one exchange case.
    fn check_case(
        &self,
        wi: usize,
        world: &World,
        exchange: &reflex_symbolic::Exchange,
        sigma0: &SymBindings,
    ) -> Result<NiCaseCert, ProofFailure> {
        let location = format!("world {wi}, case {}:{}", exchange.ctype, exchange.msg);
        let sender_high = highness(self.spec, sigma0, &exchange.sender);
        let (check_low, check_high, low_assumption, high_assumption) = match &sender_high {
            Highness::Never => (true, false, Vec::new(), Vec::new()),
            Highness::Always => (false, true, Vec::new(), Vec::new()),
            Highness::When(terms) => {
                // Low: every pattern's condition false. High: their
                // disjunction true.
                let low: Vec<(Term, bool)> = terms.iter().map(|t| (t.clone(), false)).collect();
                let disj = terms
                    .iter()
                    .cloned()
                    .reduce(|a, b| Term::bin(reflex_ast::BinOp::Or, a, b))
                    .expect("nonempty");
                (true, true, low, vec![(disj, true)])
            }
        };

        let mut low_paths = None;
        if check_low {
            for (pi, path) in exchange.paths.iter().enumerate() {
                crate::budget::tick_path(self.options, &format!("{location}, path {pi} (NIlo)"))?;
                self.check_nilo(world, exchange, path, &low_assumption, sigma0)
                    .map_err(|r| self.fail(format!("{location}, path {pi} (NIlo)"), r))?;
            }
            low_paths = Some(exchange.paths.len());
        }
        let mut high_paths = None;
        if check_high {
            for (pi, path) in exchange.paths.iter().enumerate() {
                crate::budget::tick_path(self.options, &format!("{location}, path {pi} (NIhi)"))?;
                let strict = self.check_nihi(world, exchange, path, &high_assumption, sigma0);
                if let Err(reason) = strict {
                    // Fallback: a case with no high-visible effects
                    // on ANY path is non-interfering even if its
                    // branching is low-influenced — both runs
                    // contribute nothing to the high observation
                    // regardless of the paths they take.
                    self.check_case_high_inert(world, exchange, &high_assumption, sigma0)
                        .map_err(|_| self.fail(format!("{location}, path {pi} (NIhi)"), reason))?;
                    high_paths = Some(exchange.paths.len());
                    break;
                }
            }
            high_paths = Some(high_paths.unwrap_or(exchange.paths.len()));
        }
        Ok(NiCaseCert {
            ctype: exchange.ctype.clone(),
            msg: exchange.msg.clone(),
            low_paths,
            high_paths,
        })
    }

    /// `NIlo`: the path must not touch high variables nor send to / spawn
    /// high components.
    fn check_nilo(
        &self,
        world: &World,
        exchange: &reflex_symbolic::Exchange,
        path: &reflex_symbolic::Path,
        assumption: &[(Term, bool)],
        sigma0: &SymBindings,
    ) -> Result<(), String> {
        let solver = Solver::with_assumptions(path.condition.iter().chain(assumption.iter()));
        // If the low assumption contradicts the path condition, the path
        // cannot occur with a low sender.
        if solver.clone().is_unsat() {
            return Ok(());
        }
        for v in &self.spec.high_vars {
            let pre = world.pre.data.get(v).expect("typeck: high var exists");
            let post = path.state.data.get(v).expect("state has var");
            if pre != post && !solver.entails_equal(pre, post) {
                return Err(format!(
                    "low handler may change high state variable `{v}` (from {pre} to {post})"
                ));
            }
        }
        for (ai, action) in path.actions.iter().enumerate() {
            match action {
                SymAction::Send { comp, .. } | SymAction::Spawn { comp } => {
                    if !provably_low(&solver, self.spec, sigma0, comp) {
                        return Err(format!(
                            "low handler for {}:{} may {} a possibly-high component \
                             {comp} (action #{ai})",
                            exchange.ctype,
                            exchange.msg,
                            if matches!(action, SymAction::Send { .. }) {
                                "send to"
                            } else {
                                "spawn"
                            },
                        ));
                    }
                }
                SymAction::Call { .. } | SymAction::Select { .. } | SymAction::Recv { .. } => {}
            }
        }
        Ok(())
    }

    /// `NIhi`: the path must be replayed identically by any two runs that
    /// agree on high inputs — see the module docs for the discipline.
    fn check_nihi(
        &self,
        world: &World,
        exchange: &reflex_symbolic::Exchange,
        path: &reflex_symbolic::Path,
        assumption: &[(Term, bool)],
        sigma0: &SymBindings,
    ) -> Result<(), String> {
        let full_solver = Solver::with_assumptions(path.condition.iter().chain(assumption.iter()));
        if full_solver.clone().is_unsat() {
            return Ok(());
        }

        // Agreement-determined symbols: everything both runs share.
        let mut allowed: BTreeSet<SymVar> = BTreeSet::new();
        let low_state_vars: Vec<&String> = self
            .abs
            .checked()
            .globals()
            .iter()
            .filter(|(n, i)| i.mutable && !self.spec.high_vars.contains(n))
            .map(|(n, _)| n)
            .collect();
        for (name, term) in &world.pre.data {
            if low_state_vars.contains(&name) {
                continue; // low variable: may differ between runs
            }
            allowed.extend(syms_of(term));
        }
        for comp in world.pre.comps.values() {
            allowed.extend(comp_syms(comp));
        }
        allowed.extend(comp_syms(&exchange.sender));
        for (_, t) in &exchange.params {
            allowed.extend(syms_of(t));
        }
        // World inputs (call results) are part of the shared
        // non-deterministic context of the high handler.
        for action in &path.actions {
            if let SymAction::Call { result, .. } = action {
                allowed.extend(syms_of(result));
            }
        }
        // Quantified property variables are shared by construction.
        for (v, ty) in &self.prop.forall {
            allowed.insert(crate::canon::prop_sym(v, *ty));
        }

        let is_allowed =
            |allowed: &BTreeSet<SymVar>, t: &Term| syms_of(t).iter().all(|s| allowed.contains(s));

        // 1. Branch conditions and lookup predicates, in order.
        for (k, ((term, _pol), kind)) in path.condition.iter().zip(&path.cond_kinds).enumerate() {
            match kind {
                CondKind::Branch => {
                    if !is_allowed(&allowed, term) {
                        return Err(format!(
                            "high handler branches on a low-influenced condition: {term}"
                        ));
                    }
                }
                CondKind::LookupPred { comp } => {
                    self.check_high_lookup(
                        &path.condition[..=k],
                        assumption,
                        term,
                        comp,
                        &allowed,
                        sigma0,
                    )?;
                    allowed.extend(comp_syms(comp));
                }
            }
        }
        // Missed lookups: the (empty) search result must also be
        // agreement-determined.
        for ml in &path.missed_lookups {
            if ml.pred_term.as_bool() == Some(false) {
                continue; // vacuous search
            }
            let prior: Vec<(Term, bool)> = path.condition[..ml.cond_index]
                .iter()
                .cloned()
                .chain(std::iter::once((ml.pred_term.clone(), true)))
                .collect();
            self.check_high_lookup(
                &prior,
                assumption,
                &ml.pred_term,
                &ml.candidate,
                &allowed,
                sigma0,
            )?;
        }

        // 2. Effects.
        for (ai, action) in path.actions.iter().enumerate() {
            match action {
                SymAction::Spawn { comp } => {
                    if provably_low(&full_solver, self.spec, sigma0, comp) {
                        continue; // a low output; unconstrained
                    }
                    for c in &comp.config {
                        if !is_allowed(&allowed, c) {
                            return Err(format!(
                                "high handler spawns possibly-high component {comp} \
                                 (action #{ai}) with a low-influenced configuration"
                            ));
                        }
                    }
                    allowed.extend(comp_syms(comp));
                }
                SymAction::Send { comp, args, .. } => {
                    if provably_low(&full_solver, self.spec, sigma0, comp) {
                        continue; // a low output; unconstrained
                    }
                    if !comp_syms(comp).iter().all(|s| allowed.contains(s)) {
                        return Err(format!(
                            "high handler sends to a component whose identity is \
                             low-influenced: {comp} (action #{ai})"
                        ));
                    }
                    for a in args {
                        if !is_allowed(&allowed, a) {
                            return Err(format!(
                                "high handler sends a low-influenced payload {a} to \
                                 possibly-high component {comp} (action #{ai})"
                            ));
                        }
                    }
                }
                SymAction::Call { .. } | SymAction::Select { .. } | SymAction::Recv { .. } => {}
            }
        }

        // 3. High state variables.
        for v in &self.spec.high_vars {
            let post = path.state.data.get(v).expect("state has var");
            if !is_allowed(&allowed, post) {
                return Err(format!(
                    "high handler may assign a low-influenced value to high \
                     variable `{v}`: {post}"
                ));
            }
        }
        Ok(())
    }

    /// Whether the whole exchange case is *high-inert*: no path sends to
    /// or spawns a possibly-high component, and every path preserves every
    /// high variable. Such a case contributes nothing to the high
    /// observation no matter which path each run takes.
    fn check_case_high_inert(
        &self,
        world: &World,
        exchange: &reflex_symbolic::Exchange,
        assumption: &[(Term, bool)],
        sigma0: &SymBindings,
    ) -> Result<(), String> {
        for path in &exchange.paths {
            let solver = Solver::with_assumptions(path.condition.iter().chain(assumption.iter()));
            if solver.clone().is_unsat() {
                continue;
            }
            for action in &path.actions {
                if let SymAction::Send { comp, .. } | SymAction::Spawn { comp } = action {
                    if !provably_low(&solver, self.spec, sigma0, comp) {
                        return Err(format!("case is not high-inert: may affect {comp}"));
                    }
                }
            }
            for v in &self.spec.high_vars {
                let pre = world.pre.data.get(v).expect("typeck: high var exists");
                let post = path.state.data.get(v).expect("state has var");
                if pre != post && !solver.entails_equal(pre, post) {
                    return Err(format!("case is not high-inert: may change `{v}`"));
                }
            }
        }
        Ok(())
    }

    /// A `lookup` inside a high handler is only deterministic when its
    /// search is restricted to provably high components (the two runs agree
    /// on the high component sub-list): the predicate must entail some high
    /// pattern for the candidate, and the predicate's non-candidate inputs
    /// must be agreement-determined.
    fn check_high_lookup(
        &self,
        prior_conditions: &[(Term, bool)],
        assumption: &[(Term, bool)],
        pred_term: &Term,
        candidate: &SymComp,
        allowed: &BTreeSet<SymVar>,
        sigma0: &SymBindings,
    ) -> Result<(), String> {
        let cand_syms: BTreeSet<SymVar> = comp_syms(candidate).into_iter().collect();
        let foreign: Vec<SymVar> = syms_of(pred_term)
            .into_iter()
            .filter(|s| !cand_syms.contains(s) && !allowed.contains(s))
            .collect();
        if !foreign.is_empty() {
            return Err(format!(
                "lookup predicate in high handler reads low-influenced values: {pred_term}"
            ));
        }
        let solver = Solver::with_assumptions(prior_conditions.iter().chain(assumption.iter()));
        if solver.clone().is_unsat() {
            return Ok(()); // this lookup cannot actually be reached high
        }
        if !provably_high(&solver, self.spec, sigma0, candidate) {
            return Err(format!(
                "lookup in high handler is not restricted to high components \
                 (predicate {pred_term} does not entail a high labeling for {candidate})"
            ));
        }
        Ok(())
    }
}
