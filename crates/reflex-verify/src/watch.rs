//! The edit-verify loop behind `rx watch`: a long-lived session that
//! re-verifies successive versions of one program, reusing proofs across
//! iterations.
//!
//! The session is deliberately a library type — the CLI contributes only
//! the file polling — so the loop's reuse behavior is testable without a
//! filesystem or a terminal: feed it [`CheckedProgram`]s, inspect the
//! per-iteration [`WatchIteration`] reports.
//!
//! Two operating modes:
//!
//! * **with a proof store** — every iteration runs through
//!   [`crate::store::verify_with_store`]: candidates come from disk (which
//!   the previous iteration populated, so warm iterations reuse exactly as
//!   much as in-memory planning would), survive process restarts, and serve
//!   edit-revert-edit cycles from old entries; every reused certificate is
//!   re-validated by the independent checker first;
//! * **in-memory** — iterations chain through [`crate::reverify_jobs`] on
//!   the previous iteration's certificates (no disk, no re-validation:
//!   reused content is as trustworthy as the run that produced it).

use std::time::Instant;

use reflex_typeck::CheckedProgram;

use crate::certificate::Certificate;
use crate::options::{Outcome, ProverOptions, VerifyError};
use crate::store::{verify_with_store, ProofStore};

/// A persistent edit-verify session.
#[derive(Debug)]
pub struct WatchSession {
    options: ProverOptions,
    jobs: usize,
    store: Option<ProofStore>,
    /// Last iteration's certificates (in-memory mode only; with a store,
    /// the store itself carries them across iterations *and* restarts).
    previous: Vec<(String, Certificate)>,
}

/// What one iteration of the loop did.
#[derive(Debug)]
pub struct WatchIteration {
    /// `(property, outcome)` in declaration order.
    pub outcomes: Vec<(String, Outcome)>,
    /// Properties whose certificates were reused wholesale.
    pub reused: Vec<String>,
    /// Properties whose certificates were patched per-case.
    pub partial: Vec<String>,
    /// Properties re-proved from scratch.
    pub reproved: Vec<String>,
    /// Certificates served from the on-disk store (0 in in-memory mode).
    pub store_loaded: usize,
    /// Wall-clock time of the whole iteration, milliseconds.
    pub wall_ms: f64,
}

impl WatchIteration {
    /// Number of properties that failed to verify.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| !o.is_proved()).count()
    }

    /// One summary line, e.g.
    /// `5 reused, 1 patched, 2 re-proved (3 from store) in 412.0 ms`.
    pub fn summary(&self) -> String {
        let store = if self.store_loaded > 0 {
            format!(" ({} from store)", self.store_loaded)
        } else {
            String::new()
        };
        format!(
            "{} reused, {} patched, {} re-proved{store} in {:.1} ms",
            self.reused.len(),
            self.partial.len(),
            self.reproved.len(),
            self.wall_ms
        )
    }
}

impl WatchSession {
    /// Creates a session. `store` enables persistent cross-restart reuse;
    /// `jobs` fans re-proving out over worker threads (`0`: one per CPU),
    /// with byte-identical results for every value.
    pub fn new(options: ProverOptions, jobs: usize, store: Option<ProofStore>) -> WatchSession {
        WatchSession {
            options,
            jobs,
            store,
            previous: Vec::new(),
        }
    }

    /// Verifies one version of the program, reusing previous iterations'
    /// proofs where the dependency analysis allows.
    ///
    /// # Errors
    ///
    /// Propagates [`VerifyError`]s from planning (malformed previous
    /// certificates — impossible for session-internal state). Per-property
    /// proof failures are reported inside the iteration, not as errors.
    pub fn verify(&mut self, checked: &CheckedProgram) -> Result<WatchIteration, VerifyError> {
        let start = Instant::now();
        let (report, store_loaded) = match &self.store {
            Some(store) => {
                let sr = verify_with_store(checked, &self.options, store, self.jobs)?;
                (sr.report, sr.loaded)
            }
            None => {
                let report =
                    crate::reverify_jobs(&self.previous, checked, &self.options, self.jobs)?;
                (report, 0)
            }
        };
        if self.store.is_none() {
            self.previous = report
                .outcomes
                .iter()
                .filter_map(|(name, o)| Some((name.clone(), o.certificate()?.clone())))
                .collect();
        }
        Ok(WatchIteration {
            outcomes: report.outcomes,
            reused: report.reused,
            partial: report.partial,
            reproved: report.reproved,
            store_loaded,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}
