//! Injectable time for the verification pipeline.
//!
//! Two things in the pipeline read a clock: [`crate::ProofBudget`]'s
//! wall-clock deadline and the watch session's store-retry backoff. Both
//! used `std::time` directly, which made timeout outcomes and retry
//! schedules depend on the machine running them — the one piece of
//! nondeterminism no seed could reproduce. A [`Clock`] abstracts them:
//! [`RealClock`] (the default everywhere) keeps the old behavior, while
//! [`VirtualClock`] makes time a pure function of how often it is read,
//! so the simulator can replay a budgeted, backoff-heavy session
//! bit-identically from a seed.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic clock plus a sleep primitive.
///
/// `now_ns` is relative to an arbitrary per-clock epoch — callers only
/// ever compare or subtract readings, never interpret them as dates.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
    /// Blocks (or simulates blocking) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// The machine's monotonic clock; `sleep_ms` really sleeps.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A real clock with its epoch at construction time.
    pub fn new() -> RealClock {
        RealClock {
            epoch: Instant::now(),
        }
    }

    /// A shared real clock (the default for sessions built without an
    /// explicit clock).
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(RealClock::new())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Deterministic simulated time: every reading advances the clock by a
/// fixed tick, and sleeps advance it by the requested amount instead of
/// blocking.
///
/// Under this clock a wall-clock proof budget becomes a pure function of
/// how many times the provers poll it — i.e. of the work actually done —
/// so the same seed and budget trip the same `Outcome::Timeout` set on
/// every machine. Backoff delays likewise cost simulated time only, which
/// is what lets a scenario with dozens of retry sleeps replay in
/// microseconds.
#[derive(Debug)]
pub struct VirtualClock {
    now: AtomicU64,
    tick_ns: u64,
}

impl VirtualClock {
    /// A virtual clock starting at zero, advancing `tick_ns` per reading.
    pub fn new(tick_ns: u64) -> VirtualClock {
        VirtualClock {
            now: AtomicU64::new(0),
            tick_ns,
        }
    }

    /// A shared virtual clock with a 1µs read tick — the simulator's
    /// default granularity (a budget of N ms then allows exactly
    /// N·1000 polls).
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new(1_000))
    }

    /// Advances the clock by `ns` without a reading.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.tick_ns, Ordering::Relaxed) + self.tick_ns
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ns(ms.saturating_mul(1_000_000));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_is_a_function_of_reads_and_sleeps() {
        let c = VirtualClock::new(1_000);
        assert_eq!(c.now_ns(), 1_000);
        assert_eq!(c.now_ns(), 2_000);
        c.sleep_ms(3);
        assert_eq!(c.now_ns(), 3_003_000);
        let d = VirtualClock::new(1_000);
        assert_eq!(d.now_ns(), 1_000, "fresh clocks replay identically");
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
