//! Automatic proof search for trace properties (paper §5.1).
//!
//! The proof is an induction over the behavioral abstraction `BehAbs`:
//!
//! * **base case** — the property holds on every init trace;
//! * **inductive step** — for every `(component type, message type)`
//!   exchange and every symbolic path of its handler, assuming the property
//!   held before the exchange, it holds after.
//!
//! Each *trigger instance* (an appended action that may match the
//! property's trigger pattern) yields one obligation, discharged by:
//!
//! 1. **refutation** — the match's side conditions contradict the path
//!    condition;
//! 2. **a local witness** — the required action occurs inside the same
//!    exchange at the right position;
//! 3. **an auxiliary invariant** (for `Enables`/`Disables`) — a guard over
//!    kernel state variables, extracted from the branch conditions of the
//!    path, that implies the presence (resp. absence) of the required
//!    action in the prior trace. Invariants are proved by a *secondary
//!    induction* which may recursively require further invariants — the
//!    paper's "adding branch conditions to the context is crucial"
//!    mechanism, generalized into a depth-bounded chain.

use std::collections::BTreeMap;
use std::collections::HashMap;

use reflex_ast::{ActionPat, CompPat, PatField, PropertyDecl, TraceProp, TracePropKind, Ty};
use reflex_symbolic::{CondKind, Path, Solver, SymAction, SymBindings, SymComp, Term};

use crate::abstraction::{Abstraction, World};
use crate::cache::{InvariantPackage, LemmaPackage, ProofCache, SharedInvKey, SharedLemmaKey};
use crate::canon::{
    canonicalize_state_term, flatten_literals, generalize_literal, prop_term, weaken_guard, Guard,
};
use crate::certificate::{
    CaseCert, Certificate, CompOriginRef, InvCaseCert, InvPathJust, InvariantCert, Justification,
    LemmaCert, NegPrior, NegPriorStep, PathCert, TraceCert,
};
use crate::options::{Outcome, ProofFailure, ProverOptions};
use crate::shared::{
    case_can_emit_match, conds_refuted, definite_match, definite_no_match, specialize_pattern,
    trigger_instances, TriggerInstance,
};

type InvKey = (Guard, ActionPat, bool);

#[derive(Debug, Clone, Copy)]
enum CacheEntry {
    InProgress,
    Proved(usize),
    Failed,
}

/// Maximum nesting of component-origin lemmas.
const MAX_LEMMA_DEPTH: usize = 2;

/// One trigger obligation of a path segment: already refuted, or open with
/// the solver context under which it must be justified.
// `Open` is the variant that matters and these never outlive one segment
// walk; boxing it would add an allocation per obligation for nothing.
#[allow(clippy::large_enum_variant)]
enum ObligationCtx {
    Refuted {
        index: usize,
    },
    Open {
        inst: TriggerInstance,
        solver: Solver,
        all_conds: Vec<(Term, bool)>,
    },
}

/// Proves one trace property over the program abstraction, sharing
/// subproofs through `shared` when one is supplied.
pub fn prove_trace(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    prop: &PropertyDecl,
    tp: &TraceProp,
    shared: Option<&ProofCache>,
) -> Outcome {
    // Chaos hook: deliberately crash this proof task so the session-level
    // panic isolation can be exercised end to end. Compiled out unless the
    // `panic-injection` feature is on; inert unless the option names this
    // property. Fires before any lock is taken, so sibling properties
    // sharing the ProofCache are unaffected.
    #[cfg(feature = "panic-injection")]
    if options.panic_armed(&prop.name) {
        panic!("injected panic for `{}`", prop.name);
    }
    match prove_trace_inner(abs, options, prop, tp, 0, shared) {
        Ok(cert) => Outcome::Proved(Certificate::Trace(cert)),
        Err(failure) => Outcome::Failed(failure),
    }
}

/// Re-proves only the `dirty` `(ctype, msg)` cases of `prior`, splicing the
/// prior base and clean-case justifications — the middle rung of the
/// incremental reuse ladder (full reuse → per-case reuse → re-prove).
///
/// # Preconditions (established by the planner, enforced by the checker)
///
/// The caller guarantees that, relative to the program `prior` was proved
/// over: the declaration group, the property, and the range assumptions are
/// unchanged; `prior` has no auxiliary invariants or lemmas (its clean-case
/// justifications are then facts about those cases alone); and every case
/// *not* in `dirty` has an unchanged handler (or is a still-valid
/// syntactic skip). Under those conditions the spliced certificate is
/// byte-identical to a from-scratch proof: local justifications are
/// deterministic per-case functions, clean local cases contribute nothing
/// to the prover's invariant/lemma state, and dirty cases are visited in
/// the same global order a from-scratch run would visit them.
///
/// If the structure does not line up after all (planner bug, fingerprint
/// collision), the result simply fails [`crate::check_certificate`] or
/// differs from the scratch proof — soundness never rests on this path.
pub(crate) fn prove_trace_partial(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    prop: &PropertyDecl,
    tp: &TraceProp,
    shared: Option<&ProofCache>,
    prior: &TraceCert,
    dirty: &std::collections::BTreeSet<(String, String)>,
) -> Outcome {
    let expected: usize = abs.worlds.iter().map(|w| w.exchanges.len()).sum();
    if prior.cases.len() != expected || prior.base.len() != abs.worlds.len() {
        // Structure drifted: partial splicing is meaningless; fall back to
        // a full proof.
        return prove_trace(abs, options, prop, tp, shared);
    }
    let mut prover = TraceProver {
        abs,
        options,
        prop,
        tp,
        invariants: Vec::new(),
        cache: HashMap::new(),
        lemmas: Vec::new(),
        lemma_cache: HashMap::new(),
        lemma_depth: 0,
        shared,
    };
    let trigger = tp.trigger().clone();
    let mut cases = Vec::with_capacity(expected);
    let mut flat = 0usize;
    for wi in 0..abs.worlds.len() {
        for ei in 0..abs.worlds[wi].exchanges.len() {
            let exchange = &abs.worlds[wi].exchanges[ei];
            let key = (exchange.ctype.clone(), exchange.msg.clone());
            if dirty.contains(&key) {
                match prover.prove_case_serial(wi, ei, &trigger) {
                    Ok(case) => cases.push(case),
                    Err(failure) => return Outcome::Failed(failure),
                }
            } else {
                cases.push(prior.cases[flat].clone());
            }
            flat += 1;
        }
    }
    Outcome::Proved(Certificate::Trace(TraceCert {
        property: prop.name.clone(),
        base: prior.base.clone(),
        cases,
        invariants: prover.invariants,
        lemmas: prover.lemmas,
        deps: Default::default(),
    }))
}

/// The outcome of preparing a trace property for cross-property
/// obligation scheduling (see `oblig.rs`).
// `Prepared` is the common case and lives only for one prove call;
// boxing it would cost an allocation per property for nothing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum TracePrep<'a, 'p> {
    /// Witness-only kind with a proved base: the inductive cases are
    /// independent pure obligations ready for the scheduler.
    Prepared(PreparedTrace<'a, 'p>),
    /// `Enables`/`Disables` extend the invariant and lemma tables as they
    /// go, which fixes a global visit order — the property must run whole.
    NotSchedulable,
    /// A base case already failed; no inductive obligations to schedule.
    Failed(ProofFailure),
}

/// A witness-only trace property (`ImmBefore`/`ImmAfter`/`Ensures`) with
/// its base cases proved and its inductive cases enumerated as independent
/// obligations. Each obligation is a pure `&self` function of the
/// abstraction, so a work-stealing scheduler may interleave them freely
/// with other properties' obligations; [`PreparedTrace::assemble`] then
/// rebuilds exactly the certificate (or the first-in-case-order failure)
/// that the serial prover would have produced.
pub(crate) struct PreparedTrace<'a, 'p> {
    prover: TraceProver<'a, 'p>,
    trigger: ActionPat,
    base: Vec<PathCert>,
    /// Flat `(world, exchange)` indices in serial visit order.
    units: Vec<(usize, usize)>,
}

/// Prepares one trace property for obligation-level scheduling: runs the
/// base cases (serially, as `prove` would) and enumerates the inductive
/// cases. Mirrors the entry sequence of [`prove_trace`], including the
/// chaos panic hook.
pub(crate) fn prepare_trace<'a, 'p>(
    abs: &'a Abstraction<'p>,
    options: &'a ProverOptions,
    prop: &'a PropertyDecl,
    tp: &'a TraceProp,
    shared: Option<&'a ProofCache>,
) -> TracePrep<'a, 'p> {
    #[cfg(feature = "panic-injection")]
    if options.panic_armed(&prop.name) {
        panic!("injected panic for `{}`", prop.name);
    }
    let pure_kind = matches!(
        tp.kind,
        TracePropKind::ImmBefore | TracePropKind::ImmAfter | TracePropKind::Ensures
    );
    if !pure_kind {
        return TracePrep::NotSchedulable;
    }
    let mut prover = TraceProver {
        abs,
        options,
        prop,
        tp,
        invariants: Vec::new(),
        cache: HashMap::new(),
        lemmas: Vec::new(),
        lemma_cache: HashMap::new(),
        lemma_depth: 0,
        shared,
    };
    let mut base = Vec::new();
    for (wi, world) in abs.worlds.iter().enumerate() {
        let location = format!("init path {wi}");
        if let Err(e) = crate::budget::tick_path(options, &location) {
            return TracePrep::Failed(e);
        }
        let actions: Vec<&SymAction> = world.init.actions.iter().collect();
        match prover.check_actions(&actions, &world.init.condition, None, &location) {
            Ok(cert) => base.push(cert),
            Err(e) => return TracePrep::Failed(e),
        }
    }
    let trigger = tp.trigger().clone();
    let units: Vec<(usize, usize)> = abs
        .worlds
        .iter()
        .enumerate()
        .flat_map(|(wi, world)| (0..world.exchanges.len()).map(move |ei| (wi, ei)))
        .collect();
    TracePrep::Prepared(PreparedTrace {
        prover,
        trigger,
        base,
        units,
    })
}

impl<'a, 'p> PreparedTrace<'a, 'p> {
    /// Number of schedulable inductive obligations.
    pub(crate) fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Discharges obligation `u` (pure; callable from any worker).
    pub(crate) fn run_unit(&self, u: usize) -> Result<CaseCert, ProofFailure> {
        let (wi, ei) = self.units[u];
        let exchange = &self.prover.abs.worlds[wi].exchanges[ei];
        self.prover
            .check_case_witness_only(wi, exchange, &self.trigger)
    }

    /// Rebuilds the serial result from the per-obligation results (in unit
    /// order): the first failure in case order, or the full certificate.
    pub(crate) fn assemble(self, cases: Vec<Result<CaseCert, ProofFailure>>) -> Outcome {
        match cases.into_iter().collect::<Result<Vec<_>, _>>() {
            Err(failure) => Outcome::Failed(failure),
            Ok(cases) => Outcome::Proved(Certificate::Trace(TraceCert {
                property: self.prover.prop.name.clone(),
                base: self.base,
                cases,
                invariants: self.prover.invariants,
                lemmas: self.prover.lemmas,
                deps: Default::default(),
            })),
        }
    }
}

fn prove_trace_inner(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    prop: &PropertyDecl,
    tp: &TraceProp,
    lemma_depth: usize,
    shared: Option<&ProofCache>,
) -> Result<TraceCert, ProofFailure> {
    let prover = TraceProver {
        abs,
        options,
        prop,
        tp,
        invariants: Vec::new(),
        cache: HashMap::new(),
        lemmas: Vec::new(),
        lemma_cache: HashMap::new(),
        lemma_depth,
        shared,
    };
    prover.prove()
}

struct TraceProver<'a, 'p> {
    abs: &'a Abstraction<'p>,
    options: &'a ProverOptions,
    prop: &'a PropertyDecl,
    tp: &'a TraceProp,
    invariants: Vec<InvariantCert>,
    cache: HashMap<InvKey, CacheEntry>,
    lemmas: Vec<LemmaCert>,
    lemma_cache: HashMap<(ActionPat, ActionPat), Option<usize>>,
    lemma_depth: usize,
    /// Cross-property proof cache; `None` inside package computations (see
    /// `cache.rs` for why packages must be computed detached).
    shared: Option<&'a ProofCache>,
}

impl<'a, 'p> TraceProver<'a, 'p> {
    fn fail(&self, location: impl Into<String>, reason: impl Into<String>) -> ProofFailure {
        ProofFailure {
            location: location.into(),
            reason: reason.into(),
        }
    }

    fn forall_ty(&self, var: &str) -> Ty {
        self.prop.forall_ty(var).unwrap_or(Ty::Str)
    }

    fn prove(mut self) -> Result<TraceCert, ProofFailure> {
        let mut base = Vec::new();
        for (wi, world) in self.abs.worlds.iter().enumerate() {
            let location = format!("init path {wi}");
            crate::budget::tick_path(self.options, &location)?;
            let actions: Vec<&SymAction> = world.init.actions.iter().collect();
            base.push(self.check_actions(&actions, &world.init.condition, None, &location)?);
        }
        let trigger = self.tp.trigger().clone();
        // `ImmBefore`/`ImmAfter`/`Ensures` obligations are discharged by
        // local witnesses only — their justification never touches the
        // invariant or lemma tables, so each inductive case is a pure
        // function of the abstraction and can run on a worker thread.
        let pure_kind = matches!(
            self.tp.kind,
            TracePropKind::ImmBefore | TracePropKind::ImmAfter | TracePropKind::Ensures
        );
        let jobs = self.options.effective_jobs();
        let cases = if pure_kind && jobs > 1 {
            self.prove_cases_parallel(&trigger, jobs)?
        } else {
            self.prove_cases_serial(&trigger)?
        };
        Ok(TraceCert {
            property: self.prop.name.clone(),
            base,
            cases,
            invariants: self.invariants,
            lemmas: self.lemmas,
            deps: Default::default(),
        })
    }

    fn prove_cases_serial(&mut self, trigger: &ActionPat) -> Result<Vec<CaseCert>, ProofFailure> {
        let mut cases = Vec::new();
        for wi in 0..self.abs.worlds.len() {
            for ei in 0..self.abs.worlds[wi].exchanges.len() {
                let case = self.prove_case_serial(wi, ei, trigger)?;
                cases.push(case);
            }
        }
        Ok(cases)
    }

    /// Proves one inductive case (the serial path; may extend the invariant
    /// and lemma tables).
    fn prove_case_serial(
        &mut self,
        wi: usize,
        ei: usize,
        trigger: &ActionPat,
    ) -> Result<CaseCert, ProofFailure> {
        let world = &self.abs.worlds[wi];
        let exchange = &world.exchanges[ei];
        if self.options.syntactic_skip
            && !case_can_emit_match(self.abs.checked(), &exchange.ctype, &exchange.msg, trigger)
        {
            return Ok(CaseCert {
                ctype: exchange.ctype.clone(),
                msg: exchange.msg.clone(),
                skipped: true,
                paths: Vec::new(),
            });
        }
        let mut paths = Vec::new();
        for (pi, path) in exchange.paths.iter().enumerate() {
            let location = format!(
                "world {wi}, case {}:{}, path {pi}",
                exchange.ctype, exchange.msg
            );
            crate::budget::tick_path(self.options, &location)?;
            let actions = exchange.appended_actions(path);
            // Inductive steps may assume the interval invariants of
            // the pre-state (they hold in every reachable state).
            let conditions: Vec<(Term, bool)> = world
                .range_assumptions
                .iter()
                .chain(path.condition.iter())
                .cloned()
                .collect();
            paths.push(self.check_actions(
                &actions,
                &conditions,
                Some((&exchange.sender, path)),
                &location,
            )?);
        }
        Ok(CaseCert {
            ctype: exchange.ctype.clone(),
            msg: exchange.msg.clone(),
            skipped: false,
            paths,
        })
    }

    /// Checks all inductive cases of a witness-only (`ImmBefore` /
    /// `ImmAfter` / `Ensures`) property on `jobs` worker threads.
    ///
    /// Results land in per-case slots and are collected in case order, so
    /// the certificate — and, on failure, the reported case (the lowest
    /// failing index, exactly what the serial loop stops at) — is identical
    /// to the serial run's regardless of thread timing.
    fn prove_cases_parallel(
        &self,
        trigger: &ActionPat,
        jobs: usize,
    ) -> Result<Vec<CaseCert>, ProofFailure> {
        let units: Vec<(usize, &World, &reflex_symbolic::Exchange)> = self
            .abs
            .worlds
            .iter()
            .enumerate()
            .flat_map(|(wi, world)| world.exchanges.iter().map(move |ex| (wi, world, ex)))
            .collect();
        crate::sched::run_indexed(jobs, units.len(), |i| {
            let (wi, _, exchange) = units[i];
            self.check_case_witness_only(wi, exchange, trigger)
        })
        .into_iter()
        .collect()
    }

    /// One inductive case of a witness-only property (shared by the
    /// parallel path; takes `&self` because these justifications never
    /// extend the invariant/lemma tables).
    fn check_case_witness_only(
        &self,
        wi: usize,
        exchange: &reflex_symbolic::Exchange,
        trigger: &ActionPat,
    ) -> Result<CaseCert, ProofFailure> {
        if self.options.syntactic_skip
            && !case_can_emit_match(self.abs.checked(), &exchange.ctype, &exchange.msg, trigger)
        {
            return Ok(CaseCert {
                ctype: exchange.ctype.clone(),
                msg: exchange.msg.clone(),
                skipped: true,
                paths: Vec::new(),
            });
        }
        let world = &self.abs.worlds[wi];
        let mut paths = Vec::new();
        for (pi, path) in exchange.paths.iter().enumerate() {
            let location = format!(
                "world {wi}, case {}:{}, path {pi}",
                exchange.ctype, exchange.msg
            );
            crate::budget::tick_path(self.options, &location)?;
            let actions = exchange.appended_actions(path);
            let conditions: Vec<(Term, bool)> = world
                .range_assumptions
                .iter()
                .chain(path.condition.iter())
                .cloned()
                .collect();
            paths.push(self.check_actions_witness_only(&actions, &conditions, &location)?);
        }
        Ok(CaseCert {
            ctype: exchange.ctype.clone(),
            msg: exchange.msg.clone(),
            skipped: false,
            paths,
        })
    }

    /// Enumerates the trigger obligations of one appended-action segment:
    /// each trigger instance is either refuted (side conditions contradict
    /// the path condition) or open, carrying the solver context extended
    /// with its side conditions. Shared by the serial and parallel paths.
    fn obligation_contexts(
        &self,
        actions: &[&SymAction],
        conditions: &[(Term, bool)],
    ) -> Vec<ObligationCtx> {
        let trigger = self.tp.trigger().clone();
        let solver0 = Solver::with_assumptions(conditions);
        let mut out = Vec::new();
        let insts = trigger_instances(&trigger, actions, &SymBindings::new());
        for inst in insts {
            if conds_refuted(&solver0, &inst.conds) {
                out.push(ObligationCtx::Refuted { index: inst.index });
                continue;
            }
            // The obligation only needs to hold in runs where the trigger
            // actually matches: case-split by assuming the side conditions.
            let mut solver = solver0.clone();
            for (t, pol) in &inst.conds {
                solver.assert_term(t.clone(), *pol);
            }
            if solver.is_unsat() {
                out.push(ObligationCtx::Refuted { index: inst.index });
                continue;
            }
            let all_conds: Vec<(Term, bool)> = conditions
                .iter()
                .cloned()
                .chain(inst.conds.iter().cloned())
                .collect();
            out.push(ObligationCtx::Open {
                inst,
                solver,
                all_conds,
            });
        }
        out
    }

    /// Checks every trigger obligation over one appended-action segment.
    fn check_actions(
        &mut self,
        actions: &[&SymAction],
        conditions: &[(Term, bool)],
        exchange_ctx: Option<(&SymComp, &Path)>,
        location: &str,
    ) -> Result<PathCert, ProofFailure> {
        let mut obligations = Vec::new();
        for ctx in self.obligation_contexts(actions, conditions) {
            match ctx {
                ObligationCtx::Refuted { index } => {
                    obligations.push((index, Justification::Refuted));
                }
                ObligationCtx::Open {
                    inst,
                    solver,
                    all_conds,
                } => {
                    let just = match self.tp.kind {
                        TracePropKind::Enables => self.justify_enables(
                            actions,
                            &inst,
                            &solver,
                            &all_conds,
                            exchange_ctx,
                            location,
                        )?,
                        TracePropKind::Disables => self.justify_disables(
                            actions,
                            &inst,
                            &solver,
                            &all_conds,
                            exchange_ctx,
                            location,
                        )?,
                        TracePropKind::ImmBefore => {
                            self.justify_imm_before(actions, &inst, &solver, location)?
                        }
                        TracePropKind::ImmAfter => {
                            self.justify_imm_after(actions, &inst, &solver, location)?
                        }
                        TracePropKind::Ensures => {
                            self.justify_ensures(actions, &inst, &solver, location)?
                        }
                    };
                    obligations.push((inst.index, just));
                }
            }
        }
        Ok(PathCert { obligations })
    }

    /// `check_actions` restricted to the witness-only kinds, so it can run
    /// on worker threads with `&self`.
    fn check_actions_witness_only(
        &self,
        actions: &[&SymAction],
        conditions: &[(Term, bool)],
        location: &str,
    ) -> Result<PathCert, ProofFailure> {
        let mut obligations = Vec::new();
        for ctx in self.obligation_contexts(actions, conditions) {
            match ctx {
                ObligationCtx::Refuted { index } => {
                    obligations.push((index, Justification::Refuted));
                }
                ObligationCtx::Open { inst, solver, .. } => {
                    let just = match self.tp.kind {
                        TracePropKind::ImmBefore => {
                            self.justify_imm_before(actions, &inst, &solver, location)?
                        }
                        TracePropKind::ImmAfter => {
                            self.justify_imm_after(actions, &inst, &solver, location)?
                        }
                        TracePropKind::Ensures => {
                            self.justify_ensures(actions, &inst, &solver, location)?
                        }
                        TracePropKind::Enables | TracePropKind::Disables => {
                            unreachable!("witness-only path never sees Enables/Disables")
                        }
                    };
                    obligations.push((inst.index, just));
                }
            }
        }
        Ok(PathCert { obligations })
    }

    fn justify_enables(
        &mut self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        all_conds: &[(Term, bool)],
        exchange_ctx: Option<(&SymComp, &Path)>,
        location: &str,
    ) -> Result<Justification, ProofFailure> {
        let obligation = self.tp.obligation().clone();
        for (j, action) in actions.iter().enumerate().take(inst.index) {
            if definite_match(solver, &obligation, action, &inst.bindings) {
                return Ok(Justification::Witness { index: j });
            }
        }
        let Some((sender, path)) = exchange_ctx else {
            return Err(self.fail(
                location,
                format!(
                    "init emits [{}] (action #{}) without a prior [{}]",
                    self.tp.trigger(),
                    inst.index,
                    obligation
                ),
            ));
        };
        let inv_result =
            self.invariant_from_obligation(&obligation, inst, all_conds, true, location);
        let inv_err = match inv_result {
            Ok(inv_id) => return Ok(Justification::Invariant { inv_id }),
            Err(e) => e,
        };
        // Fallback: the obligation variables may be pinned to the
        // configuration of an existing component (the sender or a looked-up
        // component), whose Spawn is in the prior trace; a lemma shows such
        // spawns are always preceded by the required action.
        match self.justify_via_comp_origin(
            actions,
            inst,
            solver,
            sender,
            path,
            &obligation,
            location,
        ) {
            Ok(Some(just)) => Ok(just),
            Ok(None) | Err(_) => Err(inv_err),
        }
    }

    /// Attempts the component-origin justification; `Ok(None)` means "not
    /// applicable".
    #[allow(clippy::too_many_arguments)]
    fn justify_via_comp_origin(
        &mut self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        sender: &SymComp,
        path: &Path,
        obligation: &ActionPat,
        location: &str,
    ) -> Result<Option<Justification>, ProofFailure> {
        if self.lemma_depth >= MAX_LEMMA_DEPTH {
            return Ok(None);
        }
        let pattern = specialize_pattern(obligation, &inst.bindings);
        let free_vars = pattern.vars();
        let mut origins: Vec<(CompOriginRef, &SymComp)> = vec![(CompOriginRef::Sender, sender)];
        let mut li = 0;
        for kind in &path.cond_kinds {
            if let CondKind::LookupPred { comp } = kind {
                origins.push((CompOriginRef::Lookup { index: li }, comp));
                li += 1;
            }
        }
        'origins: for (oref, comp) in origins {
            // Lookup-found components may have been spawned earlier in this
            // same exchange, which would not order the enabling action
            // before the trigger; restrict to cases where no same-type
            // spawn occurs in this exchange.
            if matches!(oref, CompOriginRef::Lookup { .. })
                && actions
                    .iter()
                    .any(|a| matches!(a, SymAction::Spawn { comp: c } if c.ctype == comp.ctype))
            {
                continue;
            }
            // Direct discharge: the obligation is itself a spawn pattern
            // that the origin component provably matches — its own Spawn
            // action (in the prior trace) is the witness.
            if let reflex_symbolic::Unify::Match { conditions, .. } = reflex_symbolic::unify_action(
                obligation,
                &SymAction::Spawn { comp: comp.clone() },
                &inst.bindings,
            ) {
                if crate::shared::conds_entailed(solver, &conditions) {
                    return Ok(Some(Justification::ViaCompOrigin {
                        origin: oref,
                        lemma_id: None,
                    }));
                }
            }
            // Build the spawn pattern: each configuration field pinned to a
            // bound variable the solver proves equal to it.
            let mut fields = Vec::with_capacity(comp.config.len());
            let mut covered: Vec<String> = Vec::new();
            for cfg_term in &comp.config {
                let hit = inst
                    .bindings
                    .iter()
                    .find(|(_, t)| *t == cfg_term || solver.entails_equal(t, cfg_term));
                match hit {
                    Some((v, _)) => {
                        fields.push(PatField::var(v));
                        covered.push(v.to_owned());
                    }
                    None => fields.push(PatField::Any),
                }
            }
            for v in &free_vars {
                if !covered.contains(v) {
                    continue 'origins; // this origin does not pin everything
                }
            }
            let spawn_pat = ActionPat::Spawn {
                comp: CompPat {
                    ctype: Some(comp.ctype.clone()),
                    config: Some(fields),
                },
            };
            if let Some(lemma_id) = self.prove_lemma(&pattern, &spawn_pat, location)? {
                return Ok(Some(Justification::ViaCompOrigin {
                    origin: oref,
                    lemma_id: Some(lemma_id),
                }));
            }
        }
        Ok(None)
    }

    /// Proves (or reuses) the lemma `∀vars, [a] Enables [b]`.
    fn prove_lemma(
        &mut self,
        a: &ActionPat,
        b: &ActionPat,
        location: &str,
    ) -> Result<Option<usize>, ProofFailure> {
        let key = (a.clone(), b.clone());
        if let Some(cached) = self.lemma_cache.get(&key) {
            return Ok(*cached);
        }
        let mut vars: Vec<(String, Ty)> = Vec::new();
        for v in b.vars().into_iter().chain(a.vars()) {
            if !vars.iter().any(|(n, _)| *n == v) {
                vars.push((v.clone(), self.forall_ty(&v)));
            }
        }
        // Property-level lemma requests go through the shared cache; nested
        // lemmas (inside a lemma proof) stay local, exactly as the package
        // computation itself proves them.
        if self.lemma_depth == 0 {
            if let Some(shared) = self.shared {
                let skey: SharedLemmaKey = (vars.clone(), a.clone(), b.clone());
                let pkg = shared.lemma_package(&skey, || {
                    compute_lemma_package(self.abs, self.options, &skey, shared)
                });
                let cached = match &*pkg {
                    Some(lemma) => {
                        self.lemmas.push(lemma.clone());
                        Some(self.lemmas.len() - 1)
                    }
                    None => None,
                };
                self.lemma_cache.insert(key, cached);
                let _ = location;
                return Ok(cached);
            }
        }
        self.lemma_cache.insert(key.clone(), None); // cycle guard
        let lemma_prop = PropertyDecl {
            name: format!("lemma:{a} Enables {b}"),
            forall: vars.clone(),
            body: reflex_ast::PropBody::Trace(TraceProp::new(
                TracePropKind::Enables,
                a.clone(),
                b.clone(),
            )),
        };
        let reflex_ast::PropBody::Trace(lemma_tp) = &lemma_prop.body else {
            unreachable!("constructed as trace property");
        };
        match prove_trace_inner(
            self.abs,
            self.options,
            &lemma_prop,
            lemma_tp,
            self.lemma_depth + 1,
            self.shared,
        ) {
            Ok(cert) => {
                self.lemmas.push(LemmaCert {
                    vars,
                    a: a.clone(),
                    b: b.clone(),
                    cert,
                });
                let id = self.lemmas.len() - 1;
                self.lemma_cache.insert(key, Some(id));
                Ok(Some(id))
            }
            Err(e) => {
                let _ = location;
                let _ = e;
                Ok(None)
            }
        }
    }

    fn justify_disables(
        &mut self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        all_conds: &[(Term, bool)],
        exchange_ctx: Option<(&SymComp, &Path)>,
        location: &str,
    ) -> Result<Justification, ProofFailure> {
        let obligation = self.tp.obligation().clone();
        for (j, action) in actions.iter().enumerate().take(inst.index) {
            if !definite_no_match(solver, &obligation, action, &inst.bindings) {
                return Err(self.fail(
                    location,
                    format!(
                        "forbidden [{}] (action #{j}) may precede [{}] (action #{})",
                        obligation,
                        self.tp.trigger(),
                        inst.index
                    ),
                ));
            }
        }
        let Some((_, path)) = exchange_ctx else {
            return Ok(Justification::NoMatch {
                prior: NegPrior::EmptyTrace,
            });
        };
        // A missed lookup covering the forbidden spawn pattern shows the
        // prior trace is clean: components never die, so a prior matching
        // Spawn would have left something for the lookup to find.
        if let Some(li) = missed_lookup_covering(path, &obligation, inst, solver) {
            return Ok(Justification::NoMatch {
                prior: NegPrior::MissedLookup { lookup_index: li },
            });
        }
        let inv_id =
            self.invariant_from_obligation(&obligation, inst, all_conds, false, location)?;
        Ok(Justification::NoMatch {
            prior: NegPrior::Invariant { inv_id },
        })
    }

    fn justify_imm_before(
        &self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        location: &str,
    ) -> Result<Justification, ProofFailure> {
        let obligation = self.tp.obligation().clone();
        if inst.index == 0 {
            return Err(self.fail(
                location,
                format!(
                    "[{}] may occur at the start of the exchange, where the \
                     immediately preceding action is unknown",
                    self.tp.trigger()
                ),
            ));
        }
        let j = inst.index - 1;
        if definite_match(solver, &obligation, actions[j], &inst.bindings) {
            Ok(Justification::Witness { index: j })
        } else {
            Err(self.fail(
                location,
                format!(
                    "action immediately before [{}] (action #{}) does not match [{}]",
                    self.tp.trigger(),
                    inst.index,
                    obligation
                ),
            ))
        }
    }

    fn justify_imm_after(
        &self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        location: &str,
    ) -> Result<Justification, ProofFailure> {
        let obligation = self.tp.obligation().clone();
        if inst.index + 1 >= actions.len() {
            return Err(self.fail(
                location,
                format!(
                    "[{}] may be the last action of a reachable trace, with no \
                     [{}] after it",
                    self.tp.trigger(),
                    obligation
                ),
            ));
        }
        let j = inst.index + 1;
        if definite_match(solver, &obligation, actions[j], &inst.bindings) {
            Ok(Justification::Witness { index: j })
        } else {
            Err(self.fail(
                location,
                format!(
                    "action immediately after [{}] (action #{}) does not match [{}]",
                    self.tp.trigger(),
                    inst.index,
                    obligation
                ),
            ))
        }
    }

    fn justify_ensures(
        &self,
        actions: &[&SymAction],
        inst: &TriggerInstance,
        solver: &Solver,
        location: &str,
    ) -> Result<Justification, ProofFailure> {
        let obligation = self.tp.obligation().clone();
        for (j, action) in actions.iter().enumerate().skip(inst.index + 1) {
            if definite_match(solver, &obligation, action, &inst.bindings) {
                return Ok(Justification::Witness { index: j });
            }
        }
        Err(self.fail(
            location,
            format!(
                "[{}] (action #{}) is not followed by [{}] within the same \
                 exchange, so a reachable trace violates Ensures",
                self.tp.trigger(),
                inst.index,
                obligation
            ),
        ))
    }

    // ---- invariant synthesis -------------------------------------------

    /// Builds and proves the auxiliary invariant needed to discharge an
    /// `Enables`/`Disables` obligation: generalize the path condition into
    /// a guard over state variables, specialize the obligation pattern
    /// with the literal bindings, and run the secondary induction.
    fn invariant_from_obligation(
        &mut self,
        obligation: &ActionPat,
        inst: &TriggerInstance,
        all_conds: &[(Term, bool)],
        positive: bool,
        location: &str,
    ) -> Result<usize, ProofFailure> {
        // Literal bindings specialize the pattern; symbolic bindings must
        // be generalized through the guard.
        let pattern = specialize_pattern(obligation, &inst.bindings);
        let mut sigma_inverse: BTreeMap<Term, Term> = BTreeMap::new();
        for (v, t) in inst.bindings.iter() {
            if !matches!(t, Term::Lit(_)) {
                sigma_inverse.insert(t.clone(), prop_term(v, self.forall_ty(v)));
            }
        }
        let mut atoms = Vec::new();
        for (t, pol) in flatten_literals(all_conds) {
            if let Some(atom) = generalize_literal(&t, pol, &sigma_inverse) {
                atoms.push(atom);
            }
        }
        // The bindings themselves relate property variables to the kernel
        // state (e.g. `?i == next_id + 1` for a freshly spawned tab id):
        // add each state-expressible binding as a guard atom.
        for (v, t) in inst.bindings.iter() {
            if matches!(t, Term::Lit(_)) {
                continue;
            }
            if let Some(canon) = canonicalize_state_term(t) {
                atoms.push((
                    Term::bin(
                        reflex_ast::BinOp::Eq,
                        prop_term(v, self.forall_ty(v)),
                        canon,
                    ),
                    true,
                ));
            }
        }
        let guard = Guard::new(atoms);

        if positive {
            // A positive invariant must pin every remaining pattern
            // variable, else its conclusion cannot supply the witness.
            let pinned = guard.prop_vars();
            for v in pattern.vars() {
                if !pinned.contains(&v) {
                    return Err(self.fail(
                        location,
                        format!(
                            "cannot relate obligation variable `{v}` (bound to a \
                             handler-local value) to any kernel state variable; \
                             no inductive invariant can be synthesized"
                        ),
                    ));
                }
            }
        }

        let vars = invariant_vars(&guard, &pattern, self.prop);
        // Candidate guards: the exact generalization, and its widened form
        // (equalities with constant offsets weakened to inequalities, which
        // is what monotone-counter invariants need). For negative
        // invariants the widened guard is usually the inductive one, so it
        // goes first; for positive invariants the exact one.
        let mut candidates = vec![guard.clone()];
        if let Some(weak) = weaken_guard(&guard) {
            if positive {
                candidates.push(weak);
            } else {
                candidates.insert(0, weak);
            }
        }
        let mut last_err = None;
        for cand in candidates {
            let vars = if cand == guard {
                vars.clone()
            } else {
                invariant_vars(&cand, &pattern, self.prop)
            };
            if positive && pattern.vars().iter().any(|v| !cand.prop_vars().contains(v)) {
                continue; // widening lost a required pin
            }
            match self.prove_invariant(vars, cand, pattern.clone(), positive, 0, location) {
                Ok(id) => return Ok(id),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| self.fail(location, "no invariant candidate could be synthesized")))
    }

    /// Proves (or reuses) the invariant `∀ vars, guard ⇒ (∃/∄) pattern`,
    /// returning its certificate id.
    fn prove_invariant(
        &mut self,
        vars: Vec<(String, Ty)>,
        guard: Guard,
        pattern: ActionPat,
        positive: bool,
        depth: usize,
        location: &str,
    ) -> Result<usize, ProofFailure> {
        let key = (guard.clone(), pattern.clone(), positive);
        match self.cache.get(&key).copied() {
            Some(CacheEntry::Proved(id)) => return Ok(id),
            Some(CacheEntry::InProgress) => {
                return Err(self.fail(
                    location,
                    format!("cyclic invariant dependency on `{guard}`"),
                ))
            }
            Some(CacheEntry::Failed) => {
                return Err(self.fail(
                    location,
                    format!("invariant `{guard}` was already found unprovable"),
                ))
            }
            None => {}
        }
        if depth >= self.options.max_invariant_depth {
            return Err(self.fail(
                location,
                format!(
                    "invariant chain exceeded depth {} at `{guard}`",
                    self.options.max_invariant_depth
                ),
            ));
        }
        if let Some(shared) = self.shared {
            return self.splice_shared_invariant(shared, vars, guard, pattern, positive, location);
        }
        self.cache.insert(key.clone(), CacheEntry::InProgress);
        let result = self.prove_invariant_inner(&vars, &guard, &pattern, positive, depth, location);
        match result {
            Ok(cert) => {
                self.invariants.push(cert);
                let id = self.invariants.len() - 1;
                if self.options.cache_invariants {
                    self.cache.insert(key, CacheEntry::Proved(id));
                } else {
                    // Ablation mode: forget the subproof so future
                    // obligations re-derive it (certificates then contain
                    // duplicate invariants — harmless, just slower).
                    self.cache.remove(&key);
                }
                Ok(id)
            }
            Err(e) => {
                self.cache.insert(key, CacheEntry::Failed);
                Err(e)
            }
        }
    }

    /// Discharges an invariant request from the shared cross-property
    /// cache: fetch (or compute) the self-contained package for the key and
    /// splice its certificate slice into this proof's invariant table,
    /// shifting the package's internal references by the splice offset.
    ///
    /// The package is a pure function of the key (see `cache.rs`), so this
    /// returns exactly what proving the invariant locally from a fresh
    /// context would have — whichever property, on whichever thread, paid
    /// for the computation first.
    fn splice_shared_invariant(
        &mut self,
        shared: &ProofCache,
        vars: Vec<(String, Ty)>,
        guard: Guard,
        pattern: ActionPat,
        positive: bool,
        location: &str,
    ) -> Result<usize, ProofFailure> {
        let skey: SharedInvKey = (vars, guard, pattern, positive);
        let pkg = shared.invariant_package(&skey, || {
            compute_invariant_package(self.abs, self.options, &skey)
        });
        let (_, guard, pattern, positive) = skey;
        match &*pkg {
            Ok(certs) => {
                let base = self.invariants.len();
                for (i, cert) in certs.iter().enumerate() {
                    let mut cert = cert.clone();
                    shift_invariant_refs(&mut cert, base);
                    if self.options.cache_invariants {
                        // Make the package's sub-invariants (root included)
                        // locally reusable; first splice wins on key
                        // collisions between packages — later duplicates
                        // still reference their own copies, so every
                        // certificate link stays valid.
                        self.cache
                            .entry((cert.guard.clone(), cert.pattern.clone(), cert.positive))
                            .or_insert(CacheEntry::Proved(base + i));
                    }
                    self.invariants.push(cert);
                }
                Ok(self.invariants.len() - 1)
            }
            Err(e) => {
                self.cache
                    .insert((guard, pattern, positive), CacheEntry::Failed);
                Err(ProofFailure {
                    location: location.to_owned(),
                    reason: e.reason.clone(),
                })
            }
        }
    }

    fn prove_invariant_inner(
        &mut self,
        vars: &[(String, Ty)],
        guard: &Guard,
        pattern: &ActionPat,
        positive: bool,
        depth: usize,
        location: &str,
    ) -> Result<InvariantCert, ProofFailure> {
        let mut sigma0 = SymBindings::new();
        for (v, ty) in vars {
            sigma0.insert(v.clone(), prop_term(v, *ty));
        }
        let guard_state_vars: Vec<String> = guard_state_vars(guard);

        // Base cases.
        let mut base = Vec::new();
        for (wi, world) in self.abs.worlds.iter().enumerate() {
            crate::budget::tick_path(self.options, location)?;
            let post = guard.instantiate(&world.init.state);
            let mut solver =
                Solver::with_assumptions(world.init.condition.iter().chain(post.iter()));
            if solver.is_unsat() {
                base.push(InvPathJust::GuardUnsat);
                continue;
            }
            let actions: Vec<&SymAction> = world.init.actions.iter().collect();
            if positive {
                let witness = (0..actions.len())
                    .find(|&j| definite_match(&solver, pattern, actions[j], &sigma0));
                match witness {
                    Some(j) => base.push(InvPathJust::Witness { index: j }),
                    None => {
                        return Err(self.fail(
                            location,
                            format!(
                                "invariant `{guard} ⇒ ∃ {pattern}` fails in init \
                                 path {wi}: guard may hold but no matching action \
                                 occurs"
                            ),
                        ))
                    }
                }
            } else {
                if let Some(j) = (0..actions.len())
                    .find(|&j| !definite_no_match(&solver, pattern, actions[j], &sigma0))
                {
                    return Err(self.fail(
                        location,
                        format!(
                            "invariant `{guard} ⇒ ∄ {pattern}` fails in init path \
                             {wi}: action #{j} may match"
                        ),
                    ));
                }
                base.push(InvPathJust::NegativeOk {
                    prior: NegPriorStep::EmptyTrace,
                });
            }
        }

        // Inductive cases.
        let mut cases = Vec::new();
        for world in &self.abs.worlds {
            for exchange in &world.exchanges {
                let emits = case_can_emit_match(
                    self.abs.checked(),
                    &exchange.ctype,
                    &exchange.msg,
                    pattern,
                );
                let assigns_guard_vars = match self
                    .abs
                    .checked()
                    .program()
                    .handler(&exchange.ctype, &exchange.msg)
                {
                    Some(h) => h
                        .body
                        .assigned_vars()
                        .iter()
                        .any(|v| guard_state_vars.contains(v)),
                    None => false,
                };
                if self.options.syntactic_skip && !emits && !assigns_guard_vars {
                    cases.push(InvCaseCert {
                        ctype: exchange.ctype.clone(),
                        msg: exchange.msg.clone(),
                        skipped: true,
                        paths: Vec::new(),
                    });
                    continue;
                }
                let mut paths = Vec::new();
                for (pi, path) in exchange.paths.iter().enumerate() {
                    let step_loc = format!(
                        "{location} → invariant `{guard}` case {}:{} path {pi}",
                        exchange.ctype, exchange.msg
                    );
                    crate::budget::tick_path(self.options, &step_loc)?;
                    paths.push(self.invariant_step(
                        world, exchange, path, guard, pattern, positive, &sigma0, depth, &step_loc,
                    )?);
                }
                cases.push(InvCaseCert {
                    ctype: exchange.ctype.clone(),
                    msg: exchange.msg.clone(),
                    skipped: false,
                    paths,
                });
            }
        }

        Ok(InvariantCert {
            vars: vars.to_vec(),
            guard: guard.clone(),
            pattern: pattern.clone(),
            positive,
            base,
            cases,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn invariant_step(
        &mut self,
        world: &World,
        exchange: &reflex_symbolic::Exchange,
        path: &reflex_symbolic::Path,
        guard: &Guard,
        pattern: &ActionPat,
        positive: bool,
        sigma0: &SymBindings,
        depth: usize,
        location: &str,
    ) -> Result<InvPathJust, ProofFailure> {
        let post = guard.instantiate(&path.state);
        let phi: Vec<(Term, bool)> = world
            .range_assumptions
            .iter()
            .cloned()
            .chain(path.condition.iter().cloned())
            .chain(post.iter().cloned())
            .collect();
        let mut solver = Solver::with_assumptions(&phi);
        if solver.is_unsat() {
            return Ok(InvPathJust::GuardUnsat);
        }
        let pre = guard.instantiate(&world.pre);
        let pre_holds = pre.iter().all(|(t, pol)| solver.entails(t, *pol));
        let actions = exchange.appended_actions(path);

        if positive {
            if pre_holds {
                return Ok(InvPathJust::Preserved);
            }
            if let Some(j) =
                (0..actions.len()).find(|&j| definite_match(&solver, pattern, actions[j], sigma0))
            {
                return Ok(InvPathJust::Witness { index: j });
            }
            // Chain: the pre-state may satisfy a different guard that
            // already implies the witness.
            let sub_guard = extract_canonical_guard(&phi);
            if sub_guard != *guard && !sub_guard.is_trivial() {
                let mut candidates = vec![sub_guard.clone()];
                if let Some(weak) = weaken_guard(&sub_guard) {
                    candidates.push(weak);
                }
                let mut last_err = None;
                for cand in candidates {
                    if cand == *guard
                        || !pattern.vars().iter().all(|v| cand.prop_vars().contains(v))
                    {
                        continue;
                    }
                    let vars = invariant_vars(&cand, pattern, self.prop);
                    match self.prove_invariant(
                        vars,
                        cand,
                        pattern.clone(),
                        true,
                        depth + 1,
                        location,
                    ) {
                        Ok(inv_id) => return Ok(InvPathJust::ViaInvariant { inv_id }),
                        Err(e) => last_err = Some(e),
                    }
                }
                if let Some(e) = last_err {
                    return Err(e);
                }
            }
            Err(self.fail(
                location,
                format!(
                    "guard `{guard}` may become true without the required \
                     [{pattern}] occurring (and no supporting invariant applies)"
                ),
            ))
        } else {
            // New actions must not match, regardless of how the prior
            // trace is justified.
            if let Some(j) = (0..actions.len())
                .find(|&j| !definite_no_match(&solver, pattern, actions[j], sigma0))
            {
                return Err(self.fail(
                    location,
                    format!(
                        "guard `{guard}` may hold after an exchange that emits a \
                         forbidden [{pattern}] (action #{j})"
                    ),
                ));
            }
            if pre_holds {
                return Ok(InvPathJust::NegativeOk {
                    prior: NegPriorStep::Ih,
                });
            }
            let sub_guard = extract_canonical_guard(&phi);
            if sub_guard != *guard && !sub_guard.is_trivial() {
                let mut candidates = Vec::new();
                if let Some(weak) = weaken_guard(&sub_guard) {
                    candidates.push(weak);
                }
                candidates.push(sub_guard);
                let mut last_err = None;
                for cand in candidates {
                    if cand == *guard {
                        continue;
                    }
                    let vars = invariant_vars(&cand, pattern, self.prop);
                    match self.prove_invariant(
                        vars,
                        cand,
                        pattern.clone(),
                        false,
                        depth + 1,
                        location,
                    ) {
                        Ok(inv_id) => {
                            return Ok(InvPathJust::NegativeOk {
                                prior: NegPriorStep::Invariant { inv_id },
                            })
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                if let Some(e) = last_err {
                    return Err(e);
                }
            }
            Err(self.fail(
                location,
                format!(
                    "guard `{guard}` may become newly true but the prior trace \
                     cannot be shown free of [{pattern}]"
                ),
            ))
        }
    }
}

// ---- shared proof packages ---------------------------------------------

/// Computes the self-contained proof package for one invariant key, in a
/// fresh prover context (see `cache.rs`): empty tables, depth 0, and the
/// shared cache detached so the result depends on nothing but the key.
///
/// The synthetic property exists only to carry the key's quantifier types
/// (`forall_ty` lookups during sub-invariant synthesis resolve against it);
/// its body is never proved.
fn compute_invariant_package(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    key: &SharedInvKey,
) -> InvariantPackage {
    let (vars, guard, pattern, positive) = key;
    let prop = PropertyDecl {
        name: format!("invariant:{guard}"),
        forall: vars.clone(),
        body: reflex_ast::PropBody::Trace(TraceProp::new(
            TracePropKind::Enables,
            pattern.clone(),
            pattern.clone(),
        )),
    };
    let reflex_ast::PropBody::Trace(tp) = &prop.body else {
        unreachable!("constructed as trace property");
    };
    let mut prover = TraceProver {
        abs,
        options,
        prop: &prop,
        tp,
        invariants: Vec::new(),
        cache: HashMap::new(),
        lemmas: Vec::new(),
        lemma_cache: HashMap::new(),
        // Invariant proofs never reach the lemma machinery; saturate the
        // depth so any future path there would be a no-op, not a package
        // impurity.
        lemma_depth: MAX_LEMMA_DEPTH,
        shared: None,
    };
    prover.prove_invariant(
        vars.clone(),
        guard.clone(),
        pattern.clone(),
        *positive,
        0,
        "shared invariant",
    )?;
    // The root is the last certificate pushed; dependencies precede it and
    // every internal reference points backwards within the slice.
    Ok(prover.invariants)
}

/// Computes the self-contained proof package for one lemma key. Lemma
/// proofs may themselves request invariants, which go through the shared
/// cache (lemma packages read invariant packages, never other lemma
/// packages, so the package dependency graph stays acyclic).
fn compute_lemma_package(
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    key: &SharedLemmaKey,
    shared: &ProofCache,
) -> LemmaPackage {
    let (vars, a, b) = key;
    let lemma_prop = PropertyDecl {
        name: format!("lemma:{a} Enables {b}"),
        forall: vars.clone(),
        body: reflex_ast::PropBody::Trace(TraceProp::new(
            TracePropKind::Enables,
            a.clone(),
            b.clone(),
        )),
    };
    let reflex_ast::PropBody::Trace(lemma_tp) = &lemma_prop.body else {
        unreachable!("constructed as trace property");
    };
    match prove_trace_inner(abs, options, &lemma_prop, lemma_tp, 1, Some(shared)) {
        Ok(cert) => Some(LemmaCert {
            vars: vars.clone(),
            a: a.clone(),
            b: b.clone(),
            cert,
        }),
        Err(_) => None,
    }
}

/// Shifts every intra-package invariant reference of a spliced certificate
/// by the splice offset.
fn shift_invariant_refs(cert: &mut InvariantCert, base: usize) {
    for just in cert
        .base
        .iter_mut()
        .chain(cert.cases.iter_mut().flat_map(|c| c.paths.iter_mut()))
    {
        match just {
            InvPathJust::ViaInvariant { inv_id } => *inv_id += base,
            InvPathJust::NegativeOk {
                prior: NegPriorStep::Invariant { inv_id },
            } => *inv_id += base,
            _ => {}
        }
    }
}

/// The state variables mentioned by a guard.
fn guard_state_vars(guard: &Guard) -> Vec<String> {
    let mut out = Vec::new();
    for (t, _) in &guard.atoms {
        let mut syms = Vec::new();
        t.collect_syms(&mut syms);
        for s in syms {
            if let reflex_symbolic::SymKind::StateVar(n) = &s.kind {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
        }
    }
    out
}

/// Extracts the strongest canonical guard entailed by a literal set: every
/// literal expressible purely over state variables and property variables.
fn extract_canonical_guard(phi: &[(Term, bool)]) -> Guard {
    let empty = BTreeMap::new();
    let atoms = flatten_literals(phi)
        .into_iter()
        .filter_map(|(t, pol)| generalize_literal(&t, pol, &empty))
        .collect();
    Guard::new(atoms)
}

/// Quantified variables of an invariant: those of its guard and pattern,
/// typed per the enclosing property's `forall`.
fn invariant_vars(guard: &Guard, pattern: &ActionPat, prop: &PropertyDecl) -> Vec<(String, Ty)> {
    let mut vars: Vec<(String, Ty)> = Vec::new();
    for v in guard.prop_vars().into_iter().chain(pattern.vars()) {
        if !vars.iter().any(|(n, _)| *n == v) {
            let ty = prop.forall_ty(&v).unwrap_or(Ty::Str);
            vars.push((v, ty));
        }
    }
    vars
}

/// Finds a missed lookup on `path` that *covers* the forbidden spawn
/// pattern: the lookup searched the pattern's component type and its
/// predicate is entailed for any candidate matching the pattern under the
/// trigger's bindings. Shared with the certificate checker.
pub(crate) fn missed_lookup_covering(
    path: &Path,
    obligation: &ActionPat,
    inst: &TriggerInstance,
    solver: &Solver,
) -> Option<usize> {
    (0..path.missed_lookups.len())
        .find(|&li| missed_lookup_covers(&path.missed_lookups[li], obligation, inst, solver))
}

/// Whether one missed lookup covers the forbidden spawn pattern (see
/// [`missed_lookup_covering`]). Also used by the certificate checker to
/// validate a claimed index.
pub(crate) fn missed_lookup_covers(
    ml: &reflex_symbolic::MissedLookup,
    obligation: &ActionPat,
    inst: &TriggerInstance,
    solver: &Solver,
) -> bool {
    let ActionPat::Spawn { comp: pat } = obligation else {
        return false;
    };
    if pat.ctype.as_deref() != Some(ml.ctype.as_str()) {
        return false;
    }
    // Unify the hypothetical candidate with the pattern under the trigger
    // bindings; the resulting equalities plus the obligation context must
    // entail the lookup predicate.
    let probe = SymAction::Spawn {
        comp: ml.candidate.clone(),
    };
    match reflex_symbolic::unify_action(obligation, &probe, &inst.bindings) {
        reflex_symbolic::Unify::Never => false,
        reflex_symbolic::Unify::Match { conditions, .. } => {
            let mut s = solver.clone();
            for (t, pol) in &conditions {
                s.assert_term(t.clone(), *pol);
            }
            !s.clone().is_unsat() && s.entails(&ml.pred_term, true)
        }
    }
}
