//! Cross-property obligation scheduling.
//!
//! The property-level fan-out has a long-tail problem: a batch of cheap
//! properties plus one huge one keeps a single worker busy for the whole
//! run while the rest go idle. This module decomposes each property into
//! its individually schedulable proof obligations so the work-stealing
//! pool ([`crate::sched`]) can interleave obligations *across* properties:
//!
//! * witness-only trace properties (`ImmBefore`/`ImmAfter`/`Ensures`)
//!   split into their inductive cases ([`trace_prover::PreparedTrace`]);
//! * non-interference properties split into their exchange cases
//!   ([`ni_prover::PreparedNi`]);
//! * `Enables`/`Disables` extend the prover's invariant/lemma tables in a
//!   global visit order that the certificate records, so they stay whole —
//!   one (possibly large) obligation each.
//!
//! Determinism: preparation, each obligation, and assembly are all pure
//! functions of the abstraction and options; the scheduler only decides
//! *which worker* computes each result. Assembly consumes results in
//! serial visit order, so outcomes and certificates are byte-identical to
//! [`crate::prove_all`] for every job count (enforced by the
//! `determinism.rs` integration tests and the CI `scale` job).

use reflex_ast::PropBody;

use crate::abstraction::Abstraction;
use crate::cache::ProofCache;
use crate::certificate::{CaseCert, NiCaseCert};
use crate::ni_prover::{self, PreparedNi};
use crate::options::{Outcome, ProofFailure, ProverOptions};
use crate::trace_prover::{self, PreparedTrace, TracePrep};

/// A property readied for obligation-level scheduling.
// The prepared variants are the common case and live only for one prove
// call; boxing them would cost an allocation per property for nothing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Prepared<'a, 'p> {
    /// Resolved during preparation (broadcast refusal, budget fail-fast,
    /// or a base-case failure): zero obligations left.
    Done(Box<Outcome>),
    /// Witness-only trace property: one obligation per inductive case.
    Trace(PreparedTrace<'a, 'p>),
    /// Non-interference property: one obligation per exchange case.
    Ni(PreparedNi<'a, 'p>),
    /// Must run whole (`Enables`/`Disables`): a single obligation that
    /// proves the entire property.
    Whole(&'a str),
}

/// One obligation's result, tagged with the property shape it belongs to.
pub(crate) enum UnitOut {
    Case(Result<CaseCert, ProofFailure>),
    NiCase(Result<NiCaseCert, ProofFailure>),
    Whole(Box<Outcome>),
}

/// Prepares one property: runs the shared pre-checks and, where the kind
/// allows it, proves the base cases and enumerates the inductive
/// obligations.
pub(crate) fn prepare<'a, 'p>(
    abs: &'a Abstraction<'p>,
    options: &'a ProverOptions,
    prop: &'a reflex_ast::PropertyDecl,
    cache: Option<&'a ProofCache>,
) -> Prepared<'a, 'p> {
    if let Some(outcome) = crate::pre_check(abs, options, &prop.name) {
        return Prepared::Done(Box::new(outcome));
    }
    let shared = if options.shared_cache { cache } else { None };
    match &prop.body {
        PropBody::Trace(tp) => {
            // Preparation proves the base cases — a proof task of its own
            // for the scratch term arena.
            match reflex_symbolic::with_scratch(|| {
                trace_prover::prepare_trace(abs, options, prop, tp, shared)
            }) {
                TracePrep::Prepared(p) => Prepared::Trace(p),
                TracePrep::NotSchedulable => Prepared::Whole(&prop.name),
                TracePrep::Failed(f) => Prepared::Done(Box::new(Outcome::Failed(f))),
            }
        }
        PropBody::NonInterference(spec) => {
            Prepared::Ni(ni_prover::prepare_ni(abs, options, prop, spec))
        }
    }
}

/// Number of schedulable obligations this property contributes.
pub(crate) fn unit_count(prepared: &Prepared<'_, '_>) -> usize {
    match prepared {
        Prepared::Done(_) => 0,
        Prepared::Trace(p) => p.unit_count(),
        Prepared::Ni(p) => p.unit_count(),
        Prepared::Whole(_) => 1,
    }
}

/// Discharges obligation `u` of a prepared property (pure; callable from
/// any worker).
pub(crate) fn run_unit(
    prepared: &Prepared<'_, '_>,
    u: usize,
    abs: &Abstraction<'_>,
    options: &ProverOptions,
    cache: Option<&ProofCache>,
) -> UnitOut {
    // Each obligation is one task for the scratch term arena (whole
    // properties get their scope inside `prove_with_cache`).
    match prepared {
        Prepared::Done(_) => unreachable!("resolved properties contribute no obligations"),
        Prepared::Trace(p) => UnitOut::Case(reflex_symbolic::with_scratch(|| p.run_unit(u))),
        Prepared::Ni(p) => UnitOut::NiCase(reflex_symbolic::with_scratch(|| p.run_unit(u))),
        Prepared::Whole(name) => UnitOut::Whole(Box::new(
            crate::prove_with_cache(abs, name, options, cache)
                .expect("property exists by construction"),
        )),
    }
}

/// Reassembles a property's outcome from its obligation results (in unit
/// order) and applies the shared post-processing (budget re-classification
/// and dependency stamping) so the result is indistinguishable from
/// [`crate::prove_with_cache`]'s.
pub(crate) fn assemble(
    prepared: Prepared<'_, '_>,
    units: Vec<UnitOut>,
    abs: &Abstraction<'_>,
) -> Outcome {
    match prepared {
        Prepared::Done(outcome) => crate::finalize_outcome(abs, *outcome),
        Prepared::Trace(p) => {
            let cases = units
                .into_iter()
                .map(|u| match u {
                    UnitOut::Case(c) => c,
                    _ => unreachable!("trace property obligations are cases"),
                })
                .collect();
            crate::finalize_outcome(abs, p.assemble(cases))
        }
        Prepared::Ni(p) => {
            let cases = units
                .into_iter()
                .map(|u| match u {
                    UnitOut::NiCase(c) => c,
                    _ => unreachable!("NI property obligations are NI cases"),
                })
                .collect();
            crate::finalize_outcome(abs, p.assemble(cases))
        }
        Prepared::Whole(_) => match units.into_iter().next() {
            // Already fully post-processed by `prove_with_cache`.
            Some(UnitOut::Whole(outcome)) => *outcome,
            _ => unreachable!("whole properties yield exactly one outcome"),
        },
    }
}
