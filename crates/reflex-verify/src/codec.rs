//! The deterministic binary certificate codec used by the proof store.
//!
//! Little-endian fixed-width integers; strings as u32 length + UTF-8
//! bytes; sequences as u32 length + elements; enums as a u8 tag + payload.
//! The encoder writes exactly what the decoder reads — no padding, no
//! timestamps — so equal values produce equal bytes, which is what makes
//! the store content-addressed: concurrent writers racing on one key
//! write identical frames, and serial vs `--jobs N` stores stay
//! byte-identical.
//!
//! Decoding rebuilds the exact stored structure (terms are re-interned
//! without re-simplification), so round-tripping is the identity; any
//! truncation, trailing garbage or tag mismatch decodes to `None`, which
//! the store reports as a cache miss.

use reflex_ast::fingerprint::Fp;
use reflex_ast::{ActionPat, CompPat, PatField, Ty, Value};
use reflex_symbolic::{SymKind, SymVar, Term, TermRef};

use crate::canon::Guard;
use crate::certificate::{
    CaseCert, Certificate, CompOriginRef, DepSet, InvCaseCert, InvPathJust, InvariantCert,
    Justification, LemmaCert, NegPrior, NegPriorStep, NiCaseCert, NiCert, PathCert, TraceCert,
};

pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("sequence fits in u32"));
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn fp(&mut self, fp: Fp) {
        self.u64(fp.0);
    }
    pub(crate) fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.u64(n as u64);
            }
        }
    }
}

pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    pub(crate) fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    pub(crate) fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        // A declared length can never exceed the remaining bytes (every
        // element is at least one byte): reject early so corrupt lengths
        // cannot trigger huge allocations.
        (n <= self.buf.len() - self.pos).then_some(n)
    }
    pub(crate) fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    pub(crate) fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    pub(crate) fn fp(&mut self) -> Option<Fp> {
        Some(Fp(self.u64()?))
    }
    pub(crate) fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    pub(crate) fn opt_usize(&mut self) -> Option<Option<usize>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.usize()?)),
            _ => None,
        }
    }
    /// Succeeds only when every byte was consumed: trailing garbage is
    /// corruption.
    pub(crate) fn finish(&self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

fn enc_ty(e: &mut Enc, ty: Ty) {
    e.u8(match ty {
        Ty::Bool => 0,
        Ty::Num => 1,
        Ty::Str => 2,
        Ty::Fdesc => 3,
        Ty::Comp => 4,
    });
}

fn dec_ty(d: &mut Dec) -> Option<Ty> {
    Some(match d.u8()? {
        0 => Ty::Bool,
        1 => Ty::Num,
        2 => Ty::Str,
        3 => Ty::Fdesc,
        4 => Ty::Comp,
        _ => return None,
    })
}

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Bool(b) => {
            e.u8(0);
            e.bool(*b);
        }
        Value::Num(n) => {
            e.u8(1);
            e.i64(*n);
        }
        Value::Str(s) => {
            e.u8(2);
            e.str(s);
        }
        Value::Fdesc(fd) => {
            e.u8(3);
            e.u64(fd.raw());
        }
        Value::Comp(id) => {
            e.u8(4);
            e.u64(id.raw());
        }
    }
}

fn dec_value(d: &mut Dec) -> Option<Value> {
    Some(match d.u8()? {
        0 => Value::Bool(d.bool()?),
        1 => Value::Num(d.i64()?),
        2 => Value::Str(d.str()?),
        3 => Value::Fdesc(reflex_ast::Fdesc::new(d.u64()?)),
        4 => Value::Comp(reflex_ast::CompId::new(d.u64()?)),
        _ => return None,
    })
}

fn enc_sym(e: &mut Enc, s: &SymVar) {
    e.u32(s.id);
    enc_ty(e, s.ty);
    match &s.kind {
        SymKind::StateVar(n) => {
            e.u8(0);
            e.str(n);
        }
        SymKind::Param(n) => {
            e.u8(1);
            e.str(n);
        }
        SymKind::SenderCfg(i) => {
            e.u8(2);
            e.u64(*i as u64);
        }
        SymKind::LookupCfg(i) => {
            e.u8(3);
            e.u64(*i as u64);
        }
        SymKind::CallResult(f) => {
            e.u8(4);
            e.str(f);
        }
        SymKind::CompId => e.u8(5),
        SymKind::PropVar(n) => {
            e.u8(6);
            e.str(n);
        }
        SymKind::Fresh => e.u8(7),
    }
}

fn dec_sym(d: &mut Dec) -> Option<SymVar> {
    let id = d.u32()?;
    let ty = dec_ty(d)?;
    let kind = match d.u8()? {
        0 => SymKind::StateVar(d.str()?),
        1 => SymKind::Param(d.str()?),
        2 => SymKind::SenderCfg(d.usize()?),
        3 => SymKind::LookupCfg(d.usize()?),
        4 => SymKind::CallResult(d.str()?),
        5 => SymKind::CompId,
        6 => SymKind::PropVar(d.str()?),
        7 => SymKind::Fresh,
        _ => return None,
    };
    Some(SymVar { id, ty, kind })
}

fn enc_term(e: &mut Enc, t: &Term) {
    match t {
        Term::Lit(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        Term::Sym(s) => {
            e.u8(1);
            enc_sym(e, s);
        }
        Term::Un(op, inner) => {
            e.u8(2);
            e.u8(match op {
                reflex_ast::UnOp::Not => 0,
                reflex_ast::UnOp::Neg => 1,
            });
            enc_term(e, inner);
        }
        Term::Bin(op, l, r) => {
            e.u8(3);
            e.u8(bin_op_tag(*op));
            enc_term(e, l);
            enc_term(e, r);
        }
    }
}

fn bin_op_tag(op: reflex_ast::BinOp) -> u8 {
    use reflex_ast::BinOp as B;
    match op {
        B::Eq => 0,
        B::Ne => 1,
        B::And => 2,
        B::Or => 3,
        B::Add => 4,
        B::Sub => 5,
        B::Lt => 6,
        B::Le => 7,
        B::Cat => 8,
    }
}

fn dec_bin_op(tag: u8) -> Option<reflex_ast::BinOp> {
    use reflex_ast::BinOp as B;
    Some(match tag {
        0 => B::Eq,
        1 => B::Ne,
        2 => B::And,
        3 => B::Or,
        4 => B::Add,
        5 => B::Sub,
        6 => B::Lt,
        7 => B::Le,
        8 => B::Cat,
        _ => return None,
    })
}

/// Decodes a term, rebuilding the *exact* stored tree. Compound nodes are
/// re-interned via [`TermRef::new`] directly — not through the normalizing
/// [`Term::bin`]/[`Term::un`] constructors — because the stored tree was
/// already normalized at prove time and must round-trip unchanged for the
/// byte-identity guarantees to hold.
fn dec_term(d: &mut Dec) -> Option<Term> {
    Some(match d.u8()? {
        0 => Term::Lit(dec_value(d)?),
        1 => Term::Sym(dec_sym(d)?),
        2 => {
            let op = match d.u8()? {
                0 => reflex_ast::UnOp::Not,
                1 => reflex_ast::UnOp::Neg,
                _ => return None,
            };
            Term::Un(op, TermRef::new(dec_term(d)?))
        }
        3 => {
            let op = dec_bin_op(d.u8()?)?;
            let l = dec_term(d)?;
            let r = dec_term(d)?;
            Term::Bin(op, TermRef::new(l), TermRef::new(r))
        }
        _ => return None,
    })
}

fn enc_pat_field(e: &mut Enc, f: &PatField) {
    match f {
        PatField::Lit(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        PatField::Var(n) => {
            e.u8(1);
            e.str(n);
        }
        PatField::Any => e.u8(2),
    }
}

fn dec_pat_field(d: &mut Dec) -> Option<PatField> {
    Some(match d.u8()? {
        0 => PatField::Lit(dec_value(d)?),
        1 => PatField::Var(d.str()?),
        2 => PatField::Any,
        _ => return None,
    })
}

fn enc_pat_fields(e: &mut Enc, fs: &[PatField]) {
    e.len(fs.len());
    for f in fs {
        enc_pat_field(e, f);
    }
}

fn dec_pat_fields(d: &mut Dec) -> Option<Vec<PatField>> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_pat_field(d)?);
    }
    Some(out)
}

fn enc_comp_pat(e: &mut Enc, c: &CompPat) {
    match &c.ctype {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            e.str(t);
        }
    }
    match &c.config {
        None => e.u8(0),
        Some(fs) => {
            e.u8(1);
            enc_pat_fields(e, fs);
        }
    }
}

fn dec_comp_pat(d: &mut Dec) -> Option<CompPat> {
    let ctype = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        _ => return None,
    };
    let config = match d.u8()? {
        0 => None,
        1 => Some(dec_pat_fields(d)?),
        _ => return None,
    };
    Some(CompPat { ctype, config })
}

fn enc_action_pat(e: &mut Enc, p: &ActionPat) {
    match p {
        ActionPat::Select { comp } => {
            e.u8(0);
            enc_comp_pat(e, comp);
        }
        ActionPat::Recv { comp, msg, args } => {
            e.u8(1);
            enc_comp_pat(e, comp);
            e.str(msg);
            enc_pat_fields(e, args);
        }
        ActionPat::Send { comp, msg, args } => {
            e.u8(2);
            enc_comp_pat(e, comp);
            e.str(msg);
            enc_pat_fields(e, args);
        }
        ActionPat::Spawn { comp } => {
            e.u8(3);
            enc_comp_pat(e, comp);
        }
        ActionPat::Call { func, args, result } => {
            e.u8(4);
            e.str(func);
            match args {
                None => e.u8(0),
                Some(fs) => {
                    e.u8(1);
                    enc_pat_fields(e, fs);
                }
            }
            enc_pat_field(e, result);
        }
    }
}

fn dec_action_pat(d: &mut Dec) -> Option<ActionPat> {
    Some(match d.u8()? {
        0 => ActionPat::Select {
            comp: dec_comp_pat(d)?,
        },
        1 => ActionPat::Recv {
            comp: dec_comp_pat(d)?,
            msg: d.str()?,
            args: dec_pat_fields(d)?,
        },
        2 => ActionPat::Send {
            comp: dec_comp_pat(d)?,
            msg: d.str()?,
            args: dec_pat_fields(d)?,
        },
        3 => ActionPat::Spawn {
            comp: dec_comp_pat(d)?,
        },
        4 => {
            let func = d.str()?;
            let args = match d.u8()? {
                0 => None,
                1 => Some(dec_pat_fields(d)?),
                _ => return None,
            };
            let result = dec_pat_field(d)?;
            ActionPat::Call { func, args, result }
        }
        _ => return None,
    })
}

fn enc_guard(e: &mut Enc, g: &Guard) {
    e.len(g.atoms.len());
    for (t, pol) in &g.atoms {
        enc_term(e, t);
        e.bool(*pol);
    }
}

fn dec_guard(d: &mut Dec) -> Option<Guard> {
    let n = d.len()?;
    let mut atoms = Vec::with_capacity(n);
    for _ in 0..n {
        let t = dec_term(d)?;
        let pol = d.bool()?;
        atoms.push((t, pol));
    }
    // Direct construction: the stored atom order is the canonical one.
    Some(Guard { atoms })
}

fn enc_justification(e: &mut Enc, j: &Justification) {
    match j {
        Justification::Refuted => e.u8(0),
        Justification::Witness { index } => {
            e.u8(1);
            e.u64(*index as u64);
        }
        Justification::Invariant { inv_id } => {
            e.u8(2);
            e.u64(*inv_id as u64);
        }
        Justification::NoMatch { prior } => {
            e.u8(3);
            match prior {
                NegPrior::EmptyTrace => e.u8(0),
                NegPrior::Invariant { inv_id } => {
                    e.u8(1);
                    e.u64(*inv_id as u64);
                }
                NegPrior::MissedLookup { lookup_index } => {
                    e.u8(2);
                    e.u64(*lookup_index as u64);
                }
            }
        }
        Justification::ViaCompOrigin { origin, lemma_id } => {
            e.u8(4);
            match origin {
                CompOriginRef::Sender => e.u8(0),
                CompOriginRef::Lookup { index } => {
                    e.u8(1);
                    e.u64(*index as u64);
                }
            }
            e.opt_usize(*lemma_id);
        }
    }
}

fn dec_justification(d: &mut Dec) -> Option<Justification> {
    Some(match d.u8()? {
        0 => Justification::Refuted,
        1 => Justification::Witness { index: d.usize()? },
        2 => Justification::Invariant { inv_id: d.usize()? },
        3 => {
            let prior = match d.u8()? {
                0 => NegPrior::EmptyTrace,
                1 => NegPrior::Invariant { inv_id: d.usize()? },
                2 => NegPrior::MissedLookup {
                    lookup_index: d.usize()?,
                },
                _ => return None,
            };
            Justification::NoMatch { prior }
        }
        4 => {
            let origin = match d.u8()? {
                0 => CompOriginRef::Sender,
                1 => CompOriginRef::Lookup { index: d.usize()? },
                _ => return None,
            };
            let lemma_id = d.opt_usize()?;
            Justification::ViaCompOrigin { origin, lemma_id }
        }
        _ => return None,
    })
}

fn enc_path_cert(e: &mut Enc, p: &PathCert) {
    e.len(p.obligations.len());
    for (idx, j) in &p.obligations {
        e.u64(*idx as u64);
        enc_justification(e, j);
    }
}

fn dec_path_cert(d: &mut Dec) -> Option<PathCert> {
    let n = d.len()?;
    let mut obligations = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = d.usize()?;
        let j = dec_justification(d)?;
        obligations.push((idx, j));
    }
    Some(PathCert { obligations })
}

fn enc_inv_path_just(e: &mut Enc, j: &InvPathJust) {
    match j {
        InvPathJust::GuardUnsat => e.u8(0),
        InvPathJust::Preserved => e.u8(1),
        InvPathJust::Witness { index } => {
            e.u8(2);
            e.u64(*index as u64);
        }
        InvPathJust::ViaInvariant { inv_id } => {
            e.u8(3);
            e.u64(*inv_id as u64);
        }
        InvPathJust::NegativeOk { prior } => {
            e.u8(4);
            match prior {
                NegPriorStep::Ih => e.u8(0),
                NegPriorStep::Invariant { inv_id } => {
                    e.u8(1);
                    e.u64(*inv_id as u64);
                }
                NegPriorStep::EmptyTrace => e.u8(2),
            }
        }
    }
}

fn dec_inv_path_just(d: &mut Dec) -> Option<InvPathJust> {
    Some(match d.u8()? {
        0 => InvPathJust::GuardUnsat,
        1 => InvPathJust::Preserved,
        2 => InvPathJust::Witness { index: d.usize()? },
        3 => InvPathJust::ViaInvariant { inv_id: d.usize()? },
        4 => {
            let prior = match d.u8()? {
                0 => NegPriorStep::Ih,
                1 => NegPriorStep::Invariant { inv_id: d.usize()? },
                2 => NegPriorStep::EmptyTrace,
                _ => return None,
            };
            InvPathJust::NegativeOk { prior }
        }
        _ => return None,
    })
}

fn enc_invariant(e: &mut Enc, inv: &InvariantCert) {
    e.len(inv.vars.len());
    for (name, ty) in &inv.vars {
        e.str(name);
        enc_ty(e, *ty);
    }
    enc_guard(e, &inv.guard);
    enc_action_pat(e, &inv.pattern);
    e.bool(inv.positive);
    e.len(inv.base.len());
    for j in &inv.base {
        enc_inv_path_just(e, j);
    }
    e.len(inv.cases.len());
    for c in &inv.cases {
        e.str(&c.ctype);
        e.str(&c.msg);
        e.bool(c.skipped);
        e.len(c.paths.len());
        for j in &c.paths {
            enc_inv_path_just(e, j);
        }
    }
}

fn dec_invariant(d: &mut Dec) -> Option<InvariantCert> {
    let nv = d.len()?;
    let mut vars = Vec::with_capacity(nv);
    for _ in 0..nv {
        let name = d.str()?;
        let ty = dec_ty(d)?;
        vars.push((name, ty));
    }
    let guard = dec_guard(d)?;
    let pattern = dec_action_pat(d)?;
    let positive = d.bool()?;
    let nb = d.len()?;
    let mut base = Vec::with_capacity(nb);
    for _ in 0..nb {
        base.push(dec_inv_path_just(d)?);
    }
    let nc = d.len()?;
    let mut cases = Vec::with_capacity(nc);
    for _ in 0..nc {
        let ctype = d.str()?;
        let msg = d.str()?;
        let skipped = d.bool()?;
        let np = d.len()?;
        let mut paths = Vec::with_capacity(np);
        for _ in 0..np {
            paths.push(dec_inv_path_just(d)?);
        }
        cases.push(InvCaseCert {
            ctype,
            msg,
            skipped,
            paths,
        });
    }
    Some(InvariantCert {
        vars,
        guard,
        pattern,
        positive,
        base,
        cases,
    })
}

fn enc_dep_set(e: &mut Enc, deps: &DepSet) {
    e.fp(deps.decls);
    e.fp(deps.property);
    e.fp(deps.ranges);
    e.len(deps.handlers.len());
    for (ctype, msg, fp) in &deps.handlers {
        e.str(ctype);
        e.str(msg);
        e.fp(*fp);
    }
    e.len(deps.syntactic_only.len());
    for (ctype, msg) in &deps.syntactic_only {
        e.str(ctype);
        e.str(msg);
    }
}

fn dec_dep_set(d: &mut Dec) -> Option<DepSet> {
    let decls = d.fp()?;
    let property = d.fp()?;
    let ranges = d.fp()?;
    let nh = d.len()?;
    let mut handlers = Vec::with_capacity(nh);
    for _ in 0..nh {
        let ctype = d.str()?;
        let msg = d.str()?;
        let fp = d.fp()?;
        handlers.push((ctype, msg, fp));
    }
    let ns = d.len()?;
    let mut syntactic_only = Vec::with_capacity(ns);
    for _ in 0..ns {
        let ctype = d.str()?;
        let msg = d.str()?;
        syntactic_only.push((ctype, msg));
    }
    Some(DepSet {
        decls,
        property,
        ranges,
        handlers,
        syntactic_only,
    })
}

fn enc_trace_cert(e: &mut Enc, t: &TraceCert) {
    e.str(&t.property);
    e.len(t.base.len());
    for p in &t.base {
        enc_path_cert(e, p);
    }
    e.len(t.cases.len());
    for c in &t.cases {
        e.str(&c.ctype);
        e.str(&c.msg);
        e.bool(c.skipped);
        e.len(c.paths.len());
        for p in &c.paths {
            enc_path_cert(e, p);
        }
    }
    e.len(t.invariants.len());
    for inv in &t.invariants {
        enc_invariant(e, inv);
    }
    e.len(t.lemmas.len());
    for lemma in &t.lemmas {
        e.len(lemma.vars.len());
        for (name, ty) in &lemma.vars {
            e.str(name);
            enc_ty(e, *ty);
        }
        enc_action_pat(e, &lemma.a);
        enc_action_pat(e, &lemma.b);
        enc_trace_cert(e, &lemma.cert);
    }
    enc_dep_set(e, &t.deps);
}

fn dec_trace_cert(d: &mut Dec) -> Option<TraceCert> {
    let property = d.str()?;
    let nb = d.len()?;
    let mut base = Vec::with_capacity(nb);
    for _ in 0..nb {
        base.push(dec_path_cert(d)?);
    }
    let nc = d.len()?;
    let mut cases = Vec::with_capacity(nc);
    for _ in 0..nc {
        let ctype = d.str()?;
        let msg = d.str()?;
        let skipped = d.bool()?;
        let np = d.len()?;
        let mut paths = Vec::with_capacity(np);
        for _ in 0..np {
            paths.push(dec_path_cert(d)?);
        }
        cases.push(CaseCert {
            ctype,
            msg,
            skipped,
            paths,
        });
    }
    let ni = d.len()?;
    let mut invariants = Vec::with_capacity(ni);
    for _ in 0..ni {
        invariants.push(dec_invariant(d)?);
    }
    let nl = d.len()?;
    let mut lemmas = Vec::with_capacity(nl);
    for _ in 0..nl {
        let nv = d.len()?;
        let mut vars = Vec::with_capacity(nv);
        for _ in 0..nv {
            let name = d.str()?;
            let ty = dec_ty(d)?;
            vars.push((name, ty));
        }
        let a = dec_action_pat(d)?;
        let b = dec_action_pat(d)?;
        let cert = dec_trace_cert(d)?;
        lemmas.push(LemmaCert { vars, a, b, cert });
    }
    let deps = dec_dep_set(d)?;
    Some(TraceCert {
        property,
        base,
        cases,
        invariants,
        lemmas,
        deps,
    })
}

pub(crate) fn enc_certificate(e: &mut Enc, cert: &Certificate) {
    match cert {
        Certificate::Trace(t) => {
            e.u8(0);
            enc_trace_cert(e, t);
        }
        Certificate::NonInterference(n) => {
            e.u8(1);
            e.str(&n.property);
            e.len(n.cases.len());
            for c in &n.cases {
                e.str(&c.ctype);
                e.str(&c.msg);
                e.opt_usize(c.low_paths);
                e.opt_usize(c.high_paths);
            }
            enc_dep_set(e, &n.deps);
        }
    }
}

pub(crate) fn dec_certificate(d: &mut Dec) -> Option<Certificate> {
    Some(match d.u8()? {
        0 => Certificate::Trace(dec_trace_cert(d)?),
        1 => {
            let property = d.str()?;
            let nc = d.len()?;
            let mut cases = Vec::with_capacity(nc);
            for _ in 0..nc {
                let ctype = d.str()?;
                let msg = d.str()?;
                let low_paths = d.opt_usize()?;
                let high_paths = d.opt_usize()?;
                cases.push(NiCaseCert {
                    ctype,
                    msg,
                    low_paths,
                    high_paths,
                });
            }
            let deps = dec_dep_set(d)?;
            Certificate::NonInterference(NiCert {
                property,
                cases,
                deps,
            })
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProverOptions;

    /// Round-trips a certificate through the binary codec in memory.
    fn round_trip(cert: &Certificate) -> Certificate {
        let mut e = Enc::new();
        enc_certificate(&mut e, cert);
        let mut d = Dec::new(&e.buf);
        let back = dec_certificate(&mut d).expect("decodes");
        d.finish().expect("fully consumed");
        back
    }

    #[test]
    fn certificates_round_trip_bit_exactly() {
        let checked = reflex_kernels::ssh::checked();
        let options = ProverOptions::default();
        for (name, outcome) in crate::prove_all(&checked, &options) {
            let cert = outcome.certificate().expect("proved");
            assert_eq!(&round_trip(cert), cert, "{name}");
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_misses() {
        let checked = reflex_kernels::car::checked();
        let options = ProverOptions::default();
        let (_, outcome) = crate::prove_all(&checked, &options).remove(0);
        let cert = outcome.certificate().expect("proved").clone();
        let mut e = Enc::new();
        enc_certificate(&mut e, &cert);
        // Every truncation point fails to decode (or fails `finish`).
        for cut in 0..e.buf.len() {
            let mut d = Dec::new(&e.buf[..cut]);
            let ok = dec_certificate(&mut d).is_some() && d.finish().is_some();
            assert!(!ok, "truncation at {cut} must be a miss");
        }
        // Trailing garbage is rejected by `finish`.
        let mut padded = e.buf.clone();
        padded.push(0);
        let mut d = Dec::new(&padded);
        let _ = dec_certificate(&mut d);
        assert!(d.finish().is_none());
    }
}
