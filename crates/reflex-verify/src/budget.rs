//! Cooperative proof-search budgets.
//!
//! A [`ProofBudget`] bounds one verification session by wall-clock time
//! and/or explored-path count, and doubles as a cancellation token. The
//! provers poll it at every path they explore (the same cadence as
//! [`crate::stats`]'s path counter), so a stuck property degrades to a
//! reported [`crate::Outcome::Timeout`] instead of hanging the batch.
//!
//! The checks are *cooperative*: nothing is interrupted mid-obligation.
//! Each poll is one atomic load plus (when a deadline is set) one
//! monotonic-clock read, so the overhead is negligible next to a solver
//! query. Budgets deliberately live outside [`crate::ProverOptions`]'s
//! certificate fingerprint: like `jobs`, they can only stop a search
//! early, never change what a completed search proves.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::{Clock, RealClock};

/// Why a budgeted proof search was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// [`ProofBudget::cancel`] was called (e.g. ctrl-C or a supervisor).
    Cancelled,
    /// The wall-clock deadline passed.
    WallClock,
    /// The explored-path allowance ran out.
    Nodes,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::WallClock => write!(f, "wall-clock budget exhausted"),
            BudgetExceeded::Nodes => write!(f, "node budget exhausted"),
        }
    }
}

/// A shared wall-clock / node budget and cancellation token for one
/// verification session.
///
/// Clone an `Arc<ProofBudget>` into [`crate::ProverOptions::budget`] to
/// bound every proof attempt of a session collectively: the node counter
/// and the deadline are session-wide, not per-property, so a session that
/// exhausts its budget fails *fast* on the remaining properties instead of
/// burning the same allowance again on each.
#[derive(Debug)]
pub struct ProofBudget {
    clock: Arc<dyn Clock>,
    deadline_ns: Option<u64>,
    max_nodes: Option<u64>,
    nodes: AtomicU64,
    cancelled: AtomicBool,
}

impl ProofBudget {
    /// A budget with the given limits; `None` means unlimited on that
    /// axis. Deadlines are measured on the machine's monotonic clock; use
    /// [`ProofBudget::new_with_clock`] to measure simulated time instead.
    pub fn new(wall: Option<Duration>, max_nodes: Option<u64>) -> Self {
        Self::new_with_clock(RealClock::shared(), wall, max_nodes)
    }

    /// A budget whose wall-clock axis reads `clock`. Under a
    /// [`crate::clock::VirtualClock`] the deadline becomes a deterministic
    /// function of how many times the provers poll the budget, so the
    /// same seed and budget yield the same timeout set on every machine.
    pub fn new_with_clock(
        clock: Arc<dyn Clock>,
        wall: Option<Duration>,
        max_nodes: Option<u64>,
    ) -> Self {
        let deadline_ns = wall.map(|d| {
            clock
                .now_ns()
                .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        });
        ProofBudget {
            clock,
            deadline_ns,
            max_nodes,
            nodes: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// An unlimited budget that still works as a cancellation token.
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// Requests cooperative cancellation: every prover polling this budget
    /// stops at its next path boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`ProofBudget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Paths charged against this budget so far.
    pub fn nodes_used(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Charges one explored path and reports whether the budget still
    /// holds. Called by the provers at every path boundary.
    pub fn tick(&self) -> Result<(), BudgetExceeded> {
        let used = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        self.check_with_nodes(used)
    }

    /// Checks the budget without charging a node (used between phases,
    /// e.g. before starting the next property of a batch).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        self.check_with_nodes(self.nodes.load(Ordering::Relaxed))
    }

    fn check_with_nodes(&self, used: u64) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(max) = self.max_nodes {
            if used > max {
                return Err(BudgetExceeded::Nodes);
            }
        }
        if let Some(deadline_ns) = self.deadline_ns {
            if self.clock.now_ns() >= deadline_ns {
                return Err(BudgetExceeded::WallClock);
            }
        }
        Ok(())
    }
}

/// Marker prefix on [`crate::ProofFailure::reason`] for budget-induced
/// stops; [`crate::prove_with_cache`] uses it to classify the result as
/// [`crate::Outcome::Timeout`] rather than a genuine proof failure.
pub(crate) const BUDGET_REASON_PREFIX: &str = "proof-search budget exhausted";

/// Whether a failure was manufactured by [`tick_path`] (as opposed to a
/// genuinely unprovable obligation).
pub(crate) fn is_budget_failure(failure: &crate::ProofFailure) -> bool {
    failure.reason.starts_with(BUDGET_REASON_PREFIX)
}

/// Whether a budget failure was specifically an explicit cancellation
/// (as opposed to an exhausted wall-clock or node allowance). The reason
/// embeds [`BudgetExceeded`]'s Display, so `(cancelled)` appears exactly
/// when [`ProofBudget::cancel`] tripped the search.
pub(crate) fn is_cancel_failure(failure: &crate::ProofFailure) -> bool {
    is_budget_failure(failure) && failure.reason.contains("(cancelled)")
}

/// Records one explored path and charges it against the session budget,
/// if any. Every prover path loop calls this; the `Err` unwinds the
/// search like an ordinary unprovable obligation and is re-classified as
/// a timeout at the [`crate::prove_with_cache`] boundary.
pub(crate) fn tick_path(
    options: &crate::ProverOptions,
    location: &str,
) -> Result<(), crate::ProofFailure> {
    crate::stats::note_path();
    if let Some(budget) = &options.budget {
        if let Err(why) = budget.tick() {
            return Err(crate::ProofFailure {
                location: location.to_owned(),
                reason: format!("{BUDGET_REASON_PREFIX} ({why})"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = ProofBudget::unlimited();
        for _ in 0..10_000 {
            assert_eq!(b.tick(), Ok(()));
        }
    }

    #[test]
    fn node_budget_trips_after_allowance() {
        let b = ProofBudget::new(None, Some(3));
        assert_eq!(b.tick(), Ok(()));
        assert_eq!(b.tick(), Ok(()));
        assert_eq!(b.tick(), Ok(()));
        assert_eq!(b.tick(), Err(BudgetExceeded::Nodes));
        // Exhaustion is sticky: later ticks keep failing.
        assert_eq!(b.tick(), Err(BudgetExceeded::Nodes));
        assert_eq!(b.check(), Err(BudgetExceeded::Nodes));
    }

    #[test]
    fn zero_wall_budget_trips_immediately() {
        let b = ProofBudget::new(Some(Duration::from_millis(0)), None);
        assert_eq!(b.tick(), Err(BudgetExceeded::WallClock));
    }

    #[test]
    fn virtual_clock_budget_trips_after_a_fixed_poll_count() {
        use crate::clock::VirtualClock;
        // 1µs per poll, 10µs budget: construction reads the clock once,
        // so exactly 9 polls pass and the 10th trips — on any machine,
        // any number of times.
        let trip_poll = |_| {
            let b = ProofBudget::new_with_clock(
                Arc::new(VirtualClock::new(1_000)),
                Some(Duration::from_micros(10)),
                None,
            );
            let mut polls = 0u64;
            while b.tick().is_ok() {
                polls += 1;
            }
            polls
        };
        let first = trip_poll(0);
        assert_eq!(first, 9);
        assert!((1..5).map(trip_poll).all(|p| p == first));
    }

    #[test]
    fn cancellation_wins_over_other_axes() {
        let b = ProofBudget::new(Some(Duration::from_millis(0)), Some(0));
        b.cancel();
        assert_eq!(b.tick(), Err(BudgetExceeded::Cancelled));
    }
}
