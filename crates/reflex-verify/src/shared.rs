//! Primitives shared by the prover and the certificate checker.
//!
//! Everything here is *judgment-level*: given a solver context, decide
//! whether a conditional match is refuted, entailed, etc. The prover layers
//! search heuristics on top; the checker uses these primitives to validate
//! the specific claims a certificate makes.

use std::collections::BTreeMap;

use reflex_ast::{ActionPat, Cmd, CompPat, Handler, PatField};
use reflex_symbolic::{unify_action, Solver, SymAction, SymBindings, Term, Unify};
use reflex_typeck::CheckedProgram;

/// Whether the side conditions of a conditional match are *refuted*: at
/// least one condition is entailed to be false, so the match can never
/// actually occur.
pub fn conds_refuted(solver: &Solver, conds: &[(Term, bool)]) -> bool {
    conds.iter().any(|(t, pol)| solver.entails(t, !pol))
}

/// Whether all side conditions are entailed: the match definitely occurs.
pub fn conds_entailed(solver: &Solver, conds: &[(Term, bool)]) -> bool {
    conds.iter().all(|(t, pol)| solver.entails(t, *pol))
}

/// A possible trigger instance: the pattern unifies with the action at
/// `index` under `bindings`, subject to `conds`.
#[derive(Debug, Clone)]
pub struct TriggerInstance {
    /// Index into the action sequence.
    pub index: usize,
    /// Minimal substitution for the pattern's property variables.
    pub bindings: SymBindings,
    /// Equality side-conditions of the match.
    pub conds: Vec<(Term, bool)>,
}

/// Enumerates all actions that could match `pattern` (skipping definite
/// non-matches), starting from the substitution `sigma0`.
pub fn trigger_instances(
    pattern: &ActionPat,
    actions: &[&SymAction],
    sigma0: &SymBindings,
) -> Vec<TriggerInstance> {
    let mut out = Vec::new();
    for (index, act) in actions.iter().enumerate() {
        match unify_action(pattern, act, sigma0) {
            Unify::Never => {}
            Unify::Match {
                bindings,
                conditions: conds,
            } => out.push(TriggerInstance {
                index,
                bindings,
                conds,
            }),
        }
    }
    out
}

/// Whether `actions[index]` definitely matches `pattern` under `bindings`
/// given the solver context (i.e. it unifies and all side conditions are
/// entailed).
pub fn definite_match(
    solver: &Solver,
    pattern: &ActionPat,
    action: &SymAction,
    bindings: &SymBindings,
) -> bool {
    match unify_action(pattern, action, bindings) {
        Unify::Never => false,
        Unify::Match {
            conditions: conds, ..
        } => conds_entailed(solver, &conds),
    }
}

/// Whether `action` definitely does **not** match `pattern` under
/// `bindings` given the solver context: either unification fails outright
/// or some side condition is refuted.
pub fn definite_no_match(
    solver: &Solver,
    pattern: &ActionPat,
    action: &SymAction,
    bindings: &SymBindings,
) -> bool {
    match unify_action(pattern, action, bindings) {
        Unify::Never => true,
        Unify::Match {
            conditions: conds, ..
        } => conds_refuted(solver, &conds),
    }
}

/// The syntactic-skip check (§6.4): can the exchange for `(ctype, msg)`
/// emit *any* action unifiable with `pattern`?
///
/// Conservative: `true` means "possibly"; `false` is a proof that no
/// action of this exchange (including the implicit `Select`/`Recv`
/// prefix) can match, so the case is closed without symbolic evaluation.
pub fn case_can_emit_match(
    checked: &CheckedProgram,
    ctype: &str,
    msg: &str,
    pattern: &ActionPat,
) -> bool {
    let ctype_compat = |pat_ctype: &Option<String>, actual: &str| -> bool {
        pat_ctype.as_deref().is_none_or(|c| c == actual)
    };
    // Prefix actions.
    match pattern {
        ActionPat::Select { comp } if ctype_compat(&comp.ctype, ctype) => return true,
        ActionPat::Recv {
            comp, msg: pmsg, ..
        } if pmsg == msg && ctype_compat(&comp.ctype, ctype) => return true,
        _ => {}
    }
    // Handler body actions, tracking the component type of each variable
    // in scope so `send` targets can be resolved.
    let Some(handler) = checked.program().handler(ctype, msg) else {
        return false; // implicit Nop handler emits nothing
    };
    let mut scope: BTreeMap<String, String> = BTreeMap::new();
    for (name, info) in checked.globals() {
        if let Some(ct) = &info.comp_type {
            scope.insert(name.clone(), ct.clone());
        }
    }
    scope.insert(Handler::SENDER.to_owned(), ctype.to_owned());
    body_can_emit(&handler.body, pattern, &mut scope)
}

fn body_can_emit(cmd: &Cmd, pattern: &ActionPat, scope: &mut BTreeMap<String, String>) -> bool {
    let ctype_compat = |pat_ctype: &Option<String>, actual: Option<&str>| -> bool {
        match (pat_ctype, actual) {
            (None, _) => true,
            (Some(_), None) => true, // unknown target: be conservative
            (Some(p), Some(a)) => p == a,
        }
    };
    match cmd {
        Cmd::Nop | Cmd::Assign(..) => false,
        Cmd::Block(cs) => cs.iter().any(|c| body_can_emit(c, pattern, scope)),
        Cmd::If {
            then_branch,
            else_branch,
            ..
        } => {
            // Branch binders are block-local; a fresh scope clone per
            // branch keeps the tracking precise.
            let mut t = scope.clone();
            let mut e = scope.clone();
            body_can_emit(then_branch, pattern, &mut t)
                || body_can_emit(else_branch, pattern, &mut e)
        }
        Cmd::Send { target, msg, .. } => match pattern {
            ActionPat::Send {
                comp, msg: pmsg, ..
            } if pmsg == msg => {
                let actual = match target {
                    reflex_ast::Expr::Var(x) => scope.get(x).map(String::as_str),
                    _ => None,
                };
                ctype_compat(&comp.ctype, actual)
            }
            _ => false,
        },
        Cmd::Spawn { binder, ctype, .. } => {
            let hit = matches!(
                pattern,
                ActionPat::Spawn { comp } if ctype_compat(&comp.ctype, Some(ctype))
            );
            scope.insert(binder.clone(), ctype.clone());
            hit
        }
        Cmd::Call { func, .. } => {
            matches!(pattern, ActionPat::Call { func: pf, .. } if pf == func)
        }
        Cmd::Broadcast { ctype, msg, .. } => match pattern {
            ActionPat::Send {
                comp, msg: pmsg, ..
            } => pmsg == msg && comp.ctype.as_deref().is_none_or(|c| c == ctype),
            _ => false,
        },
        Cmd::Lookup {
            ctype,
            binder,
            found,
            missing,
            ..
        } => {
            let mut f = scope.clone();
            f.insert(binder.clone(), ctype.clone());
            let mut m = scope.clone();
            body_can_emit(found, pattern, &mut f) || body_can_emit(missing, pattern, &mut m)
        }
    }
}

/// Replaces pattern variables whose binding is a literal with that literal.
pub fn specialize_pattern(pat: &ActionPat, bindings: &SymBindings) -> ActionPat {
    let field = |f: &PatField| -> PatField {
        match f {
            PatField::Var(v) => match bindings.get(v) {
                Some(Term::Lit(val)) => PatField::Lit(val.clone()),
                _ => f.clone(),
            },
            other => other.clone(),
        }
    };
    let comp = |c: &CompPat| -> CompPat {
        CompPat {
            ctype: c.ctype.clone(),
            config: c
                .config
                .as_ref()
                .map(|fields| fields.iter().map(field).collect()),
        }
    };
    match pat {
        ActionPat::Select { comp: c } => ActionPat::Select { comp: comp(c) },
        ActionPat::Spawn { comp: c } => ActionPat::Spawn { comp: comp(c) },
        ActionPat::Recv { comp: c, msg, args } => ActionPat::Recv {
            comp: comp(c),
            msg: msg.clone(),
            args: args.iter().map(field).collect(),
        },
        ActionPat::Send { comp: c, msg, args } => ActionPat::Send {
            comp: comp(c),
            msg: msg.clone(),
            args: args.iter().map(field).collect(),
        },
        ActionPat::Call { func, args, result } => ActionPat::Call {
            func: func.clone(),
            args: args
                .as_ref()
                .map(|fields| fields.iter().map(field).collect()),
            result: field(result),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_ast::build::ProgramBuilder;
    use reflex_ast::{CompPat, Expr, PatField, Ty};

    fn program() -> CheckedProgram {
        let p = ProgramBuilder::new("t")
            .component("C", "c.py", [])
            .component("D", "d.py", [])
            .message("M", [Ty::Str])
            .message("N", [])
            .init_spawn("c0", "C", [])
            .handler("C", "M", ["s"], |h| {
                h.spawn("d", "D", []);
                h.send(Expr::var("d"), "N", []);
            })
            .finish();
        reflex_typeck::check(&p).expect("well-formed")
    }

    #[test]
    fn syntactic_skip_sees_prefix_and_body() {
        let checked = program();
        let send_n_to_d = ActionPat::Send {
            comp: CompPat::of_type("D"),
            msg: "N".into(),
            args: vec![],
        };
        assert!(case_can_emit_match(&checked, "C", "M", &send_n_to_d));
        // The same send pattern cannot arise from the (implicit) D:N case.
        assert!(!case_can_emit_match(&checked, "D", "N", &send_n_to_d));

        // Recv prefix matches only the triggering message/component type.
        let recv_m_from_c = ActionPat::Recv {
            comp: CompPat::of_type("C"),
            msg: "M".into(),
            args: vec![PatField::Any],
        };
        assert!(case_can_emit_match(&checked, "C", "M", &recv_m_from_c));
        assert!(!case_can_emit_match(&checked, "C", "N", &recv_m_from_c));
        assert!(!case_can_emit_match(&checked, "D", "M", &recv_m_from_c));

        // Spawn pattern.
        let spawn_d = ActionPat::Spawn {
            comp: CompPat::of_type("D"),
        };
        assert!(case_can_emit_match(&checked, "C", "M", &spawn_d));
        assert!(!case_can_emit_match(&checked, "C", "N", &spawn_d));

        // A send of N to a C component never occurs (target is a D).
        let send_n_to_c = ActionPat::Send {
            comp: CompPat::of_type("C"),
            msg: "N".into(),
            args: vec![],
        };
        assert!(!case_can_emit_match(&checked, "C", "M", &send_n_to_c));
    }
}
