//! Proof certificates.
//!
//! A successful proof search emits a [`Certificate`]: an explicit record of
//! the complete inductive argument — one justification per obligation, per
//! symbolic path, per exchange case, plus every auxiliary invariant used.
//! Certificates play the role of Coq proof terms in the paper's
//! architecture: the search is untrusted; [`crate::check_certificate`]
//! independently re-derives each claimed step (re-running symbolic
//! evaluation and the solver) and rejects anything that does not check.

use std::fmt;

use reflex_ast::fingerprint::{Fp, FpHasher};
use reflex_ast::{ActionPat, Ty};
use reflex_typeck::CheckedProgram;

use crate::canon::Guard;

/// The dependency set of a certificate: the canonical fingerprints of
/// everything its induction actually consulted.
///
/// Recorded at prove time (against the program the proof ran over), the
/// dependency set lets the incremental planner decide — given only the
/// previous certificates and the *new* program — whether a certificate can
/// be reused wholesale, patched per-case, or must be re-proved. It
/// supersedes the old `certificate_is_local` heuristic: instead of a
/// yes/no "is this reusable at all", each certificate carries exactly which
/// handler cases its proof depends on and how.
///
/// The dependency set is an *untrusted* planning artifact, like the rest of
/// the certificate: every reused certificate is still re-validated by
/// [`crate::check_certificate`] against the new program, so a wrong or
/// stale dependency set can cost a missed reuse or a failed check — never a
/// wrong "Proved".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DepSet {
    /// Fingerprint of the declaration group (components, messages, state,
    /// init). Declarations shape the case split, the base cases and the
    /// pre-state, so every proof depends on them.
    pub decls: Fp,
    /// Fingerprint of the property statement being certified.
    pub property: Fp,
    /// Fingerprint of the abstraction's interval range assumptions, which
    /// are derived from *all* exchange paths and injected into every
    /// inductive-step solver context. If they change, per-case
    /// justifications may be re-derived differently even in untouched
    /// handlers, so any reuse must re-prove.
    pub ranges: Fp,
    /// The `(ctype, msg, fingerprint)` of every handler case whose symbolic
    /// paths the proof analyzed. For certificates with auxiliary invariants
    /// or lemmas — and for NI certificates — this is *every* case, recorded
    /// explicitly (those arguments quantify over all handlers).
    pub handlers: Vec<(String, String, Fp)>,
    /// Handler cases the proof discharged purely syntactically (the §6.4
    /// skip: the handler cannot emit an action unifiable with the trigger).
    /// These cases are reusable under *any* edit that preserves the
    /// syntactic impossibility; the planner re-runs the syntactic check
    /// against the new program instead of comparing fingerprints.
    pub syntactic_only: Vec<(String, String)>,
}

impl DepSet {
    /// Computes the dependency set of `cert`, proved over `checked` with
    /// range-assumption fingerprint `ranges`.
    pub fn compute(checked: &CheckedProgram, ranges: Fp, cert: &Certificate) -> DepSet {
        let fps = checked.fingerprints();
        let property = fps.property(cert.property()).unwrap_or_default();
        let mut tracked = std::collections::BTreeSet::new();
        let mut syntactic = std::collections::BTreeSet::new();
        match cert {
            Certificate::Trace(t) if t.invariants.is_empty() && t.lemmas.is_empty() => {
                for case in &t.cases {
                    let key = (case.ctype.clone(), case.msg.clone());
                    if case.skipped {
                        syntactic.insert(key);
                    } else {
                        tracked.insert(key);
                    }
                }
                // A case skipped in one world but analyzed in another (not
                // possible today — the skip is world-independent — but cheap
                // to guard) counts as analyzed.
                for key in &tracked {
                    syntactic.remove(key);
                }
            }
            // Invariants, lemmas and the NI conditions quantify over every
            // handler: record them all as fingerprint-tracked.
            _ => {
                for (ctype, msg) in fps.handlers.keys() {
                    tracked.insert((ctype.clone(), msg.clone()));
                }
            }
        }
        let handlers = tracked
            .into_iter()
            .map(|(ctype, msg)| {
                let fp = fps.handler(&ctype, &msg).unwrap_or_default();
                (ctype, msg, fp)
            })
            .collect();
        DepSet {
            decls: fps.decls,
            property,
            ranges,
            handlers,
            syntactic_only: syntactic.into_iter().collect(),
        }
    }

    /// A combined fingerprint of the whole dependency set (used by the
    /// proof store's integrity line in diagnostics).
    pub fn digest(&self) -> Fp {
        let mut h = FpHasher::new();
        h.write(&self.decls.0.to_le_bytes());
        h.write(&self.property.0.to_le_bytes());
        h.write(&self.ranges.0.to_le_bytes());
        for (c, m, fp) in &self.handlers {
            h.write_str(c);
            h.write_str(m);
            h.write(&fp.0.to_le_bytes());
        }
        for (c, m) in &self.syntactic_only {
            h.write_str(c);
            h.write_str(m);
        }
        h.finish()
    }
}

/// How one trigger obligation is discharged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Justification {
    /// The trigger's match side-conditions contradict the path condition:
    /// this instance can never actually fire.
    Refuted,
    /// An action inside the same exchange discharges the obligation; the
    /// index points into the exchange's appended actions. For `ImmBefore`
    /// the witness is at `trigger_index - 1`, for `ImmAfter` at
    /// `trigger_index + 1`, for `Enables` strictly before, for `Ensures`
    /// strictly after.
    Witness {
        /// Index of the witnessing action.
        index: usize,
    },
    /// (`Enables` only) The prior trace contains the required action, by
    /// the auxiliary invariant with this id.
    Invariant {
        /// Index into [`TraceCert::invariants`].
        inv_id: usize,
    },
    /// (`Disables` only) No earlier action can match the forbidden
    /// pattern: matches within the exchange are refuted (re-derived by the
    /// checker) and the prior trace is clean per `prior`.
    NoMatch {
        /// Why the prior trace contains no forbidden action.
        prior: NegPrior,
    },
    /// (`Enables` only) The obligation's variables are pinned to the
    /// configuration of a component that *exists* (the sender, or a
    /// component found by `lookup`). Every live component corresponds to a
    /// `Spawn` action in the trace, and the lemma — itself a proved
    /// `Enables` trace property — shows that such spawns are always
    /// preceded by the required action.
    ViaCompOrigin {
        /// Which component on this path supplies the spawn witness.
        origin: CompOriginRef,
        /// Index into [`TraceCert::lemmas`], or `None` when the obligation
        /// pattern *is* a spawn pattern matching the origin component —
        /// the origin's own `Spawn` action is then the required witness.
        lemma_id: Option<usize>,
    },
}

/// A reference to a component whose existence justifies a spawn witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompOriginRef {
    /// The component that sent the message triggering the handler.
    Sender,
    /// The `index`-th `lookup`-found component of the path.
    Lookup {
        /// Zero-based index among the path's successful lookups.
        index: usize,
    },
}

/// Why a *prior* (pre-exchange) trace contains no action matching a
/// forbidden pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegPrior {
    /// The prior trace is empty (base case of the induction).
    EmptyTrace,
    /// A negative auxiliary invariant covers it.
    Invariant {
        /// Index into [`TraceCert::invariants`].
        inv_id: usize,
    },
    /// A `lookup` on this path found *no* component of the forbidden
    /// spawn's type satisfying a predicate that covers the pattern: since
    /// components never die, a prior matching `Spawn` would have left a
    /// live component for the lookup to find.
    MissedLookup {
        /// Index into the path's missed lookups.
        lookup_index: usize,
    },
}

/// Discharges for all trigger obligations along one symbolic path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathCert {
    /// `(trigger index into the appended actions, justification)`, in
    /// trigger order. Actions that cannot unify with the trigger at all do
    /// not appear.
    pub obligations: Vec<(usize, Justification)>,
}

/// One `(component type, message type)` case of the main induction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseCert {
    /// Component type of the sender.
    pub ctype: String,
    /// Message type received.
    pub msg: String,
    /// The case was discharged by the syntactic-skip check (§6.4): the
    /// handler cannot emit any action unifiable with the trigger.
    pub skipped: bool,
    /// Per-path justifications (empty if skipped).
    pub paths: Vec<PathCert>,
}

/// Justification of one path (or one base case) of an auxiliary
/// invariant's induction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvPathJust {
    /// The guard cannot hold in the post-state of this path.
    GuardUnsat,
    /// (positive) The guard already held in the pre-state, so the
    /// induction hypothesis supplies the witness.
    Preserved,
    /// (positive) An action of this exchange witnesses the pattern; index
    /// into the appended actions.
    Witness {
        /// Index of the witnessing action.
        index: usize,
    },
    /// (positive) The pre-state satisfies another proved invariant's guard,
    /// which supplies the witness in the prior trace.
    ViaInvariant {
        /// Index into [`TraceCert::invariants`].
        inv_id: usize,
    },
    /// (negative) No action of this exchange can match the pattern
    /// (re-derived by the checker) and the prior trace is clean per
    /// `prior`.
    NegativeOk {
        /// Why the prior trace is clean.
        prior: NegPriorStep,
    },
}

/// Why the prior trace of an invariant induction step is clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegPriorStep {
    /// The guard held in the pre-state: the induction hypothesis applies.
    Ih,
    /// A (different) negative invariant whose guard the pre-state
    /// provably satisfies.
    Invariant {
        /// Index into [`TraceCert::invariants`].
        inv_id: usize,
    },
    /// The prior trace is empty (base case).
    EmptyTrace,
}

/// One case of an auxiliary invariant's induction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvCaseCert {
    /// Component type of the sender.
    pub ctype: String,
    /// Message type received.
    pub msg: String,
    /// Discharged by the syntactic-skip check *and* untouched guard
    /// variables.
    pub skipped: bool,
    /// Per-path justifications (empty if skipped).
    pub paths: Vec<InvPathJust>,
}

/// A proved auxiliary invariant: `∀ vars, guard(state) ⇒ trace (contains /
/// does not contain) an action matching pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantCert {
    /// Quantified variable names and types.
    pub vars: Vec<(String, Ty)>,
    /// Hypothesis over the kernel state (canonical symbols).
    pub guard: Guard,
    /// The action pattern (property variables refer to `vars`).
    pub pattern: ActionPat,
    /// `true`: the trace *contains* a match; `false`: it contains none.
    pub positive: bool,
    /// Base-case justifications, one per init path.
    pub base: Vec<InvPathJust>,
    /// Inductive cases.
    pub cases: Vec<InvCaseCert>,
}

impl fmt::Display for InvariantCert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let polarity = if self.positive { "∃" } else { "∄" };
        write!(f, "∀")?;
        for (i, (v, t)) in self.vars.iter().enumerate() {
            write!(f, "{}{v}: {t}", if i > 0 { ", " } else { " " })?;
        }
        write!(f, ". {} ⇒ {polarity} action ≈ {}", self.guard, self.pattern)
    }
}

/// Certificate for a trace property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCert {
    /// Property name.
    pub property: String,
    /// Base cases, one per init path.
    pub base: Vec<PathCert>,
    /// Inductive cases, one per (component type, message type).
    pub cases: Vec<CaseCert>,
    /// Auxiliary invariants referenced by id.
    pub invariants: Vec<InvariantCert>,
    /// Auxiliary `Enables` lemmas referenced by [`Justification::ViaCompOrigin`].
    pub lemmas: Vec<LemmaCert>,
    /// What the proof consulted (empty for nested lemma certificates —
    /// dependency tracking applies to top-level certificates, and a lemma's
    /// dependencies are subsumed by its parent's, which records all
    /// handlers whenever lemmas exist).
    pub deps: DepSet,
}

/// An auxiliary trace lemma: `∀ vars, [a] Enables [Spawn(b)]` with its own
/// full inductive certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LemmaCert {
    /// Quantified variables.
    pub vars: Vec<(String, Ty)>,
    /// The enabling pattern.
    pub a: ActionPat,
    /// The spawn pattern whose occurrences `a` enables.
    pub b: ActionPat,
    /// The lemma's own certificate (its `property` field is a synthetic
    /// name; it proves `a Enables b`).
    pub cert: TraceCert,
}

/// Sender-labeling summary for one NI case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiCaseCert {
    /// Component type of the sender.
    pub ctype: String,
    /// Message type received.
    pub msg: String,
    /// Number of paths checked under the "sender is low" assumption
    /// (`NIlo`), or `None` if the sender is provably high.
    pub low_paths: Option<usize>,
    /// Number of paths checked under the "sender is high" assumption
    /// (`NIhi`), or `None` if the sender can never be high.
    pub high_paths: Option<usize>,
}

/// Certificate for a non-interference property (Theorem 1: the `NIlo` and
/// `NIhi` sufficient conditions hold for every handler case).
///
/// The NI analysis is deterministic given the program and labeling, so the
/// certificate records the case inventory; the checker re-runs the full
/// analysis and verifies the inventory matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiCert {
    /// Property name.
    pub property: String,
    /// Per-case summaries.
    pub cases: Vec<NiCaseCert>,
    /// What the proof consulted: always every handler (the NIlo/NIhi
    /// conditions are checked case by case over all of them).
    pub deps: DepSet,
}

/// A proof certificate for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// A trace-property certificate.
    Trace(TraceCert),
    /// A non-interference certificate.
    NonInterference(NiCert),
}

impl Certificate {
    /// The name of the certified property.
    pub fn property(&self) -> &str {
        match self {
            Certificate::Trace(c) => &c.property,
            Certificate::NonInterference(c) => &c.property,
        }
    }

    /// The certificate's dependency set.
    pub fn deps(&self) -> &DepSet {
        match self {
            Certificate::Trace(c) => &c.deps,
            Certificate::NonInterference(c) => &c.deps,
        }
    }

    /// Replaces the certificate's dependency set (done once, by the
    /// top-level prover entry points, after the proof search returns).
    pub fn set_deps(&mut self, deps: DepSet) {
        match self {
            Certificate::Trace(c) => c.deps = deps,
            Certificate::NonInterference(c) => c.deps = deps,
        }
    }

    /// Total number of discharged obligations (a rough proof-size
    /// measure, reported by the benchmark harness).
    pub fn obligation_count(&self) -> usize {
        match self {
            Certificate::Trace(c) => {
                let main: usize = c
                    .base
                    .iter()
                    .chain(c.cases.iter().flat_map(|k| k.paths.iter()))
                    .map(|p| p.obligations.len())
                    .sum();
                let invs: usize = c
                    .invariants
                    .iter()
                    .map(|inv| {
                        inv.base.len()
                            + inv
                                .cases
                                .iter()
                                .map(|k| if k.skipped { 1 } else { k.paths.len() })
                                .sum::<usize>()
                    })
                    .sum();
                let lemmas: usize = c
                    .lemmas
                    .iter()
                    .map(|l| Certificate::Trace(l.cert.clone()).obligation_count())
                    .sum();
                main + invs + lemmas
            }
            Certificate::NonInterference(c) => c
                .cases
                .iter()
                .map(|k| k.low_paths.unwrap_or(0) + k.high_paths.unwrap_or(0))
                .sum(),
        }
    }
}

impl Certificate {
    /// Renders a human-readable proof sketch: how many cases were skipped
    /// or analyzed, which justifications discharged the obligations, and
    /// the full statements of every synthesized invariant and lemma.
    pub fn render_proof_sketch(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        match self {
            Certificate::Trace(t) => {
                let skipped = t.cases.iter().filter(|c| c.skipped).count();
                let _ = writeln!(s, "proof of `{}` by induction over BehAbs:", t.property);
                let _ = writeln!(
                    s,
                    "  base: {} init path(s); step: {} case(s) ({} closed by the syntactic skip)",
                    t.base.len(),
                    t.cases.len(),
                    skipped
                );
                let mut refuted = 0usize;
                let mut witness = 0usize;
                let mut by_inv = 0usize;
                let mut no_match = 0usize;
                let mut by_origin = 0usize;
                for path in t
                    .base
                    .iter()
                    .chain(t.cases.iter().flat_map(|c| c.paths.iter()))
                {
                    for (_, just) in &path.obligations {
                        match just {
                            Justification::Refuted => refuted += 1,
                            Justification::Witness { .. } => witness += 1,
                            Justification::Invariant { .. } => by_inv += 1,
                            Justification::NoMatch { .. } => no_match += 1,
                            Justification::ViaCompOrigin { .. } => by_origin += 1,
                        }
                    }
                }
                let _ = writeln!(
                    s,
                    "  obligations: {refuted} refuted, {witness} local witnesses, {by_inv} via invariants, {no_match} prior-trace exclusions, {by_origin} via component origins"
                );
                for (i, inv) in t.invariants.iter().enumerate() {
                    let _ = writeln!(s, "  invariant #{i}: {inv}");
                }
                for (i, lemma) in t.lemmas.iter().enumerate() {
                    let _ = writeln!(
                        s,
                        "  lemma #{i}: ∀…, [{}] Enables [{}] (own certificate: {} obligations)",
                        lemma.a,
                        lemma.b,
                        Certificate::Trace(lemma.cert.clone()).obligation_count()
                    );
                }
            }
            Certificate::NonInterference(n) => {
                let _ = writeln!(
                    s,
                    "proof of `{}` via the NIlo/NIhi sufficient conditions (Theorem 1):",
                    n.property
                );
                for case in &n.cases {
                    let lo = case
                        .low_paths
                        .map(|k| format!("NIlo over {k} path(s)"))
                        .unwrap_or_else(|| "sender always high".into());
                    let hi = case
                        .high_paths
                        .map(|k| format!("NIhi over {k} path(s)"))
                        .unwrap_or_else(|| "sender never high".into());
                    let _ = writeln!(s, "  case {}:{} — {lo}; {hi}", case.ctype, case.msg);
                }
            }
        }
        s
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::Trace(c) => {
                writeln!(
                    f,
                    "certificate for `{}`: {} base path(s), {} case(s), {} invariant(s), {} lemma(s)",
                    c.property,
                    c.base.len(),
                    c.cases.len(),
                    c.invariants.len(),
                    c.lemmas.len()
                )?;
                for inv in &c.invariants {
                    writeln!(f, "  invariant: {inv}")?;
                }
                Ok(())
            }
            Certificate::NonInterference(c) => {
                writeln!(
                    f,
                    "certificate for `{}`: NIlo/NIhi over {} case(s)",
                    c.property,
                    c.cases.len()
                )
            }
        }
    }
}
