//! Incremental-verification benchmark: replays a scripted 20-edit editing
//! session over the ssh and web-browser kernels through the on-disk proof
//! store, and compares it against re-proving every version from scratch.
//!
//! The script is chosen to exercise the whole reuse ladder:
//!
//! * **formatting edits** (comments) — canonical fingerprints are computed
//!   from the *parsed* program, so these are exact store hits;
//! * **reverts and repeated edits** — content addressing means an old
//!   program version's entries are still on disk, so flipping back (or
//!   re-applying yesterday's edit) reuses everything;
//! * **handler edits** — properties whose dependency sets avoid the edited
//!   handler reuse their certificates; local trace proofs over the edited
//!   handler are patched per-case; invariant-bearing and non-interference
//!   proofs re-prove;
//! * **property edits** — only the edited property re-proves.
//!
//! The run doubles as a regression guard: it panics unless the warm replay
//! re-proves strictly fewer properties than the cold one, reuses at least
//! 60% of property instances, and finishes in less wall-clock time.

use std::path::PathBuf;
use std::time::Instant;

use reflex_driver::{Event, MemorySink, NullSink, SessionConfig, VerifySession};
use reflex_verify::ProverOptions;

/// One scripted edit: a `replacen(find, replace, 1)` on the named kernel's
/// current source. Edits are cumulative within a kernel.
#[derive(Debug, Clone, Copy)]
pub struct EditStep {
    /// Which kernel the edit applies to (`"ssh"` or `"browser"`).
    pub kernel: &'static str,
    /// Short label for reports.
    pub label: &'static str,
    /// Exact substring to replace (must occur in the current source).
    pub find: &'static str,
    /// Replacement text.
    pub replace: &'static str,
}

/// What one replayed edit cost, warm (store-backed) vs. cold (scratch).
#[derive(Debug, Clone)]
pub struct IncrIteration {
    /// Kernel the edit applied to.
    pub kernel: &'static str,
    /// The edit's label.
    pub label: &'static str,
    /// Certificates reused wholesale.
    pub reused: usize,
    /// Certificates patched per-case.
    pub partial: usize,
    /// Properties re-proved from scratch.
    pub reproved: usize,
    /// Certificates served from the on-disk store.
    pub loaded: usize,
    /// Store-backed wall-clock, milliseconds.
    pub warm_ms: f64,
    /// Scratch `prove_all` wall-clock, milliseconds.
    pub cold_ms: f64,
}

/// The whole replayed session.
#[derive(Debug, Clone)]
pub struct IncrBench {
    /// Per-edit measurements, in script order.
    pub iterations: Vec<IncrIteration>,
    /// Worker threads used for re-proving.
    pub jobs: usize,
    /// Wall-clock of the initial store-priming verification of both base
    /// kernels (the cold first run every watch session pays), milliseconds.
    pub prime_ms: f64,
    /// Property instances across the replay (sum over edits).
    pub properties_total: usize,
    /// Cold re-proves (equals `properties_total` by construction).
    pub cold_reproved: usize,
    /// Warm re-proves.
    pub warm_reproved: usize,
    /// Warm wholesale reuses.
    pub warm_reused: usize,
    /// Warm per-case patches.
    pub warm_partial: usize,
    /// Certificates served from disk across the replay.
    pub warm_loaded: usize,
    /// `(reused + partial) / properties_total`.
    pub reuse_ratio: f64,
    /// Total cold wall-clock, milliseconds.
    pub cold_total_ms: f64,
    /// Total warm wall-clock, milliseconds.
    pub warm_total_ms: f64,
}

/// The scripted session: 10 ssh edits and 10 browser edits, interleaved
/// the way an engineer hops between two files.
pub fn edit_script() -> Vec<EditStep> {
    const SSH: [(&str, &str, &str); 10] = [
        (
            "ssh: strengthen PtyCreated guard",
            "if (auth_ok && user == auth_user) {\n      send(C, PtyHandle(user, fd));",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(C, PtyHandle(user, fd));",
        ),
        (
            "ssh: revert PtyCreated guard",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(C, PtyHandle(user, fd));",
            "if (auth_ok && user == auth_user) {\n      send(C, PtyHandle(user, fd));",
        ),
        (
            "ssh: comment PassOk handler",
            "  when Pass:PassOk(user) {",
            "  // The password daemon reports success.\n  when Pass:PassOk(user) {",
        ),
        (
            "ssh: rename LoginEnablesPty variable",
            "LoginEnablesPty: forall u: str.\n    [Recv(Pass(), PassOk(u))] Enables [Send(Term(), CreatePty(u))];",
            "LoginEnablesPty: forall w: str.\n    [Recv(Pass(), PassOk(w))] Enables [Send(Term(), CreatePty(w))];",
        ),
        (
            "ssh: revert property rename",
            "LoginEnablesPty: forall w: str.\n    [Recv(Pass(), PassOk(w))] Enables [Send(Term(), CreatePty(w))];",
            "LoginEnablesPty: forall u: str.\n    [Recv(Pass(), PassOk(u))] Enables [Send(Term(), CreatePty(u))];",
        ),
        (
            "ssh: strengthen PtyReq guard",
            "if (auth_ok && user == auth_user) {\n      send(T, CreatePty(user));",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(T, CreatePty(user));",
        ),
        (
            "ssh: revert PtyReq guard",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(T, CreatePty(user));",
            "if (auth_ok && user == auth_user) {\n      send(T, CreatePty(user));",
        ),
        (
            "ssh: re-apply PtyCreated guard",
            "if (auth_ok && user == auth_user) {\n      send(C, PtyHandle(user, fd));",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(C, PtyHandle(user, fd));",
        ),
        (
            "ssh: revert PtyCreated guard again",
            "if (auth_ok && user == auth_user && user != \"\") {\n      send(C, PtyHandle(user, fd));",
            "if (auth_ok && user == auth_user) {\n      send(C, PtyHandle(user, fd));",
        ),
        (
            "ssh: reword Term comment",
            "  // Forward the PTY file descriptor to the client, eliminating any\n  // post-authentication kernel overhead.",
            "  // Hand the PTY fd straight to the client: after authentication\n  // the kernel stays off the data path.",
        ),
    ];
    const BROWSER: [(&str, &str, &str); 10] = [
        (
            "browser: strengthen OpenSocket guard",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
            "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));",
        ),
        (
            "browser: revert OpenSocket guard",
            "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
        ),
        (
            "browser: comment NewTab handler",
            "  // The user opens a tab: allocate a fresh id.",
            "  // A user gesture opens a tab; mint a fresh id for it.",
        ),
        (
            "browser: re-apply OpenSocket guard",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
            "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));",
        ),
        (
            "browser: revert OpenSocket guard again",
            "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
        ),
        (
            "browser: OpenSocket blank-host guard",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
            "    if (host == sender.domain && host != \"about:blank\") {\n      send(N, Connect(host));",
        ),
        (
            "browser: revert blank-host guard",
            "    if (host == sender.domain && host != \"about:blank\") {\n      send(N, Connect(host));",
            "    if (host == sender.domain) {\n      send(N, Connect(host));",
        ),
        (
            "browser: rename SocketsOnlyToOwnDomain variable",
            "  SocketsOnlyToOwnDomain: forall h: str.\n    [Recv(Tab(h, _), OpenSocket(h))] Enables [Send(Net(), Connect(h))];",
            "  SocketsOnlyToOwnDomain: forall x: str.\n    [Recv(Tab(x, _), OpenSocket(x))] Enables [Send(Net(), Connect(x))];",
        ),
        (
            "browser: revert property rename",
            "  SocketsOnlyToOwnDomain: forall x: str.\n    [Recv(Tab(x, _), OpenSocket(x))] Enables [Send(Net(), Connect(x))];",
            "  SocketsOnlyToOwnDomain: forall h: str.\n    [Recv(Tab(h, _), OpenSocket(h))] Enables [Send(Net(), Connect(h))];",
        ),
        (
            "browser: reword Push comment",
            "  // Cookie processes push updates back to a tab of their domain.",
            "  // A cookie process forwards updates to a same-domain tab.",
        ),
    ];
    let mut script = Vec::with_capacity(20);
    for i in 0..10 {
        let (label, find, replace) = SSH[i];
        script.push(EditStep {
            kernel: "ssh",
            label,
            find,
            replace,
        });
        let (label, find, replace) = BROWSER[i];
        script.push(EditStep {
            kernel: "browser",
            label,
            find,
            replace,
        });
    }
    script
}

fn parse_and_check(name: &str, source: &str) -> reflex_typeck::CheckedProgram {
    let program = reflex_parser::parse_program(name, source)
        .unwrap_or_else(|e| panic!("scripted {name} edit must stay parseable: {e}"));
    reflex_typeck::check(&program)
        .unwrap_or_else(|e| panic!("scripted {name} edit must stay well-typed: {e}"))
}

fn assert_all_proved(context: &str, outcomes: &[(String, reflex_verify::Outcome)]) {
    for (name, outcome) in outcomes {
        assert!(
            outcome.is_proved(),
            "{context}: property {name} must stay provable under every scripted edit"
        );
    }
}

/// A store directory unique to this process, under the system temp dir.
fn scratch_store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("rx-incr-bench-{}", std::process::id()))
}

/// Replays the scripted session cold and warm, panicking unless the warm
/// replay beats the cold one (the CI regression guard).
///
/// The two passes model the two real workflows:
///
/// * **cold** — the engineer re-runs `rx verify` after every edit: a fresh
///   process each time, so the global entailment memo starts empty (it is
///   cleared before each cold iteration to simulate this), every property
///   is proved from scratch and every certificate is checked, exactly the
///   CLI's pipeline;
/// * **warm** — the engineer runs `rx watch` once: a single long-lived
///   session whose solver memo stays warm and whose proof store carries
///   certificates across edits.
///
/// Both passes replay exactly the same source versions.
///
/// # Panics
///
/// Panics if a scripted edit fails to apply, parse, type-check or verify,
/// or if any regression guard fails: warm re-proves must be strictly fewer
/// than cold, at least 60% of property instances must be reused or
/// patched, and the warm replay must take less wall-clock time.
pub fn run_incr(options: &ProverOptions, jobs: usize) -> IncrBench {
    // Precompute the source after each edit so both passes see identical
    // versions.
    let mut sources = std::collections::BTreeMap::new();
    sources.insert("ssh", reflex_kernels::kernels::ssh::SOURCE.to_owned());
    sources.insert(
        "browser",
        reflex_kernels::kernels::browser::SOURCE.to_owned(),
    );
    let base = sources.clone();
    let mut versions = Vec::with_capacity(20);
    for step in edit_script() {
        let source = sources.get_mut(step.kernel).expect("scripted kernel");
        assert!(
            source.contains(step.find),
            "edit '{}' does not apply: pattern not found",
            step.label
        );
        *source = source.replacen(step.find, step.replace, 1);
        versions.push((step, source.clone()));
    }

    // Both passes are deterministic, so each is run `REPEATS` times doing
    // identical work and every timing is the per-iteration minimum —
    // millisecond-scale single shots are too noisy for a CI guard.
    const REPEATS: usize = 3;

    // Cold pass: fresh `rx verify` process per edit — a brand-new
    // [`VerifySession`] (empty proof caches) proves and certificate-checks
    // everything, exactly the CLI's pipeline.
    let mut cold_times = vec![f64::INFINITY; versions.len()];
    for _ in 0..REPEATS {
        for ((step, source), best) in versions.iter().zip(cold_times.iter_mut()) {
            let checked = parse_and_check(step.kernel, source);
            reflex_symbolic::clear_entailment_memo();
            let cold_start = Instant::now();
            let session = VerifySession::new(SessionConfig {
                options: options.clone(),
                jobs: 1,
                ..SessionConfig::default()
            })
            .expect("cold session config is valid");
            let report = session
                .verify_checked(&checked, &NullSink)
                .unwrap_or_else(|e| panic!("{}: {e}", step.label));
            *best = best.min(cold_start.elapsed().as_secs_f64() * 1e3);
            assert_all_proved(step.label, &report.outcomes);
        }
    }

    // Warm pass: one long-lived watch session over a fresh store each
    // repeat. Clear the memo at session start so it inherits nothing from
    // the cold pass, then let it stay warm across iterations like a real
    // session would.
    let mut prime_ms = f64::INFINITY;
    let mut iterations: Vec<IncrIteration> = Vec::new();
    for repeat in 0..REPEATS {
        let dir = scratch_store_dir();
        let _ = std::fs::remove_dir_all(&dir);
        // One long-lived session over the proof store: the watch loop's
        // exact engine. Per-edit reuse classification and store traffic are
        // read back from the session's in-memory event sink.
        let session = VerifySession::new(SessionConfig {
            options: options.clone(),
            jobs,
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..SessionConfig::default()
        })
        .expect("temp proof store opens");
        reflex_symbolic::clear_entailment_memo();

        // Prime the store with the base versions — the cold first run
        // every watch session pays exactly once.
        let prime_start = Instant::now();
        for (name, source) in &base {
            let checked = parse_and_check(name, source);
            let report = session
                .verify_checked(&checked, &NullSink)
                .expect("priming run verifies");
            assert_all_proved("prime", &report.outcomes);
        }
        prime_ms = prime_ms.min(prime_start.elapsed().as_secs_f64() * 1e3);

        for (i, ((step, source), cold_ms)) in versions.iter().zip(&cold_times).enumerate() {
            let checked = parse_and_check(step.kernel, source);
            let sink = MemorySink::new();
            let warm_start = Instant::now();
            let report = session
                .verify_checked(&checked, &sink)
                .unwrap_or_else(|e| panic!("edit '{}' fails to verify: {e}", step.label));
            let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;
            assert_all_proved(step.label, &report.outcomes);

            let (mut reused, mut partial, mut reproved) = (0usize, 0usize, 0usize);
            for event in sink.properties() {
                if let Event::Property { reuse, .. } = event {
                    match reuse {
                        Some("full") => reused += 1,
                        Some("partial") => partial += 1,
                        Some("reproved") => reproved += 1,
                        _ => {}
                    }
                }
            }
            let it = IncrIteration {
                kernel: step.kernel,
                label: step.label,
                reused,
                partial,
                reproved,
                loaded: sink.counters().map_or(0, |c| c.store_loaded as usize),
                warm_ms,
                cold_ms: *cold_ms,
            };
            if repeat == 0 {
                iterations.push(it);
            } else {
                let prev = &mut iterations[i];
                // The replay is deterministic: every repeat must classify
                // every property identically.
                assert_eq!(
                    (prev.reused, prev.partial, prev.reproved),
                    (it.reused, it.partial, it.reproved),
                    "nondeterministic reuse classification for edit '{}'",
                    step.label
                );
                prev.warm_ms = prev.warm_ms.min(it.warm_ms);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    let properties_total: usize = iterations
        .iter()
        .map(|it| it.reused + it.partial + it.reproved)
        .sum();
    let warm_reproved: usize = iterations.iter().map(|it| it.reproved).sum();
    let warm_reused: usize = iterations.iter().map(|it| it.reused).sum();
    let warm_partial: usize = iterations.iter().map(|it| it.partial).sum();
    let warm_loaded: usize = iterations.iter().map(|it| it.loaded).sum();
    let cold_total_ms: f64 = iterations.iter().map(|it| it.cold_ms).sum();
    let warm_total_ms: f64 = iterations.iter().map(|it| it.warm_ms).sum();
    let reuse_ratio = (warm_reused + warm_partial) as f64 / properties_total as f64;

    // The regression guards: incremental verification must actually pay.
    // `RX_INCR_SKIP_GUARDS=1` disables them, to inspect a regressed
    // replay's full report without the panic cutting it short.
    if std::env::var_os("RX_INCR_SKIP_GUARDS").is_none() {
        assert!(
            warm_reproved < properties_total,
            "regression: warm replay re-proved everything ({warm_reproved} of {properties_total})"
        );
        assert!(
            reuse_ratio >= 0.60,
            "regression: reuse ratio {reuse_ratio:.2} fell below 0.60"
        );
        assert!(
            warm_total_ms < cold_total_ms,
            "regression: warm replay ({warm_total_ms:.1} ms) slower than cold ({cold_total_ms:.1} ms)"
        );
    }

    IncrBench {
        iterations,
        jobs,
        prime_ms,
        properties_total,
        cold_reproved: properties_total,
        warm_reproved,
        warm_reused,
        warm_partial,
        warm_loaded,
        reuse_ratio,
        cold_total_ms,
        warm_total_ms,
    }
}

/// Renders the replay as a text table.
pub fn render_incr(bench: &IncrBench) -> String {
    let mut out = String::new();
    out.push_str("Incremental replay: 20 scripted edits over ssh + browser\n");
    out.push_str(&format!(
        "(store primed with base kernels in {:.1} ms; jobs = {})\n\n",
        bench.prime_ms, bench.jobs
    ));
    out.push_str(&format!(
        "{:<48} {:>6} {:>7} {:>9} {:>9} {:>9}\n",
        "edit", "reused", "patched", "re-proved", "warm ms", "cold ms"
    ));
    for it in &bench.iterations {
        out.push_str(&format!(
            "{:<48} {:>6} {:>7} {:>9} {:>9.1} {:>9.1}\n",
            it.label, it.reused, it.partial, it.reproved, it.warm_ms, it.cold_ms
        ));
    }
    out.push_str(&format!(
        "\ntotals: {} of {} property instances reused or patched ({:.0}% reuse)\n",
        bench.warm_reused + bench.warm_partial,
        bench.properties_total,
        bench.reuse_ratio * 100.0
    ));
    out.push_str(&format!(
        "warm {:.1} ms vs cold {:.1} ms ({:.1}x); re-proved {} warm vs {} cold; \
         {} certificates served from disk\n",
        bench.warm_total_ms,
        bench.cold_total_ms,
        bench.cold_total_ms / bench.warm_total_ms,
        bench.warm_reproved,
        bench.cold_reproved,
        bench.warm_loaded
    ));
    out
}

/// Renders the replay as the `BENCH_incr.json` machine-readable report.
pub fn render_incr_json(bench: &IncrBench) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let rows: Vec<String> = bench
        .iterations
        .iter()
        .map(|it| {
            format!(
                "    {{\"kernel\": \"{}\", \"label\": \"{}\", \"reused\": {}, \
                 \"partial\": {}, \"reproved\": {}, \"loaded\": {}, \
                 \"warm_ms\": {:.3}, \"cold_ms\": {:.3}}}",
                esc(it.kernel),
                esc(it.label),
                it.reused,
                it.partial,
                it.reproved,
                it.loaded,
                it.warm_ms,
                it.cold_ms
            )
        })
        .collect();
    format!(
        "{{\n  \"suite\": \"incr\",\n  \"jobs\": {},\n  \"edits\": {},\n  \
         \"properties_total\": {},\n  \"prime_ms\": {:.3},\n  \
         \"cold\": {{\"reproved\": {}, \"total_ms\": {:.3}}},\n  \
         \"warm\": {{\"reused\": {}, \"partial\": {}, \"reproved\": {}, \
         \"loaded\": {}, \"total_ms\": {:.3}}},\n  \
         \"reuse_ratio\": {:.4},\n  \"warm_faster\": {},\n  \"iterations\": [\n{}\n  ]\n}}\n",
        bench.jobs,
        bench.iterations.len(),
        bench.properties_total,
        bench.prime_ms,
        bench.cold_reproved,
        bench.cold_total_ms,
        bench.warm_reused,
        bench.warm_partial,
        bench.warm_reproved,
        bench.warm_loaded,
        bench.warm_total_ms,
        bench.reuse_ratio,
        bench.warm_total_ms < bench.cold_total_ms,
        rows.join(",\n")
    )
}
