//! Regenerates the paper's evaluation tables and figures as text.
//!
//! ```sh
//! cargo run -p reflex-bench --release --bin figures            # everything
//! cargo run -p reflex-bench --release --bin figures -- fig6    # Figure 6
//! cargo run -p reflex-bench --release --bin figures -- fig6 --json   # + BENCH_fig6.json
//! cargo run -p reflex-bench --release --bin figures -- table1
//! cargo run -p reflex-bench --release --bin figures -- ablation
//! cargo run -p reflex-bench --release --bin figures -- utility
//! cargo run -p reflex-bench --release --bin figures -- incr --json  # + BENCH_incr.json
//! ```
//!
//! `fig6 --json` additionally measures the full suite serial (no shared
//! cache) vs. parallel (shared cache, one worker per CPU) and writes the
//! comparison to `BENCH_fig6.json`.

use reflex_bench::{
    render_ablation, render_figure6, render_figure6_bench_json, render_table1, render_utility,
    run_ablation, run_figure6, run_figure6_bench, run_utility, table1, BenchError,
};
use reflex_verify::ProverOptions;

/// Unwraps a harness result, exiting 1 with the failure on stderr — a
/// failed verification is a real regression, not a panic.
fn check<T>(result: Result<T, BenchError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("figures: {e}");
        std::process::exit(1);
    })
}

/// `--jobs N` from the raw argument list (`0`/absent: one per CPU).
fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let json = std::env::args().any(|a| a == "--json");
    let all = what == "all";

    if all || what == "table1" {
        println!("== Table 1: benchmark sizes (lines of Reflex code) ==\n");
        println!("{}", render_table1(&table1()));
    }
    if all || what == "fig6" {
        println!("== Figure 6: the 41 benchmark properties, proved fully automatically ==\n");
        let results = check(run_figure6(&ProverOptions::default()));
        println!("{}", render_figure6(&results));
        if json {
            let bench = check(run_figure6_bench(jobs_arg()));
            let doc = render_figure6_bench_json(&bench);
            let path = "BENCH_fig6.json";
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("figures: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "serial {:.1} ms vs parallel+cache ({} jobs) {:.1} ms on {} core(s): {:.2}x \
                 (outcomes identical: {}) -> wrote {path}",
                bench.serial.total_ms,
                bench.parallel.jobs,
                bench.parallel.total_ms,
                bench.cores,
                bench.speedup,
                bench.outcomes_identical
            );
        }
    }
    if all || what == "ablation" {
        println!("== §6.4 ablation: effect of the proof-search optimizations ==\n");
        println!("{}", render_ablation(&check(run_ablation())));
    }
    if all || what == "scaling" {
        println!("== Optimization scaling (synthetic kernels; the §6.4 speedups grow with kernel size) ==\n");
        println!("-- sweep 1: irrelevant handlers (branch depth 8) --");
        let points = reflex_bench::stress::run_scaling(&[0, 4, 8, 16, 32], 8);
        println!("{}", reflex_bench::stress::render_scaling(&points));
        println!("-- sweep 2: branch depth (8 irrelevant handlers; x-axis = depth) --");
        let points = reflex_bench::stress::run_depth_scaling(8, &[2, 4, 6, 8, 10, 12]);
        println!("{}", reflex_bench::stress::render_scaling(&points));
    }
    if what == "scale" {
        println!("== Prover scaling: synthetic kernel presets ==\n");
        let rows = check(reflex_bench::scale::run_scale(
            reflex_bench::scale::PRESETS,
            1,
            jobs_arg(),
        ));
        println!("{}", reflex_bench::scale::render_scale(&rows));
        if json {
            let doc = reflex_bench::scale::render_scale_json(&rows);
            let path = "BENCH_scale.json";
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("figures: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("-> wrote {path}");
        }
    }
    if all || what == "utility" {
        println!("== §6.3 utility: seeded bugs caught by pushbutton re-verification ==\n");
        println!("{}", render_utility(&check(run_utility())));
    }
    if all || what == "incr" {
        println!(
            "== Incremental verification: scripted 20-edit replay through the proof store ==\n"
        );
        let bench = reflex_bench::incr::run_incr(&ProverOptions::default(), 1);
        println!("{}", reflex_bench::incr::render_incr(&bench));
        if json {
            let doc = reflex_bench::incr::render_incr_json(&bench);
            let path = "BENCH_incr.json";
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("figures: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "reuse {:.0}%, warm {:.1} ms vs cold {:.1} ms -> wrote {path}",
                bench.reuse_ratio * 100.0,
                bench.warm_total_ms,
                bench.cold_total_ms
            );
        }
    }
    if !all
        && ![
            "table1", "fig6", "ablation", "scaling", "scale", "utility", "incr",
        ]
        .contains(&what.as_str())
    {
        eprintln!(
            "unknown figure `{what}` (expected table1 | fig6 | ablation | scaling | scale | utility | incr | all)"
        );
        std::process::exit(2);
    }
}
