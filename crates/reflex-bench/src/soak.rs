//! Long-horizon soak testing of the supervised runtime.
//!
//! Every Figure-6 kernel is driven for a configurable number of exchanges
//! under a randomized (but fully deterministic) fault plan: external-call
//! failures and timeouts, component crashes, message drop/duplication/
//! reordering. The supervisor must recover from all of it, the runtime
//! monitor must find no certificate violation, and — after a cooldown
//! with fault injection disarmed — no component may remain down.
//!
//! Outcomes carry 64-bit fingerprints of the committed trace and the
//! incident log, so determinism tests can assert byte-identical behavior
//! across seeds, processes and `--jobs` values without shipping whole
//! traces around.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rand::RngExt;
use reflex_rng::SimRng;

use reflex_ast::{CompId, Fdesc, Ty, Value};
use reflex_kernels::{all_benchmarks, Benchmark};
use reflex_runtime::{EmptyWorld, FaultPlan, RetryPolicy, SupStep, Supervisor, SupervisorConfig};
use reflex_trace::Msg;

pub use reflex_runtime::{render_incident_log, IncidentReport};

/// Soak parameters.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Committed/recovered exchanges to drive per kernel (excluding the
    /// cooldown phase).
    pub steps: usize,
    /// Global seed; per-kernel seeds are derived from it and the kernel's
    /// index, so outcomes are independent of scheduling across workers.
    pub seed: u64,
    /// Per-exchange probability of one injected fault operation.
    pub fault_rate: f64,
    /// Per-attempt probability of a spontaneous external-call fault.
    pub world_fault_rate: f64,
    /// Re-check certificates online with the runtime monitor.
    pub monitor: bool,
    /// Worker threads (0 = one per available core).
    pub jobs: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            steps: 10_000,
            seed: 1,
            fault_rate: 0.01,
            world_fault_rate: 0.02,
            monitor: true,
            jobs: 0,
        }
    }
}

/// The outcome of soaking one kernel.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Exchanges committed or recovered (excluding cooldown).
    pub steps: usize,
    /// Messages injected by the workload driver.
    pub injected: usize,
    /// Final committed trace length.
    pub trace_len: usize,
    /// FNV-1a fingerprint of the rendered trace.
    pub trace_fingerprint: u64,
    /// FNV-1a fingerprint of the rendered incident log.
    pub incident_fingerprint: u64,
    /// Incident counts by [`IncidentKind::label`](reflex_runtime::IncidentKind::label).
    pub incident_counts: BTreeMap<&'static str, usize>,
    /// Total incidents.
    pub incidents: usize,
    /// The rendered incident log (one line per incident).
    pub incident_log: String,
    /// Components still crashed after the cooldown (must be 0).
    pub unrecovered: usize,
    /// Monitor or unrecoverable runtime error, if any (must be `None`).
    pub failure: Option<String>,
    /// Wall-clock for this kernel's soak.
    pub elapsed: Duration,
}

/// FNV-1a over a byte stream.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// SplitMix64-style derivation of per-kernel seeds from the global seed —
/// [`reflex_rng::stream_u64`] at position `index + 1`, exactly the
/// scramble this module used to inline, so recorded soak seeds keep their
/// per-kernel schedules.
fn derive_seed(seed: u64, index: usize) -> u64 {
    reflex_rng::stream_u64(seed, index as u64 + 1)
}

/// Messages the workload driver may inject for each component type:
/// `(ctype, handled message decls as (name, payload))`.
type Catalog = Vec<(String, Vec<(String, Vec<Ty>)>)>;

fn build_catalog(checked: &reflex_typeck::CheckedProgram) -> Catalog {
    let program = checked.program();
    program
        .components
        .iter()
        .map(|c| {
            let msgs = program
                .messages
                .iter()
                .filter(|m| program.handler(&c.name, &m.name).is_some())
                .map(|m| (m.name.clone(), m.payload.clone()))
                .collect();
            (c.name.clone(), msgs)
        })
        .collect()
}

const STR_POOL: [&str; 4] = ["", "a", "b", "x"];

fn random_payload(rng: &mut SimRng, tys: &[Ty], comps: &[CompId]) -> Vec<Value> {
    tys.iter()
        .map(|ty| match ty {
            Ty::Bool => Value::Bool(rng.random_bool(0.5)),
            Ty::Num => Value::Num(rng.random_range(0..4i64)),
            Ty::Str => Value::from(STR_POOL[rng.random_range(0..STR_POOL.len())]),
            Ty::Fdesc => Value::Fdesc(Fdesc::new(rng.random_range(0..8u64))),
            Ty::Comp => Value::Comp(comps[rng.random_range(0..comps.len())]),
        })
        .collect()
}

/// Soaks one kernel under a randomized fault plan derived from
/// `cfg.seed` and `index` (its position in the kernel list). Fully
/// deterministic: the same `(kernel, cfg, index)` yields the same
/// fingerprints, on any machine, with any `jobs` value.
pub fn soak_kernel(bench: &Benchmark, cfg: &SoakConfig, index: usize) -> SoakOutcome {
    soak_program(bench.name, &(bench.checked)(), cfg, index)
}

/// [`soak_kernel`] for an arbitrary checked program — used by
/// `rx run --faults` to drive user kernels with the soak workload.
pub fn soak_program(
    name: &str,
    checked: &reflex_typeck::CheckedProgram,
    cfg: &SoakConfig,
    index: usize,
) -> SoakOutcome {
    soak_program_with_plan(name, checked, cfg, index, None)
}

/// [`soak_program`] with an explicit fault plan (e.g. one parsed from a
/// `--faults` specification) instead of the randomized plan derived from
/// the config's seed and fault rate.
pub fn soak_program_with_plan(
    name: &str,
    checked: &reflex_typeck::CheckedProgram,
    cfg: &SoakConfig,
    index: usize,
    plan: Option<FaultPlan>,
) -> SoakOutcome {
    let t0 = Instant::now();
    let seed = derive_seed(cfg.seed, index);
    let catalog = build_catalog(checked);
    let plan =
        plan.unwrap_or_else(|| FaultPlan::random(seed ^ 0xFA17_71A4_0000_0001, cfg.fault_rate));
    let config = SupervisorConfig {
        retry: RetryPolicy::attempts(4),
        monitor: cfg.monitor,
        world_fault_rate: cfg.world_fault_rate,
        ..SupervisorConfig::default()
    };
    let mut sup = match Supervisor::new(
        checked,
        reflex_runtime::Registry::new(),
        Box::new(EmptyWorld),
        seed,
        plan,
        config,
    ) {
        Ok(sup) => sup,
        Err(e) => {
            return SoakOutcome {
                kernel: name.to_owned(),
                steps: 0,
                injected: 0,
                trace_len: 0,
                trace_fingerprint: 0,
                incident_fingerprint: 0,
                incident_counts: BTreeMap::new(),
                incidents: 0,
                incident_log: String::new(),
                unrecovered: 0,
                failure: Some(e.to_string()),
                elapsed: t0.elapsed(),
            }
        }
    };
    let mut rng = SimRng::new(seed ^ 0x10AD_6E4E_8A70_12D3);

    let mut injected = 0usize;
    let mut serviced = 0usize;
    let mut failure = None;

    // Main phase: inject one plausible message, service one exchange.
    // The iteration bound guards against a (hypothetical) livelock where
    // every injected message lands on a crashed component.
    let max_iterations = cfg.steps * 4 + 1024;
    let mut iterations = 0usize;
    while serviced < cfg.steps && iterations < max_iterations && failure.is_none() {
        iterations += 1;
        inject_one(&mut sup, &catalog, &mut rng, &mut injected, &mut failure);
        if failure.is_some() {
            break;
        }
        match sup.step() {
            Ok(SupStep::Idle) => {}
            Ok(_) => serviced += 1,
            Err(e) => failure = Some(e.to_string()),
        }
    }

    // Cooldown: stop injecting faults and keep serving until every
    // crashed component has been restarted (the restart-intensity window
    // is at most `restart_window` exchanges wide, plus slack for the
    // quarantine decisions themselves).
    sup.disarm();
    let mut cooldown = 0usize;
    while failure.is_none()
        && !sup.interpreter().crashed_components().is_empty()
        && cooldown < SupervisorConfig::default().restart_window + 64
    {
        cooldown += 1;
        inject_one(&mut sup, &catalog, &mut rng, &mut injected, &mut failure);
        if failure.is_some() {
            break;
        }
        match sup.step() {
            Ok(_) => {}
            Err(e) => failure = Some(e.to_string()),
        }
    }

    let mut trace_fp = Fnv::new();
    for act in sup.trace().actions() {
        trace_fp.write(act.to_string().as_bytes());
        trace_fp.write(b"\n");
    }
    let incidents = sup.take_incidents();
    let incident_log = render_incident_log(&incidents);
    let mut incident_fp = Fnv::new();
    incident_fp.write(incident_log.as_bytes());
    let mut incident_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for i in &incidents {
        *incident_counts.entry(i.kind.label()).or_insert(0) += 1;
    }

    SoakOutcome {
        kernel: name.to_owned(),
        steps: serviced,
        injected,
        trace_len: sup.trace().len(),
        trace_fingerprint: trace_fp.0,
        incident_fingerprint: incident_fp.0,
        incident_counts,
        incidents: incidents.len(),
        incident_log,
        unrecovered: sup.interpreter().crashed_components().len(),
        failure,
        elapsed: t0.elapsed(),
    }
}

fn inject_one(
    sup: &mut Supervisor,
    catalog: &Catalog,
    rng: &mut SimRng,
    injected: &mut usize,
    failure: &mut Option<String>,
) {
    let comps: Vec<(CompId, String)> = sup
        .interpreter()
        .components()
        .iter()
        .map(|c| (c.id, c.ctype.clone()))
        .collect();
    if comps.is_empty() {
        return;
    }
    let ids: Vec<CompId> = comps.iter().map(|(id, _)| *id).collect();
    let (comp, ctype) = &comps[rng.random_range(0..comps.len())];
    let Some((_, msgs)) = catalog.iter().find(|(c, _)| c == ctype) else {
        return;
    };
    if msgs.is_empty() {
        return;
    }
    let (name, payload) = &msgs[rng.random_range(0..msgs.len())];
    let msg = Msg::new(name.clone(), random_payload(rng, payload, &ids));
    match sup.inject(*comp, msg) {
        Ok(()) => *injected += 1,
        Err(e) => *failure = Some(e.to_string()),
    }
}

/// Soaks all Figure-6 kernels, fanning the kernels out over `cfg.jobs`
/// worker threads. Results come back in kernel order regardless of
/// scheduling, and each kernel's outcome is independent of the worker
/// that ran it.
pub fn run_soak(cfg: &SoakConfig) -> Vec<SoakOutcome> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.jobs
    };
    let benches = all_benchmarks();
    let slots: Vec<OnceLock<SoakOutcome>> = (0..benches.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(benches.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bench) = benches.get(i) else {
                    break;
                };
                let _ = slots[i].set(soak_kernel(bench, cfg, i));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every soak slot filled"))
        .collect()
}

/// A with/without-monitor throughput comparison over the whole suite.
#[derive(Debug, Clone)]
pub struct SoakBench {
    /// The configuration used (with `monitor` as in the monitored run).
    pub config: SoakConfig,
    /// Monitored outcomes, kernel order.
    pub monitored: Vec<SoakOutcome>,
    /// Unmonitored outcomes, kernel order.
    pub unmonitored: Vec<SoakOutcome>,
    /// Total wall-clock of the monitored run, milliseconds.
    pub monitored_ms: f64,
    /// Total wall-clock of the unmonitored run, milliseconds.
    pub unmonitored_ms: f64,
}

impl SoakBench {
    /// Suite steps/second with the monitor on.
    pub fn monitored_throughput(&self) -> f64 {
        throughput(&self.monitored, self.monitored_ms)
    }

    /// Suite steps/second with the monitor off.
    pub fn unmonitored_throughput(&self) -> f64 {
        throughput(&self.unmonitored, self.unmonitored_ms)
    }
}

fn throughput(outcomes: &[SoakOutcome], ms: f64) -> f64 {
    let steps: usize = outcomes.iter().map(|o| o.steps).sum();
    if ms > 0.0 {
        steps as f64 / (ms / 1e3)
    } else {
        0.0
    }
}

/// Runs the soak suite twice — monitor on, monitor off — with identical
/// seeds and fault schedules, for the `BENCH_soak.json` record.
pub fn run_soak_bench(cfg: &SoakConfig) -> SoakBench {
    let monitored_cfg = SoakConfig {
        monitor: true,
        ..*cfg
    };
    let unmonitored_cfg = SoakConfig {
        monitor: false,
        ..*cfg
    };
    let t0 = Instant::now();
    let monitored = run_soak(&monitored_cfg);
    let monitored_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let unmonitored = run_soak(&unmonitored_cfg);
    let unmonitored_ms = t1.elapsed().as_secs_f64() * 1e3;
    SoakBench {
        config: monitored_cfg,
        monitored,
        unmonitored,
        monitored_ms,
        unmonitored_ms,
    }
}

/// Renders a [`SoakBench`] as the `BENCH_soak.json` document.
pub fn render_soak_json(bench: &SoakBench) -> String {
    fn outcomes_json(outcomes: &[SoakOutcome], total_ms: f64, steps_per_sec: f64) -> String {
        let rows: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "      {{\"kernel\": \"{}\", \"steps\": {}, \"injected\": {}, \
                     \"trace_len\": {}, \"incidents\": {}, \"unrecovered\": {}, \
                     \"trace_fingerprint\": \"{:016x}\", \"incident_fingerprint\": \"{:016x}\", \
                     \"failure\": {}}}",
                    o.kernel,
                    o.steps,
                    o.injected,
                    o.trace_len,
                    o.incidents,
                    o.unrecovered,
                    o.trace_fingerprint,
                    o.incident_fingerprint,
                    match &o.failure {
                        Some(f) => format!("\"{}\"", f.replace('"', "'")),
                        None => "null".to_owned(),
                    }
                )
            })
            .collect();
        format!(
            "{{\n    \"total_ms\": {:.3},\n    \"steps_per_sec\": {:.1},\n    \
             \"kernels\": [\n{}\n    ]\n  }}",
            total_ms,
            steps_per_sec,
            rows.join(",\n")
        )
    }
    format!(
        "{{\n  \"suite\": \"soak\",\n  \"steps_per_kernel\": {},\n  \"seed\": {},\n  \
         \"fault_rate\": {},\n  \"world_fault_rate\": {},\n  \"with_monitor\": {},\n  \
         \"without_monitor\": {},\n  \"monitor_overhead\": {:.3}\n}}\n",
        bench.config.steps,
        bench.config.seed,
        bench.config.fault_rate,
        bench.config.world_fault_rate,
        outcomes_json(
            &bench.monitored,
            bench.monitored_ms,
            bench.monitored_throughput()
        ),
        outcomes_json(
            &bench.unmonitored,
            bench.unmonitored_ms,
            bench.unmonitored_throughput()
        ),
        if bench.unmonitored_ms > 0.0 {
            bench.monitored_ms / bench.unmonitored_ms
        } else {
            0.0
        }
    )
}

/// Renders soak outcomes as a text table.
pub fn render_soak(outcomes: &[SoakOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8}  {}\n",
        "kernel", "steps", "injected", "trace", "incidents", "unrecovered", "ms", "status"
    ));
    for o in outcomes {
        out.push_str(&format!(
            "{:<10} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8.0}  {}\n",
            o.kernel,
            o.steps,
            o.injected,
            o.trace_len,
            o.incidents,
            o.unrecovered,
            o.elapsed.as_secs_f64() * 1e3,
            match &o.failure {
                Some(f) => f.as_str(),
                None => "ok",
            }
        ));
    }
    out
}
