//! Chaos harness: replays the scripted 20-edit incremental session (see
//! [`crate::incr`]) through a [`WatchSession`] whose proof store sits on
//! a deterministically faulty filesystem, once per seed, and checks the
//! pipeline's robustness invariants:
//!
//! * **no session aborts** — store trouble may slow an iteration or
//!   degrade it to in-memory caching, but never turns into an error or
//!   a missing verdict;
//! * **no wrong reuse** — every certificate produced under faults is
//!   byte-identical to the clean baseline's (a corrupt store entry must
//!   become a miss and a re-prove, never a wrong "reused" verdict);
//! * **quarantine works** — after the disk heals, `ProofStore::scrub`
//!   removes or quarantines every damaged entry, and a final clean run
//!   over the scrubbed store still matches the baseline (no
//!   quarantine escapes).
//!
//! `rx chaos --seeds A..B` drives this and writes `BENCH_chaos.json`;
//! CI replays seeds 0..8 and asserts the invariant fields.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use reflex_driver::{
    BackoffPolicy, Event, Instrument, NullSink, SessionConfig, VerifySession, WatchSession,
};
use reflex_verify::{Certificate, FaultyFs, ProverOptions, VerifyFs};

use crate::incr::edit_script;
use crate::BenchError;

/// Configuration for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-schedule seeds to replay (one full session each).
    pub seeds: Vec<u64>,
    /// Per-operation fault probability, parts per million.
    pub rate_ppm: u32,
    /// Worker threads for re-proving.
    pub jobs: usize,
    /// Replay a generated kernel (small preset, this generator seed) and
    /// its variant edit script instead of the scripted fig6 session.
    pub gen_seed: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: (0..8).collect(),
            rate_ppm: 50_000,
            jobs: 1,
            gen_seed: None,
        }
    }
}

/// What one seeded replay did and whether it upheld the invariants.
#[derive(Debug, Clone)]
pub struct ChaosSeedResult {
    /// The fault-schedule seed.
    pub seed: u64,
    /// Faults the filesystem actually injected.
    pub faults_injected: u64,
    /// `StoreRetry` events (backoff probes after I/O errors).
    pub store_retries: usize,
    /// `StoreDegraded` events (store detached after failed retries).
    pub degraded_events: usize,
    /// `StoreRecovered` events (store re-attached after a healthy probe).
    pub recovered_events: usize,
    /// Iterations that ran in degraded (in-memory) mode.
    pub degraded_iterations: usize,
    /// Iterations whose session returned an error (must be zero).
    pub aborts: usize,
    /// Properties left unproved in any iteration (must be zero).
    pub unproved: usize,
    /// Iterations whose certificates differ from the clean baseline
    /// (must be zero: corrupt entries become misses, never wrong reuse).
    pub cert_mismatches: usize,
    /// Entries deliberately bit-rotted after the replay (external damage
    /// the store's own fsync-gated writer can never produce) — the scrub
    /// must quarantine every one of them.
    pub corrupt_seeded: usize,
    /// Store entries scanned by the post-heal scrub.
    pub scrub_scanned: usize,
    /// Entries the scrub moved to `quarantine/`.
    pub scrub_quarantined: usize,
    /// Leftover temp/probe files the scrub removed.
    pub scrub_tmp_removed: usize,
    /// Final-version certificates that differ from the baseline *after*
    /// the scrub (must be zero: nothing corrupt escaped quarantine).
    pub post_scrub_mismatches: usize,
}

/// The whole chaos suite: per-seed results plus invariant totals.
#[derive(Debug, Clone)]
pub struct ChaosBench {
    /// Replayed workload: `fig6-script` or `synth-small-seedN`.
    pub workload: String,
    /// Per-operation fault rate, parts per million.
    pub rate_ppm: u32,
    /// Worker threads used.
    pub jobs: usize,
    /// Iterations per seed (base kernels + scripted edits).
    pub iterations_per_seed: usize,
    /// One result per replayed seed.
    pub seeds: Vec<ChaosSeedResult>,
}

impl ChaosBench {
    /// Total faults injected across all seeds.
    pub fn total_faults(&self) -> u64 {
        self.seeds.iter().map(|s| s.faults_injected).sum()
    }

    /// Total session aborts (invariant: zero).
    pub fn total_aborts(&self) -> usize {
        self.seeds.iter().map(|s| s.aborts).sum()
    }

    /// Total baseline certificate mismatches during faulted replays
    /// (invariant: zero).
    pub fn total_cert_mismatches(&self) -> usize {
        self.seeds
            .iter()
            .map(|s| s.cert_mismatches + s.unproved)
            .sum()
    }

    /// Total post-scrub mismatches plus seeded-corruption entries the
    /// scrub failed to quarantine (invariant: zero).
    pub fn total_quarantine_escapes(&self) -> usize {
        self.seeds
            .iter()
            .map(|s| s.post_scrub_mismatches + s.corrupt_seeded.saturating_sub(s.scrub_quarantined))
            .sum()
    }

    /// Number of violated robustness invariants (the `rx chaos` exit code
    /// is nonzero iff this is).
    pub fn violations(&self) -> usize {
        self.total_aborts() + self.total_cert_mismatches() + self.total_quarantine_escapes()
    }
}

/// An [`Instrument`] that counts the store-health events of one replay.
#[derive(Debug, Default)]
struct ChaosSink {
    retries: AtomicUsize,
    degraded: AtomicUsize,
    recovered: AtomicUsize,
}

impl Instrument for ChaosSink {
    fn event(&self, event: &Event) {
        match event {
            Event::StoreRetry { .. } => self.retries.fetch_add(1, Ordering::Relaxed),
            Event::StoreDegraded { .. } => self.degraded.fetch_add(1, Ordering::Relaxed),
            Event::StoreRecovered => self.recovered.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }
}

/// A store directory unique to this process and seed.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rx-chaos-{tag}-{}", std::process::id()))
}

fn parse_and_check(name: &str, source: &str) -> Result<reflex_typeck::CheckedProgram, BenchError> {
    let program = reflex_parser::parse_program(name, source)
        .map_err(|e| BenchError(format!("chaos: {name} must stay parseable: {e}")))?;
    reflex_typeck::check(&program)
        .map_err(|e| BenchError(format!("chaos: {name} must stay well-typed: {e}")))
}

/// The replayed source sequence: both base kernels, then the 20 scripted
/// edits, as `(kernel, source)` pairs. Identical for every seed and for
/// the clean baseline.
fn replay_sequence() -> Result<Vec<(String, String)>, BenchError> {
    let mut sources = BTreeMap::new();
    sources.insert("ssh", reflex_kernels::kernels::ssh::SOURCE.to_owned());
    sources.insert(
        "browser",
        reflex_kernels::kernels::browser::SOURCE.to_owned(),
    );
    let mut sequence: Vec<(String, String)> = sources
        .iter()
        .map(|(k, s)| ((*k).to_owned(), s.clone()))
        .collect();
    for step in edit_script() {
        let source = sources.get_mut(step.kernel).expect("scripted kernel");
        if !source.contains(step.find) {
            return Err(BenchError(format!(
                "chaos: edit '{}' does not apply: pattern not found",
                step.label
            )));
        }
        *source = source.replacen(step.find, step.replace, 1);
        sequence.push((step.kernel.to_owned(), source.clone()));
    }
    Ok(sequence)
}

/// Edit sequence over a generated kernel: the small-preset base kernel
/// for `seed`, then four deterministic variant edits (each appends a
/// handler and its property), so the watch loop's reuse ladder and the
/// store all see a synthetic workload instead of the scripted fig6 one.
fn generated_sequence(seed: u64) -> Vec<(String, String)> {
    let cfg =
        reflex_kernels::synth::SynthConfig::preset("small", seed).expect("small preset exists");
    (0..5)
        .map(|variant| {
            let kernel = reflex_kernels::synth::generate_variant(&cfg, variant);
            (kernel.name, kernel.source)
        })
        .collect()
}

/// The certificates of one report, in declaration order (deterministic).
fn certs_of(report: &reflex_driver::SessionReport) -> Vec<(String, Certificate)> {
    report
        .outcomes
        .iter()
        .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
        .collect()
}

fn session_config(dir: &std::path::Path, jobs: usize) -> SessionConfig {
    SessionConfig {
        options: ProverOptions {
            jobs,
            ..ProverOptions::default()
        },
        jobs,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..SessionConfig::default()
    }
}

/// Replays the scripted session once per seed under injected store
/// faults and checks every robustness invariant (recorded per seed, not
/// panicked on — `rx chaos` turns [`ChaosBench::violations`] into the
/// exit code and CI guards the JSON fields).
///
/// # Errors
///
/// Returns [`BenchError`] only for harness-level problems (a scripted
/// edit failing to apply, the *clean* baseline failing to verify) —
/// never for fault-induced behavior, which the result records instead.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosBench, BenchError> {
    let sequence = match config.gen_seed {
        Some(seed) => generated_sequence(seed),
        None => replay_sequence()?,
    };
    let checked: Vec<(String, reflex_typeck::CheckedProgram)> = sequence
        .iter()
        .map(|(k, s)| Ok((k.clone(), parse_and_check(k, s)?)))
        .collect::<Result<_, BenchError>>()?;

    // Clean baseline: the same replay over a healthy store. Its
    // certificates are the ground truth every faulted replay must match.
    let base_dir = scratch_dir("baseline");
    let _ = std::fs::remove_dir_all(&base_dir);
    let mut baseline: Vec<Vec<(String, Certificate)>> = Vec::with_capacity(checked.len());
    let mut final_certs: BTreeMap<String, Vec<(String, Certificate)>> = BTreeMap::new();
    {
        let mut watch = WatchSession::new(session_config(&base_dir, config.jobs))
            .map_err(|e| BenchError(format!("chaos baseline: {e}")))?;
        for (kernel, program) in &checked {
            let it = watch
                .verify(program, &NullSink)
                .map_err(|e| BenchError(format!("chaos baseline ({kernel}): {e}")))?;
            for (name, o) in &it.report.outcomes {
                if !o.is_proved() {
                    return Err(BenchError(format!(
                        "chaos baseline ({kernel}): property {name} must be provable"
                    )));
                }
            }
            let certs = certs_of(&it.report);
            final_certs.insert(kernel.clone(), certs.clone());
            baseline.push(certs);
        }
    }
    let _ = std::fs::remove_dir_all(&base_dir);

    let mut seeds = Vec::with_capacity(config.seeds.len());
    for &seed in &config.seeds {
        let dir = scratch_dir(&format!("seed{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        let faulty = FaultyFs::seeded(seed, config.rate_ppm);
        let mut cfg = session_config(&dir, config.jobs);
        cfg.store_fs = Some(Arc::new(faulty.clone()) as Arc<dyn VerifyFs>);
        let sink = ChaosSink::default();

        let mut result = ChaosSeedResult {
            seed,
            faults_injected: 0,
            store_retries: 0,
            degraded_events: 0,
            recovered_events: 0,
            degraded_iterations: 0,
            aborts: 0,
            unproved: 0,
            cert_mismatches: 0,
            corrupt_seeded: 0,
            scrub_scanned: 0,
            scrub_quarantined: 0,
            scrub_tmp_removed: 0,
            post_scrub_mismatches: 0,
        };

        match WatchSession::new(cfg) {
            Ok(watch) => {
                let mut watch = watch.with_backoff(BackoffPolicy {
                    base_ms: 1,
                    cap_ms: 4,
                    retries: 2,
                });
                for ((kernel, program), expected) in checked.iter().zip(&baseline) {
                    match watch.verify(program, &sink) {
                        Ok(it) => {
                            if it.degraded {
                                result.degraded_iterations += 1;
                            }
                            result.unproved += it
                                .report
                                .outcomes
                                .iter()
                                .filter(|(_, o)| !o.is_proved())
                                .count();
                            if &certs_of(&it.report) != expected {
                                result.cert_mismatches += 1;
                            }
                        }
                        Err(e) => {
                            // Invariant violation: record it, keep going so
                            // one bad iteration still yields a full report.
                            let _ = (kernel, e);
                            result.aborts += 1;
                        }
                    }
                }
            }
            // Even a store directory that cannot be created should start
            // the loop degraded, not fail construction.
            Err(_) => result.aborts += 1,
        }

        result.store_retries = sink.retries.load(Ordering::Relaxed);
        result.degraded_events = sink.degraded.load(Ordering::Relaxed);
        result.recovered_events = sink.recovered.load(Ordering::Relaxed);
        result.faults_injected = faulty.injected();

        // The disk heals; before scrubbing, inflict damage the store's own
        // fsync-gated writer can never produce — bit rot in landed entries
        // and stale temp debris — so the quarantine path is exercised on
        // every seed.
        faulty.heal();
        result.corrupt_seeded = seed_external_corruption(&dir);
        if let Ok(store) = reflex_verify::ProofStore::open(&dir) {
            match store.scrub(None) {
                Ok(scrub) => {
                    result.scrub_scanned = scrub.scanned;
                    result.scrub_quarantined = scrub.quarantined.len();
                    result.scrub_tmp_removed = scrub.tmp_removed;
                }
                Err(_) => result.aborts += 1,
            }
        }

        // Final clean run over the scrubbed store: every certificate —
        // reused from disk or re-proved — must still match the baseline.
        for (kernel, expected) in &final_certs {
            let program = checked
                .iter()
                .rev()
                .find(|(k, _)| k == kernel)
                .map(|(_, c)| c)
                .expect("kernel present in replay");
            let session = VerifySession::new(session_config(&dir, config.jobs));
            match session.and_then(|s| s.verify_checked(program, &NullSink)) {
                Ok(report) => {
                    if &certs_of(&report) != expected {
                        result.post_scrub_mismatches += 1;
                    }
                }
                Err(_) => result.post_scrub_mismatches += 1,
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
        seeds.push(result);
    }

    Ok(ChaosBench {
        workload: match config.gen_seed {
            Some(seed) => format!("synth-small-seed{seed}"),
            None => "fig6-script".to_owned(),
        },
        rate_ppm: config.rate_ppm,
        jobs: config.jobs,
        iterations_per_seed: checked.len(),
        seeds,
    })
}

/// Flips a payload byte in the first frame of the (alphabetically) first
/// two segment logs and drops a stale `.tmp-` file, returning how many
/// segments were damaged. Mimics bit rot and crash debris from outside
/// the store's own fsync-gated append discipline. The flip lands at
/// offset 50 — past the 44-byte frame header, inside the first payload —
/// so it provably breaks that frame's integrity fingerprint and the
/// scrub must quarantine the segment tail.
fn seed_external_corruption(dir: &std::path::Path) -> usize {
    let mut corrupted = 0usize;
    let mut segments: Vec<PathBuf> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        for shard in rd.filter_map(|e| e.ok().map(|e| e.path())) {
            let is_shard = shard
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-"));
            if !(is_shard && shard.is_dir()) {
                continue;
            }
            if let Ok(rd) = std::fs::read_dir(&shard) {
                segments.extend(
                    rd.filter_map(|e| e.ok().map(|e| e.path()))
                        .filter(|p| p.extension().is_some_and(|x| x == "log")),
                );
            }
        }
    }
    segments.sort();
    for path in segments.iter().take(2) {
        if let Ok(mut bytes) = std::fs::read(path) {
            if bytes.len() > 50 {
                bytes[50] ^= 0x40;
                if std::fs::write(path, &bytes).is_ok() {
                    corrupted += 1;
                }
            }
        }
    }
    let _ = std::fs::write(dir.join(".tmp-0-chaos-debris.cert"), b"crash debris");
    corrupted
}

/// Renders the chaos suite as a text table.
pub fn render_chaos(bench: &ChaosBench) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Chaos replay ({}): {} iterations/seed at {} ppm fault rate (jobs = {})\n\n",
        bench.workload, bench.iterations_per_seed, bench.rate_ppm, bench.jobs
    ));
    out.push_str(&format!(
        "{:>5} {:>7} {:>8} {:>9} {:>10} {:>9} {:>5} {:>5} {:>9} {:>8}\n",
        "seed",
        "faults",
        "retries",
        "degraded",
        "recovered",
        "degr-its",
        "rot",
        "quar",
        "mismatch",
        "escapes"
    ));
    for s in &bench.seeds {
        out.push_str(&format!(
            "{:>5} {:>7} {:>8} {:>9} {:>10} {:>9} {:>5} {:>5} {:>9} {:>8}\n",
            s.seed,
            s.faults_injected,
            s.store_retries,
            s.degraded_events,
            s.recovered_events,
            s.degraded_iterations,
            s.corrupt_seeded,
            s.scrub_quarantined,
            s.cert_mismatches + s.unproved,
            s.post_scrub_mismatches + s.corrupt_seeded.saturating_sub(s.scrub_quarantined)
        ));
    }
    out.push_str(&format!(
        "\ntotals: {} faults injected, {} aborts, {} certificate mismatches, {} quarantine escapes\n",
        bench.total_faults(),
        bench.total_aborts(),
        bench.total_cert_mismatches(),
        bench.total_quarantine_escapes()
    ));
    out.push_str(if bench.violations() == 0 {
        "all robustness invariants held ✓\n"
    } else {
        "ROBUSTNESS INVARIANT VIOLATED\n"
    });
    out
}

/// Renders the chaos suite as the `BENCH_chaos.json` document.
pub fn render_chaos_json(bench: &ChaosBench) -> String {
    let rows: Vec<String> = bench
        .seeds
        .iter()
        .map(|s| {
            format!(
                "    {{\"seed\": {}, \"faults_injected\": {}, \"store_retries\": {}, \
                 \"degraded_events\": {}, \"recovered_events\": {}, \
                 \"degraded_iterations\": {}, \"aborts\": {}, \"unproved\": {}, \
                 \"cert_mismatches\": {}, \"corrupt_seeded\": {}, \"scrub_scanned\": {}, \
                 \"scrub_quarantined\": {}, \"scrub_tmp_removed\": {}, \
                 \"post_scrub_mismatches\": {}}}",
                s.seed,
                s.faults_injected,
                s.store_retries,
                s.degraded_events,
                s.recovered_events,
                s.degraded_iterations,
                s.aborts,
                s.unproved,
                s.cert_mismatches,
                s.corrupt_seeded,
                s.scrub_scanned,
                s.scrub_quarantined,
                s.scrub_tmp_removed,
                s.post_scrub_mismatches
            )
        })
        .collect();
    format!(
        "{{\n  \"suite\": \"chaos\",\n  \"workload\": \"{}\",\n  \"rate_ppm\": {},\n  \"jobs\": {},\n  \
         \"iterations_per_seed\": {},\n  \"total_faults\": {},\n  \
         \"aborts\": {},\n  \"cert_mismatches\": {},\n  \"quarantine_escapes\": {},\n  \
         \"invariants_held\": {},\n  \"seeds\": [\n{}\n  ]\n}}\n",
        crate::json_escape(&bench.workload),
        bench.rate_ppm,
        bench.jobs,
        bench.iterations_per_seed,
        bench.total_faults(),
        bench.total_aborts(),
        bench.total_cert_mismatches(),
        bench.total_quarantine_escapes(),
        bench.violations() == 0,
        rows.join(",\n")
    )
}
