//! Synthetic workload generator for the optimization-scaling experiment.
//!
//! The paper reports 80× average (1000× peak) speedups from its proof
//! search optimizations (§6.4). Those factors are functions of kernel
//! *size*: the syntactic skip avoids symbolically evaluating every
//! handler that cannot matter, and path pruning avoids exploring branches
//! the path condition already closes. On the (small) benchmark kernels
//! our native search is fast either way; this generator produces kernels
//! with `n` message types and branch-heavy handlers so the ablation's
//! scaling shape can be measured — the optimized configuration is
//! near-constant in the irrelevant-handler count while the unoptimized
//! one grows with it.

use reflex_ast::build::ProgramBuilder;
use reflex_ast::{ActionPat, CompPat, Expr, PatField, Program, PropertyDecl, TracePropKind, Ty};

/// Generates a stress kernel with `n_msgs` message types, each with a
/// handler of `depth` nested (partially infeasible) branches, plus one
/// guarded "grant" handler and an `Enables` property about it.
///
/// Only the grant handler can emit the property's trigger, so the
/// syntactic skip closes the other `n_msgs` cases instantly; without it
/// the prover symbolically evaluates ~`2^depth` paths per case.
pub fn stress_kernel(n_msgs: usize, depth: usize) -> Program {
    let mut b = ProgramBuilder::new("stress")
        .component("Worker", "worker.py", [])
        .component("Sink", "sink.py", [])
        .message("Auth", [Ty::Str])
        .message("Grant", [Ty::Str])
        .message("Granted", [Ty::Str])
        .state("who", Ty::Str, Expr::lit(""))
        .state("armed", Ty::Bool, Expr::lit(false))
        .init_spawn("w", "Worker", [])
        .init_spawn("s", "Sink", []);

    // The property-relevant handlers.
    b = b.handler("Worker", "Auth", ["u"], |h| {
        h.assign("who", Expr::var("u"));
        h.assign("armed", Expr::lit(true));
    });
    b = b.handler("Worker", "Grant", ["u"], |h| {
        h.when(
            Expr::var("armed").and(Expr::var("u").eq(Expr::var("who"))),
            |t| {
                t.send(Expr::var("s"), "Granted", [Expr::var("u")]);
            },
        );
    });

    // `n_msgs` irrelevant, branch-heavy handlers. Each nests `depth`
    // branches whose conditions repeat, so half the syntactic paths are
    // infeasible — pruning collapses them.
    let msg_names: Vec<String> = (0..n_msgs).map(|i| format!("Noise{i}")).collect();
    for name in &msg_names {
        b = b.message(name.clone(), [Ty::Num]);
    }
    for name in &msg_names {
        b = b.handler("Worker", name.clone(), ["n"], |h| {
            fn nest(h: &mut reflex_ast::build::CmdBuilder, depth: usize) {
                if depth == 0 {
                    h.assign("who", Expr::var("who").cat(Expr::lit("")));
                    return;
                }
                // The same condition at every level: one side of each
                // inner branch is infeasible.
                h.if_else(
                    Expr::var("n").lt(Expr::lit(0i64)),
                    |t| nest(t, depth - 1),
                    |e| nest(e, depth - 1),
                );
            }
            nest(h, depth);
        });
    }

    b.property(PropertyDecl::trace(
        "AuthBeforeGrant",
        [("u", Ty::Str)],
        TracePropKind::Enables,
        ActionPat::Recv {
            comp: CompPat::of_type("Worker"),
            msg: "Auth".into(),
            args: vec![PatField::var("u")],
        },
        ActionPat::Send {
            comp: CompPat::of_type("Sink"),
            msg: "Granted".into(),
            args: vec![PatField::var("u")],
        },
    ))
    .finish()
}

/// Measures verification time of the stress kernel's property under the
/// given options; returns milliseconds.
pub fn verify_stress_ms(program: &Program, options: &reflex_verify::ProverOptions) -> f64 {
    let checked = reflex_typeck::check(program).expect("stress kernel checks");
    let t0 = std::time::Instant::now();
    let abs = reflex_verify::Abstraction::build(&checked, options);
    let outcome =
        reflex_verify::prove_with(&abs, "AuthBeforeGrant", options).expect("property exists");
    assert!(outcome.is_proved(), "stress property must verify");
    t0.elapsed().as_secs_f64() * 1e3
}

/// One point of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of irrelevant message handlers.
    pub n_msgs: usize,
    /// Optimized time (ms).
    pub optimized_ms: f64,
    /// Unoptimized time (ms).
    pub unoptimized_ms: f64,
}

/// Runs the scaling sweep: kernels of growing size, optimized vs.
/// unoptimized.
pub fn run_scaling(sizes: &[usize], depth: usize) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&n_msgs| {
            let program = stress_kernel(n_msgs, depth);
            let optimized_ms =
                verify_stress_ms(&program, &reflex_verify::ProverOptions::optimized());
            let unoptimized_ms =
                verify_stress_ms(&program, &reflex_verify::ProverOptions::unoptimized());
            ScalingPoint {
                n_msgs,
                optimized_ms,
                unoptimized_ms,
            }
        })
        .collect()
}

/// Runs the depth sweep: fixed handler count, growing branch depth (the
/// per-handler path count is `2^depth`, so the unoptimized cost grows
/// exponentially while pruning keeps the optimized cost flat).
pub fn run_depth_scaling(n_msgs: usize, depths: &[usize]) -> Vec<ScalingPoint> {
    depths
        .iter()
        .map(|&depth| {
            let program = stress_kernel(n_msgs, depth);
            let optimized_ms =
                verify_stress_ms(&program, &reflex_verify::ProverOptions::optimized());
            let unoptimized_ms =
                verify_stress_ms(&program, &reflex_verify::ProverOptions::unoptimized());
            ScalingPoint {
                n_msgs: depth, // reuse the field as the x-axis
                optimized_ms,
                unoptimized_ms,
            }
        })
        .collect()
}

/// Renders the scaling sweep as a text table.
pub fn render_scaling(points: &[ScalingPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:>8} {:>14} {:>16} {:>9}\n",
        "handlers", "optimized(ms)", "unoptimized(ms)", "speedup"
    ));
    s.push_str(&"-".repeat(52));
    s.push('\n');
    for p in points {
        s.push_str(&format!(
            "{:>8} {:>14.2} {:>16.2} {:>8.1}x\n",
            p.n_msgs,
            p.optimized_ms,
            p.unoptimized_ms,
            p.unoptimized_ms / p.optimized_ms
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_kernels_verify_under_all_configurations() {
        let program = stress_kernel(4, 3);
        for options in [
            reflex_verify::ProverOptions::optimized(),
            reflex_verify::ProverOptions::unoptimized(),
        ] {
            let ms = verify_stress_ms(&program, &options);
            assert!(ms >= 0.0);
        }
    }

    #[test]
    fn generated_kernels_are_well_formed_at_scale() {
        for n in [0, 1, 8, 32] {
            let program = stress_kernel(n, 4);
            reflex_typeck::check(&program).expect("checks");
            assert_eq!(program.messages.len(), 3 + n);
        }
    }
}
