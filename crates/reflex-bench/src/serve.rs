//! The `rx bench serve` load generator: closed-loop clients hammering
//! an `rxd` daemon, measuring sustained request throughput and latency
//! percentiles into `BENCH_serve.json`.
//!
//! Each simulated client is one real connection (unix socket or TCP)
//! running `requests` verify requests back to back; latency is measured
//! per request at the client, throughput over the whole storm. With no
//! endpoint configured the bench boots its own in-process daemon on a
//! scratch unix socket — the default CI smoke path — and tears it down
//! (drain + store flush) afterwards. After the storm the daemon's own
//! counters are fetched and the bench fails on any protocol error, so
//! the CI gate is "the wire held up under load", not just "it was
//! fast".
//!
//! The `--overload` mode measures what admission control buys: it runs
//! the same storm at 4x the executor capacity twice — once against a
//! daemon with shedding disabled (every request queues, latency is
//! dominated by queueing) and once with the queue-depth watermark
//! enabled (excess requests get a typed `Overloaded` fast-reject).
//! The bench records goodput, shed rate and the p99 of the requests
//! that *were* admitted; the CI gate is that the shedding daemon's p99
//! stays below the saturated daemon's p99 — i.e. shedding converts
//! unbounded queueing delay into explicit, retryable rejections.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reflex_service::protocol::{ERR_BUSY, ERR_OVERLOADED};
use reflex_service::{
    serve, Client, Endpoint, Request, ServerConfig, ServiceConfig, ServiceCore, StatsSnapshot,
};

use crate::BenchError;

/// Knobs for one serve storm.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Concurrent closed-loop clients (connections).
    pub clients: usize,
    /// Verify requests per client.
    pub requests: usize,
    /// Daemon to load; `None` boots an in-process one on a scratch
    /// unix socket.
    pub endpoint: Option<Endpoint>,
    /// When booting in-process: prover threads per request.
    pub jobs: usize,
    /// When booting in-process: concurrent request executors
    /// (0: one per CPU).
    pub workers: usize,
    /// Also run the 4x-capacity overload comparison (needs the
    /// in-process daemon, so incompatible with `endpoint`).
    pub overload: bool,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            clients: 8,
            requests: 16,
            endpoint: None,
            jobs: 1,
            workers: 0,
            overload: false,
        }
    }
}

/// The overload comparison's measurements (see the module docs).
#[derive(Debug, Clone)]
pub struct OverloadBench {
    /// Concurrent clients driven at the daemons (4x executor capacity).
    pub clients: usize,
    /// Requests attempted against the shedding daemon.
    pub offered: usize,
    /// Requests the shedding daemon admitted and completed.
    pub completed: usize,
    /// Requests the shedding daemon fast-rejected with `Overloaded`.
    pub shed: usize,
    /// Completed requests per second under shedding.
    pub goodput_req_per_s: f64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// p99 latency of admitted requests under shedding, milliseconds.
    pub p99_ms: f64,
    /// p99 latency of the same storm with shedding disabled
    /// (everything queues), milliseconds — the number shedding beats.
    pub saturated_p99_ms: f64,
}

/// The storm's measurements.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Requests that completed with every property proved.
    pub completed: usize,
    /// Whole-storm wall-clock, seconds.
    pub wall_s: f64,
    /// Sustained completed requests per second.
    pub req_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// The daemon's counters after the storm.
    pub stats: StatsSnapshot,
    /// The overload comparison, when requested.
    pub overload: Option<OverloadBench>,
}

/// The sorted-latency percentile (nearest-rank on an inclusive index).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn verify_request() -> Request {
    Request::Verify {
        name: "car".to_owned(),
        source: reflex_kernels::car::SOURCE.to_owned(),
        property: None,
        budget_ms: None,
        budget_nodes: None,
        want_events: false,
        deadline_ms: None,
        idempotency_key: None,
    }
}

/// A booted scratch daemon on a unique unix socket.
struct ScratchDaemon {
    path: std::path::PathBuf,
    handle: reflex_service::ServerHandle,
}

impl ScratchDaemon {
    fn boot(config: ServiceConfig, tag: &str) -> Result<ScratchDaemon, BenchError> {
        let path = std::env::temp_dir().join(format!(
            "rxd-bench-{tag}-{}-{:x}.sock",
            std::process::id(),
            Instant::now().elapsed().as_nanos()
        ));
        let core =
            ServiceCore::start(config).map_err(|e| BenchError(format!("service core: {e}")))?;
        let handle = serve(
            Arc::new(core),
            &ServerConfig {
                unix: Some(path.clone()),
                tcp: None,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| BenchError(format!("bind {}: {e}", path.display())))?;
        Ok(ScratchDaemon { path, handle })
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::Unix(self.path.clone())
    }

    fn stop(self) {
        self.handle.stop();
        self.handle.core().shutdown();
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What one closed-loop storm measured.
struct Storm {
    /// Sorted latencies of completed requests, milliseconds.
    latencies_ms: Vec<f64>,
    /// Requests fast-rejected as Busy/Overloaded.
    shed: usize,
    /// Wall-clock for the whole storm, seconds.
    wall_s: f64,
}

/// Drives `clients` x `requests` at `endpoint`. When `count_shed` is
/// set, Busy/Overloaded rejections are tallied instead of failing the
/// storm (the overload mode's shedding run); every other error is
/// fatal either way.
fn run_storm(
    endpoint: &Endpoint,
    clients: usize,
    requests: usize,
    count_shed: bool,
) -> Result<Storm, BenchError> {
    // Warm the shared caches once so the storm measures the resident
    // service's steady state, which is the thing being benchmarked.
    {
        let mut warm =
            Client::connect(endpoint).map_err(|e| BenchError(format!("warmup connect: {e}")))?;
        warm.verify(verify_request(), &mut |_| {})
            .map_err(|e| BenchError(format!("warmup verify: {e}")))?;
    }

    let failed_props = AtomicU64::new(0);
    let shed_total = AtomicU64::new(0);
    let storm_start = Instant::now();
    let results: Vec<Result<Vec<f64>, BenchError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let endpoint = endpoint.clone();
                let failed_props = &failed_props;
                let shed_total = &shed_total;
                scope.spawn(move || {
                    let mut client = Client::connect(&endpoint)
                        .map_err(|e| BenchError(format!("client {c} connect: {e}")))?;
                    let mut lat = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let start = Instant::now();
                        match client.verify(verify_request(), &mut |_| {}) {
                            Ok(report) => {
                                lat.push(start.elapsed().as_secs_f64() * 1e3);
                                failed_props.fetch_add(report.failures() as u64, Ordering::Relaxed);
                            }
                            Err(e)
                                if count_shed
                                    && matches!(
                                        e.remote_code(),
                                        Some(ERR_BUSY) | Some(ERR_OVERLOADED)
                                    ) =>
                            {
                                shed_total.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                return Err(BenchError(format!("client {c} request {i}: {e}")))
                            }
                        }
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(BenchError("client thread panicked".into())))
            })
            .collect()
    });
    let wall_s = storm_start.elapsed().as_secs_f64();
    let mut latencies_ms = Vec::with_capacity(clients * requests);
    for result in results {
        latencies_ms.extend(result?);
    }
    if failed_props.load(Ordering::Relaxed) > 0 {
        return Err(BenchError(format!(
            "{} propert(y/ies) failed to prove under load",
            failed_props.load(Ordering::Relaxed)
        )));
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Ok(Storm {
        latencies_ms,
        shed: shed_total.load(Ordering::Relaxed) as usize,
        wall_s,
    })
}

/// Runs the 4x-capacity comparison: saturated (no shedding) vs shed
/// (queue-depth watermark on), both on fresh in-process daemons.
fn run_overload(config: &ServeBenchConfig) -> Result<OverloadBench, BenchError> {
    let workers = if config.workers == 0 {
        2
    } else {
        config.workers
    };
    let clients = (workers * 4).max(config.clients);
    let requests = config.requests;

    let base = ServiceConfig {
        jobs: config.jobs,
        workers,
        ..ServiceConfig::default()
    };

    // Saturated baseline: everything queues, latency absorbs the queue.
    let daemon = ScratchDaemon::boot(base.clone(), "sat")?;
    let saturated = run_storm(&daemon.endpoint(), clients, requests, false);
    daemon.stop();
    let saturated = saturated?;

    // Shedding run: admit roughly what the executors can drain, shed
    // the rest with a typed fast-reject.
    let daemon = ScratchDaemon::boot(
        ServiceConfig {
            shed_queue_depth: workers * 2,
            shed_retry_after_ms: 25,
            ..base
        },
        "shed",
    )?;
    let shed_storm = run_storm(&daemon.endpoint(), clients, requests, true);
    daemon.stop();
    let shed_storm = shed_storm?;

    let offered = clients * requests;
    let completed = shed_storm.latencies_ms.len();
    Ok(OverloadBench {
        clients,
        offered,
        completed,
        shed: shed_storm.shed,
        goodput_req_per_s: if shed_storm.wall_s > 0.0 {
            completed as f64 / shed_storm.wall_s
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            shed_storm.shed as f64 / offered as f64
        } else {
            0.0
        },
        p99_ms: percentile(&shed_storm.latencies_ms, 99.0),
        saturated_p99_ms: percentile(&saturated.latencies_ms, 99.0),
    })
}

/// Runs the storm (booting a scratch daemon if no endpoint is given)
/// and gates on zero protocol errors and zero failed proofs.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBench, BenchError> {
    if config.clients == 0 || config.requests == 0 {
        return Err(BenchError(
            "serve bench needs at least one client and one request".into(),
        ));
    }
    if config.overload && config.endpoint.is_some() {
        return Err(BenchError(
            "--overload boots its own daemons and cannot target an external endpoint".into(),
        ));
    }
    // One scratch daemon per run when no endpoint was given.
    let local = match &config.endpoint {
        Some(_) => None,
        None => Some(ScratchDaemon::boot(
            ServiceConfig {
                jobs: config.jobs,
                workers: config.workers,
                ..ServiceConfig::default()
            },
            "base",
        )?),
    };
    let endpoint = match (&config.endpoint, &local) {
        (Some(e), _) => e.clone(),
        (None, Some(daemon)) => daemon.endpoint(),
        (None, None) => unreachable!("scratch daemon exists when no endpoint was given"),
    };

    let storm = run_storm(&endpoint, config.clients, config.requests, false);

    // The daemon's own verdict on the storm (fetched before teardown).
    let stats = if storm.is_ok() {
        Some(
            Client::connect(&endpoint)
                .map_err(|e| BenchError(format!("stats connect: {e}")))
                .and_then(|mut probe| probe.stats().map_err(|e| BenchError(format!("stats: {e}")))),
        )
    } else {
        None
    };
    if let Some(daemon) = local {
        daemon.stop();
    }
    let storm = storm?;
    let stats = stats.expect("storm succeeded")?;

    if stats.protocol_errors > 0 {
        return Err(BenchError(format!(
            "{} protocol error(s) under load",
            stats.protocol_errors
        )));
    }

    let overload = if config.overload {
        Some(run_overload(config)?)
    } else {
        None
    };

    let completed = storm.latencies_ms.len();
    Ok(ServeBench {
        clients: config.clients,
        requests_per_client: config.requests,
        completed,
        wall_s: storm.wall_s,
        req_per_s: if storm.wall_s > 0.0 {
            completed as f64 / storm.wall_s
        } else {
            0.0
        },
        p50_ms: percentile(&storm.latencies_ms, 50.0),
        p95_ms: percentile(&storm.latencies_ms, 95.0),
        p99_ms: percentile(&storm.latencies_ms, 99.0),
        stats,
        overload,
    })
}

/// Renders the storm as human-readable text.
pub fn render_serve(b: &ServeBench) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "serve bench: {} client(s) x {} request(s) in {:.2} s",
        b.clients, b.requests_per_client, b.wall_s
    );
    let _ = writeln!(s, "  sustained:   {:.1} req/s", b.req_per_s);
    let _ = writeln!(
        s,
        "  latency:     p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        b.p50_ms, b.p95_ms, b.p99_ms
    );
    let _ = writeln!(
        s,
        "  server:      {} served, {} busy-rejected, {} protocol error(s), {} connection(s)",
        b.stats.requests_served,
        b.stats.rejected_busy,
        b.stats.protocol_errors,
        b.stats.connections
    );
    if let Some(o) = &b.overload {
        let _ = writeln!(
            s,
            "  overload:    {} clients offered {}, completed {} ({:.1} req/s goodput), shed {} ({:.0}%)",
            o.clients,
            o.offered,
            o.completed,
            o.goodput_req_per_s,
            o.shed,
            o.shed_rate * 100.0
        );
        let _ = writeln!(
            s,
            "  overload p99: {:.1} ms under shedding vs {:.1} ms saturated",
            o.p99_ms, o.saturated_p99_ms
        );
    }
    s
}

/// Renders the storm as the `BENCH_serve.json` document.
pub fn render_serve_json(b: &ServeBench) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"completed\": {},\n",
            "  \"wall_s\": {:.3},\n",
            "  \"req_per_s\": {:.1},\n",
            "  \"p50_ms\": {:.2},\n",
            "  \"p95_ms\": {:.2},\n",
            "  \"p99_ms\": {:.2},\n",
            "  \"requests_served\": {},\n",
            "  \"rejected_busy\": {},\n",
            "  \"protocol_errors\": {},\n",
            "  \"connections\": {}"
        ),
        b.clients,
        b.requests_per_client,
        b.completed,
        b.wall_s,
        b.req_per_s,
        b.p50_ms,
        b.p95_ms,
        b.p99_ms,
        b.stats.requests_served,
        b.stats.rejected_busy,
        b.stats.protocol_errors,
        b.stats.connections
    );
    if let Some(o) = &b.overload {
        let _ = write!(
            s,
            concat!(
                ",\n",
                "  \"overload\": {{\n",
                "    \"clients\": {},\n",
                "    \"offered\": {},\n",
                "    \"completed\": {},\n",
                "    \"shed\": {},\n",
                "    \"goodput_req_per_s\": {:.1},\n",
                "    \"shed_rate\": {:.3},\n",
                "    \"p99_ms\": {:.2},\n",
                "    \"saturated_p99_ms\": {:.2}\n",
                "  }}"
            ),
            o.clients,
            o.offered,
            o.completed,
            o.shed,
            o.goodput_req_per_s,
            o.shed_rate,
            o.p99_ms,
            o.saturated_p99_ms
        );
    }
    s.push_str("\n}\n");
    s
}
