//! The `rx bench serve` load generator: closed-loop clients hammering
//! an `rxd` daemon, measuring sustained request throughput and latency
//! percentiles into `BENCH_serve.json`.
//!
//! Each simulated client is one real connection (unix socket or TCP)
//! running `requests` verify requests back to back; latency is measured
//! per request at the client, throughput over the whole storm. With no
//! endpoint configured the bench boots its own in-process daemon on a
//! scratch unix socket — the default CI smoke path — and tears it down
//! (drain + store flush) afterwards. After the storm the daemon's own
//! counters are fetched and the bench fails on any protocol error, so
//! the CI gate is "the wire held up under load", not just "it was
//! fast".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use reflex_service::{
    serve, Client, Endpoint, Request, ServerConfig, ServiceConfig, ServiceCore, StatsSnapshot,
};

use crate::BenchError;

/// Knobs for one serve storm.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Concurrent closed-loop clients (connections).
    pub clients: usize,
    /// Verify requests per client.
    pub requests: usize,
    /// Daemon to load; `None` boots an in-process one on a scratch
    /// unix socket.
    pub endpoint: Option<Endpoint>,
    /// When booting in-process: prover threads per request.
    pub jobs: usize,
    /// When booting in-process: concurrent request executors
    /// (0: one per CPU).
    pub workers: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            clients: 8,
            requests: 16,
            endpoint: None,
            jobs: 1,
            workers: 0,
        }
    }
}

/// The storm's measurements.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Requests that completed with every property proved.
    pub completed: usize,
    /// Whole-storm wall-clock, seconds.
    pub wall_s: f64,
    /// Sustained completed requests per second.
    pub req_per_s: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// The daemon's counters after the storm.
    pub stats: StatsSnapshot,
}

/// The sorted-latency percentile (nearest-rank on an inclusive index).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs the storm (booting a scratch daemon if no endpoint is given)
/// and gates on zero protocol errors and zero failed proofs.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBench, BenchError> {
    if config.clients == 0 || config.requests == 0 {
        return Err(BenchError(
            "serve bench needs at least one client and one request".into(),
        ));
    }
    // One scratch daemon per run when no endpoint was given.
    let scratch = config.endpoint.is_none().then(|| {
        let path = std::env::temp_dir().join(format!(
            "rxd-bench-{}-{:x}.sock",
            std::process::id(),
            Instant::now().elapsed().as_nanos()
        ));
        path
    });
    let local = match &scratch {
        Some(path) => {
            let core = ServiceCore::start(ServiceConfig {
                jobs: config.jobs,
                workers: config.workers,
                ..ServiceConfig::default()
            })
            .map_err(|e| BenchError(format!("service core: {e}")))?;
            let handle = serve(
                Arc::new(core),
                &ServerConfig {
                    unix: Some(path.clone()),
                    tcp: None,
                },
            )
            .map_err(|e| BenchError(format!("bind {}: {e}", path.display())))?;
            Some(handle)
        }
        None => None,
    };
    let endpoint = match (&config.endpoint, &scratch) {
        (Some(e), _) => e.clone(),
        (None, Some(path)) => Endpoint::Unix(path.clone()),
        (None, None) => unreachable!("scratch socket exists when no endpoint was given"),
    };

    let source = reflex_kernels::car::SOURCE;
    let verify_request = || Request::Verify {
        name: "car".to_owned(),
        source: source.to_owned(),
        property: None,
        budget_ms: None,
        budget_nodes: None,
        want_events: false,
    };

    // Warm the shared caches once so the storm measures the resident
    // service's steady state, which is the thing being benchmarked.
    {
        let mut warm =
            Client::connect(&endpoint).map_err(|e| BenchError(format!("warmup connect: {e}")))?;
        warm.verify(verify_request(), &mut |_| {})
            .map_err(|e| BenchError(format!("warmup verify: {e}")))?;
    }

    let failed_props = AtomicU64::new(0);
    let storm_start = Instant::now();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(config.clients * config.requests);
    let results: Vec<Result<Vec<f64>, BenchError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let endpoint = endpoint.clone();
                let failed_props = &failed_props;
                scope.spawn(move || {
                    let mut client = Client::connect(&endpoint)
                        .map_err(|e| BenchError(format!("client {c} connect: {e}")))?;
                    let mut lat = Vec::with_capacity(config.requests);
                    for i in 0..config.requests {
                        let start = Instant::now();
                        let report = client
                            .verify(verify_request(), &mut |_| {})
                            .map_err(|e| BenchError(format!("client {c} request {i}: {e}")))?;
                        lat.push(start.elapsed().as_secs_f64() * 1e3);
                        failed_props.fetch_add(report.failures() as u64, Ordering::Relaxed);
                    }
                    Ok(lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(BenchError("client thread panicked".into())))
            })
            .collect()
    });
    let wall_s = storm_start.elapsed().as_secs_f64();
    for result in results {
        latencies_ms.extend(result?);
    }

    // The daemon's own verdict on the storm.
    let stats = {
        let mut probe =
            Client::connect(&endpoint).map_err(|e| BenchError(format!("stats connect: {e}")))?;
        probe
            .stats()
            .map_err(|e| BenchError(format!("stats: {e}")))?
    };
    if let Some(handle) = local {
        handle.stop();
        handle.core().shutdown();
    }
    if let Some(path) = &scratch {
        let _ = std::fs::remove_file(path);
    }

    if failed_props.load(Ordering::Relaxed) > 0 {
        return Err(BenchError(format!(
            "{} propert(y/ies) failed to prove under load",
            failed_props.load(Ordering::Relaxed)
        )));
    }
    if stats.protocol_errors > 0 {
        return Err(BenchError(format!(
            "{} protocol error(s) under load",
            stats.protocol_errors
        )));
    }

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies_ms.len();
    Ok(ServeBench {
        clients: config.clients,
        requests_per_client: config.requests,
        completed,
        wall_s,
        req_per_s: if wall_s > 0.0 {
            completed as f64 / wall_s
        } else {
            0.0
        },
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        stats,
    })
}

/// Renders the storm as human-readable text.
pub fn render_serve(b: &ServeBench) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "serve bench: {} client(s) x {} request(s) in {:.2} s",
        b.clients, b.requests_per_client, b.wall_s
    );
    let _ = writeln!(s, "  sustained:   {:.1} req/s", b.req_per_s);
    let _ = writeln!(
        s,
        "  latency:     p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        b.p50_ms, b.p95_ms, b.p99_ms
    );
    let _ = writeln!(
        s,
        "  server:      {} served, {} busy-rejected, {} protocol error(s), {} connection(s)",
        b.stats.requests_served,
        b.stats.rejected_busy,
        b.stats.protocol_errors,
        b.stats.connections
    );
    s
}

/// Renders the storm as the `BENCH_serve.json` document.
pub fn render_serve_json(b: &ServeBench) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"clients\": {},\n",
            "  \"requests_per_client\": {},\n",
            "  \"completed\": {},\n",
            "  \"wall_s\": {:.3},\n",
            "  \"req_per_s\": {:.1},\n",
            "  \"p50_ms\": {:.2},\n",
            "  \"p95_ms\": {:.2},\n",
            "  \"p99_ms\": {:.2},\n",
            "  \"requests_served\": {},\n",
            "  \"rejected_busy\": {},\n",
            "  \"protocol_errors\": {},\n",
            "  \"connections\": {}\n",
            "}}\n"
        ),
        b.clients,
        b.requests_per_client,
        b.completed,
        b.wall_s,
        b.req_per_s,
        b.p50_ms,
        b.p95_ms,
        b.p99_ms,
        b.stats.requests_served,
        b.stats.rejected_busy,
        b.stats.protocol_errors,
        b.stats.connections
    )
}
