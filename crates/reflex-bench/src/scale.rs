//! The prover-scaling benchmark behind `rx bench scale` and
//! `BENCH_scale.json`.
//!
//! Where the Figure-6 suite measures the paper's seven hand-written
//! kernels (25 ms total), this bench proves the synthetic kernels from
//! [`reflex_kernels::synth`] at the `small`/`medium`/`large` presets and
//! reports *throughput*: proof obligations discharged per second, wall
//! time, and peak RSS. The committed `BENCH_scale.json` pairs each live
//! ("optimized") row with the [`baseline`] row measured on the same
//! machine from `main` before the PR-6 prover optimizations (work-stealing
//! obligation scheduler, read-mostly sharded interner/memo/cache, scratch
//! term arena, O(1) memo fingerprints) landed.
//!
//! Peak RSS is read from `/proc/self/status` `VmHWM` and is monotone over
//! the process lifetime, so presets are measured smallest-first and each
//! row records the high-water mark *after* its run.

use std::time::Instant;

use reflex_kernels::synth::{self, SynthConfig};
use reflex_verify::{check_certificate, prove_all_parallel_with_stats, ProverOptions};

use crate::BenchError;

/// Preset names in measurement (ascending-size) order.
pub const PRESETS: &[&str] = &["small", "medium", "large"];

/// One measured scaling row.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Preset name (`small` / `medium` / `large`).
    pub preset: String,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Ring components in the generated kernel.
    pub components: usize,
    /// Properties proved.
    pub properties: usize,
    /// Total proof obligations across all certificates.
    pub obligations: u64,
    /// End-to-end prove wall-clock, milliseconds.
    pub wall_ms: f64,
    /// `obligations / wall seconds`.
    pub obligations_per_sec: f64,
    /// `VmHWM` after the run, kiB (0 when `/proc` is unavailable).
    pub peak_rss_kb: u64,
}

/// The pre-optimization throughput, measured from `main` (commit
/// `5cacbe6`, seed 1, serial) on the reference container before the PR-6
/// prover work landed. `render_scale_json` pairs these with the live rows
/// so the committed `BENCH_scale.json` always carries its own baseline.
pub fn baseline() -> Vec<ScaleRow> {
    let row = |preset: &str, components, properties, obligations, wall_ms, peak_rss_kb| ScaleRow {
        preset: preset.to_owned(),
        seed: 1,
        jobs: 1,
        components,
        properties,
        obligations,
        wall_ms,
        obligations_per_sec: obligations as f64 / (wall_ms / 1e3),
        peak_rss_kb,
    };
    // Measured by running this bench (serial, seed 1) with the prover as
    // of the baseline commit; note the throughput *collapse* from medium
    // to large — the pre-optimization memo hashed the full assertion log
    // per query, so cost grew quadratically with solver state.
    vec![
        row("small", 6, 24, 1393, 119.2, 7976),
        row("medium", 16, 95, 49999, 3865.8, 177372),
        row("large", 36, 290, 1_410_100, 473_867.5, 13_970_548),
    ]
}

/// Peak resident set size (`VmHWM`) in kiB, or 0 off-Linux.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|n| n.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Proves one generated preset and measures throughput.
///
/// Every property must prove and every certificate must pass the
/// independent checker — a scaling number for a broken prover would be
/// meaningless.
///
/// # Errors
///
/// Returns [`BenchError`] for an unknown preset or any unproved property
/// or rejected certificate.
pub fn run_scale_preset(preset: &str, seed: u64, jobs: usize) -> Result<ScaleRow, BenchError> {
    let cfg = SynthConfig::preset(preset, seed)
        .ok_or_else(|| BenchError(format!("unknown preset `{preset}`")))?;
    let kernel = synth::generate(&cfg);
    let checked = kernel.checked();
    let options = ProverOptions {
        shared_cache: true,
        jobs,
        ..ProverOptions::default()
    };
    let t0 = Instant::now();
    let (results, _stats) = prove_all_parallel_with_stats(&checked, &options, jobs);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut obligations = 0u64;
    for (name, outcome) in &results {
        let cert = outcome
            .certificate()
            .ok_or_else(|| BenchError(format!("{}: {name} failed to prove", kernel.name)))?;
        check_certificate(&checked, cert, &options).map_err(|e| {
            BenchError(format!(
                "{}: {name}: certificate rejected: {e}",
                kernel.name
            ))
        })?;
        obligations += cert.obligation_count() as u64;
    }
    Ok(ScaleRow {
        preset: preset.to_owned(),
        seed,
        jobs: reflex_verify::resolve_jobs(jobs),
        components: cfg.components,
        properties: results.len(),
        obligations,
        wall_ms,
        obligations_per_sec: obligations as f64 / (wall_ms / 1e3),
        peak_rss_kb: peak_rss_kb(),
    })
}

/// Runs the selected presets smallest-first.
///
/// # Errors
///
/// Propagates the first preset failure.
pub fn run_scale(presets: &[&str], seed: u64, jobs: usize) -> Result<Vec<ScaleRow>, BenchError> {
    presets
        .iter()
        .map(|p| run_scale_preset(p, seed, jobs))
        .collect()
}

fn row_json(indent: &str, r: &ScaleRow) -> String {
    format!(
        "{indent}{{\"preset\": \"{}\", \"seed\": {}, \"jobs\": {}, \"components\": {}, \
         \"properties\": {}, \"obligations\": {}, \"wall_ms\": {:.3}, \
         \"obligations_per_sec\": {:.1}, \"peak_rss_kb\": {}}}",
        crate::json_escape(&r.preset),
        r.seed,
        r.jobs,
        r.components,
        r.properties,
        r.obligations,
        r.wall_ms,
        r.obligations_per_sec,
        r.peak_rss_kb,
    )
}

/// Renders `BENCH_scale.json`: baseline rows, the live (optimized) rows,
/// and per-preset speedups (`baseline wall_ms / optimized wall_ms`).
pub fn render_scale_json(optimized: &[ScaleRow]) -> String {
    let base = baseline();
    let baseline_rows: Vec<String> = base.iter().map(|r| row_json("    ", r)).collect();
    let live_rows: Vec<String> = optimized.iter().map(|r| row_json("    ", r)).collect();
    let speedups: Vec<String> = optimized
        .iter()
        .filter_map(|o| {
            base.iter().find(|b| b.preset == o.preset).map(|b| {
                format!(
                    "    {{\"preset\": \"{}\", \"wall_speedup\": {:.2}, \
                     \"throughput_ratio\": {:.2}}}",
                    crate::json_escape(&o.preset),
                    b.wall_ms / o.wall_ms,
                    o.obligations_per_sec / b.obligations_per_sec,
                )
            })
        })
        .collect();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    format!(
        "{{\n  \"suite\": \"scale\",\n  \"cores\": {cores},\n  \
         \"baseline_commit\": \"5cacbe6 (pre-optimization main)\",\n  \
         \"baseline\": [\n{}\n  ],\n  \"optimized\": [\n{}\n  ],\n  \
         \"speedup\": [\n{}\n  ]\n}}\n",
        baseline_rows.join(",\n"),
        live_rows.join(",\n"),
        speedups.join(",\n"),
    )
}

/// Renders the scaling rows as a text table.
pub fn render_scale(rows: &[ScaleRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<8} {:>5} {:>6} {:>7} {:>9} {:>12} {:>12} {:>12}\n",
        "preset", "jobs", "comps", "props", "obl", "wall ms", "obl/s", "rss kb"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>5} {:>6} {:>7} {:>9} {:>12.1} {:>12.1} {:>12}\n",
            r.preset,
            r.jobs,
            r.components,
            r.properties,
            r.obligations,
            r.wall_ms,
            r.obligations_per_sec,
            r.peak_rss_kb
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_preset_measures_and_renders() {
        let row = run_scale_preset("small", 1, 1).expect("small preset proves");
        assert!(row.obligations > 0);
        assert!(row.wall_ms > 0.0);
        let json = render_scale_json(std::slice::from_ref(&row));
        assert!(json.contains("\"suite\": \"scale\""), "{json}");
        assert!(json.contains("\"baseline\""), "{json}");
        assert!(json.contains("\"wall_speedup\""), "{json}");
        let table = render_scale(&[row]);
        assert!(table.contains("small"), "{table}");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        assert!(run_scale_preset("galactic", 1, 1).is_err());
    }
}
