//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§6) against this reproduction.
//!
//! * [`table1`] — benchmark sizes (kernel LoC vs. property LoC), Table 1;
//! * [`run_figure6`] — all 41 properties, proved and certificate-checked,
//!   with wall-clock times next to the paper's (Figure 6);
//! * [`run_ablation`] — the §6.4 optimization ablation (syntactic skip,
//!   path pruning, invariant caching);
//! * [`run_utility`] — the §6.3 seeded-bug / false-policy experiment.
//!
//! The `figures` binary prints these as paper-style text tables; the
//! Criterion benches in `benches/` measure the same workloads with
//! statistical rigor.
//!
//! We do not expect to match the paper's absolute times — their prover is
//! Coq's kernel plus Ltac search, ours is native Rust — but the *shape*
//! must hold: every property verifies automatically, non-interference and
//! invariant-heavy rows are the most expensive, and the optimizations buy
//! large speedups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod incr;
pub mod scale;
pub mod serve;
pub mod soak;
pub mod store;
pub mod stress;

use std::fmt;
use std::time::Instant;

use reflex_driver::{
    BatchItem, NullSink, SessionBatch, SessionConfig, SessionReport, VerifySession,
};
use reflex_kernels::{all_benchmarks, figure6, loc_split};
use reflex_verify::{check_certificate, ProverOptions};

/// A benchmark-harness failure: a property that should verify didn't, a
/// certificate the checker rejected, or a session that failed to run.
///
/// The harness used to panic on these; callers (the `figures` binary, the
/// Criterion benches) now get a typed error and decide the exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError(pub String);

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BenchError {}

/// One measured Figure 6 row.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// The paper row (benchmark, description, paper time).
    pub row: figure6::Row,
    /// Our proof-search wall-clock, milliseconds.
    pub prove_ms: f64,
    /// Certificate-checking wall-clock, milliseconds.
    pub check_ms: f64,
    /// Number of discharged obligations in the certificate.
    pub obligations: usize,
}

/// Validates one benchmark's session report against the paper rows:
/// every Figure 6 property must be proved, every certificate must pass
/// the independent checker (timed here, so `prove_ms` stays pure proof
/// search), and rows come back in `figure6::ROWS` order.
fn rows_from_report(
    bench_name: &str,
    checked: &reflex_typeck::CheckedProgram,
    report: &SessionReport,
    options: &ProverOptions,
) -> Result<Vec<Fig6Result>, BenchError> {
    figure6::ROWS
        .iter()
        .filter(|r| r.benchmark == bench_name)
        .map(|row| {
            let (_, outcome) = report
                .outcomes
                .iter()
                .find(|(name, _)| name == row.property)
                .ok_or_else(|| {
                    BenchError(format!(
                        "{}::{}: property missing from session report",
                        row.benchmark, row.property
                    ))
                })?;
            let cert = outcome.certificate().ok_or_else(|| {
                BenchError(format!(
                    "{}::{} failed: {}",
                    row.benchmark,
                    row.property,
                    outcome
                        .failure()
                        .map(ToString::to_string)
                        .unwrap_or_else(|| "no failure recorded".into())
                ))
            })?;
            let t0 = Instant::now();
            check_certificate(checked, cert, options)
                .map_err(|e| BenchError(format!("{}::{}: {e}", row.benchmark, row.property)))?;
            let check_ms = t0.elapsed().as_secs_f64() * 1e3;
            let prove_ms = report
                .stats
                .properties
                .iter()
                .find(|p| p.name == row.property)
                .map_or(0.0, |p| p.wall_ms);
            Ok(Fig6Result {
                row: *row,
                prove_ms,
                check_ms,
                obligations: cert.obligation_count(),
            })
        })
        .collect()
}

/// Proves (and certificate-checks) all 41 Figure 6 properties, one
/// serial [`VerifySession`] per benchmark (each with its own fresh
/// cross-property cache, exactly as `prove_all` shares subproofs across a
/// program's properties).
///
/// # Errors
///
/// Returns [`BenchError`] if any property fails to verify or any
/// certificate is rejected — the headline claim of the reproduction.
pub fn run_figure6(options: &ProverOptions) -> Result<Vec<Fig6Result>, BenchError> {
    let mut out = Vec::with_capacity(figure6::ROWS.len());
    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        let config = SessionConfig {
            options: options.clone(),
            jobs: 1,
            ..SessionConfig::default()
        };
        // Certificates are checked by `rows_from_report` (timed
        // separately), not inside the session.
        let session = VerifySession::new(config)
            .map_err(|e| BenchError(e.to_string()))?
            .without_certificate_checks();
        let report = session
            .verify_checked(&checked, &NullSink)
            .map_err(|e| BenchError(format!("{}: {e}", bench.name)))?;
        out.extend(rows_from_report(bench.name, &checked, &report, options)?);
    }
    Ok(out)
}

/// [`run_figure6`] with the seven kernels fanned out concurrently through
/// a [`SessionBatch`] over `jobs` worker threads (`0`: one per available
/// CPU). The batch's sessions share the process-global term interner and
/// entailment memo, and each program's cross-property [`reflex_verify::ProofCache`]
/// is shared across its properties; results come back in the same order
/// as [`run_figure6`], with identical outcomes and certificates (cached
/// subproof packages are pure functions of their keys).
///
/// # Errors
///
/// Returns [`BenchError`] if any property fails to verify or any
/// certificate is rejected.
pub fn run_figure6_parallel(
    options: &ProverOptions,
    jobs: usize,
) -> Result<Vec<Fig6Result>, BenchError> {
    let benches = all_benchmarks();
    let config = SessionConfig {
        options: options.clone(),
        jobs,
        ..SessionConfig::default()
    };
    let batch = SessionBatch::new(config)
        .map_err(|e| BenchError(e.to_string()))?
        .without_certificate_checks();
    let items: Vec<BatchItem> = benches
        .iter()
        .map(|b| BatchItem {
            name: b.name.to_owned(),
            source: b.source.to_owned(),
        })
        .collect();
    let reports = batch.verify(&items, &NullSink);
    let mut out = Vec::with_capacity(figure6::ROWS.len());
    for (bench, report) in benches.iter().zip(reports) {
        let report = report.map_err(|e| BenchError(format!("{}: {e}", bench.name)))?;
        let checked = (bench.checked)();
        out.extend(rows_from_report(bench.name, &checked, &report, options)?);
    }
    Ok(out)
}

/// One configuration's measurement inside [`Fig6Bench`].
#[derive(Debug, Clone)]
pub struct Fig6Run {
    /// Configuration label.
    pub label: &'static str,
    /// Whether the cross-property [`ProofCache`] was enabled.
    pub shared_cache: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock over the 41 units, milliseconds.
    pub total_ms: f64,
    /// Per-row measurements, in [`run_figure6`] order.
    pub rows: Vec<Fig6Result>,
}

/// The serial-baseline vs. parallel+shared-cache comparison recorded in
/// `BENCH_fig6.json`.
#[derive(Debug, Clone)]
pub struct Fig6Bench {
    /// CPUs available to this process.
    pub cores: usize,
    /// The serial baseline: one thread, no cross-property cache (the
    /// pre-optimization prover configuration).
    pub serial: Fig6Run,
    /// The optimized run: shared cache on, one worker per core.
    pub parallel: Fig6Run,
    /// `serial.total_ms / parallel.total_ms`.
    pub speedup: f64,
    /// Whether the two runs proved exactly the same properties with the
    /// same obligation counts (they must: the parallel prover is
    /// outcome-identical by construction, and the shared cache splices
    /// byte-identical packages).
    pub outcomes_identical: bool,
}

/// Measures the full fig6 suite serial-baseline vs. parallel+cached.
///
/// `jobs` is the worker count for the parallel arm (`0`: one per
/// available CPU). The arm really runs with — and records — the resolved
/// value, so the speedup row measures what it claims even when the
/// requested count exceeds the core count.
///
/// # Errors
///
/// Returns [`BenchError`] if either run fails to verify every property.
pub fn run_figure6_bench(jobs: usize) -> Result<Fig6Bench, BenchError> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs = reflex_verify::resolve_jobs(jobs);
    let serial_options = ProverOptions {
        shared_cache: false,
        jobs: 1,
        ..ProverOptions::default()
    };
    let t0 = Instant::now();
    let serial_rows = run_figure6(&serial_options)?;
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let parallel_options = ProverOptions {
        shared_cache: true,
        jobs,
        ..ProverOptions::default()
    };
    let t1 = Instant::now();
    let parallel_rows = run_figure6_parallel(&parallel_options, jobs)?;
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let outcomes_identical = serial_rows.len() == parallel_rows.len()
        && serial_rows.iter().zip(&parallel_rows).all(|(a, b)| {
            a.row.benchmark == b.row.benchmark
                && a.row.property == b.row.property
                && a.obligations == b.obligations
        });
    Ok(Fig6Bench {
        cores,
        serial: Fig6Run {
            label: "serial baseline (no shared cache)",
            shared_cache: false,
            jobs: 1,
            total_ms: serial_ms,
            rows: serial_rows,
        },
        parallel: Fig6Run {
            label: "parallel + shared cache",
            shared_cache: true,
            jobs,
            total_ms: parallel_ms,
            rows: parallel_rows,
        },
        speedup: serial_ms / parallel_ms,
        outcomes_identical,
    })
}

pub(crate) fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders a [`Fig6Bench`] as the `BENCH_fig6.json` document.
pub fn render_figure6_bench_json(bench: &Fig6Bench) -> String {
    fn run_json(run: &Fig6Run) -> String {
        let rows: Vec<String> = run
            .rows
            .iter()
            .map(|r| {
                format!(
                    "      {{\"benchmark\": \"{}\", \"property\": \"{}\", \
                     \"prove_ms\": {:.3}, \"check_ms\": {:.3}, \"obligations\": {}}}",
                    json_escape(r.row.benchmark),
                    json_escape(r.row.property),
                    r.prove_ms,
                    r.check_ms,
                    r.obligations
                )
            })
            .collect();
        format!(
            "{{\n    \"label\": \"{}\",\n    \"shared_cache\": {},\n    \
             \"jobs\": {},\n    \"total_ms\": {:.3},\n    \"rows\": [\n{}\n    ]\n  }}",
            json_escape(run.label),
            run.shared_cache,
            run.jobs,
            run.total_ms,
            rows.join(",\n")
        )
    }
    format!(
        "{{\n  \"suite\": \"figure6\",\n  \"properties\": {},\n  \"cores\": {},\n  \
         \"serial\": {},\n  \"parallel\": {},\n  \"speedup\": {:.3},\n  \
         \"outcomes_identical\": {}\n}}\n",
        bench.serial.rows.len(),
        bench.cores,
        run_json(&bench.serial),
        run_json(&bench.parallel),
        bench.speedup,
        bench.outcomes_identical
    )
}

/// Renders Figure 6 as a text table.
pub fn render_figure6(results: &[Fig6Result]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<10} {:<55} {:>9} {:>10} {:>10} {:>6}\n",
        "bench", "policy", "paper(s)", "ours(ms)", "check(ms)", "oblig"
    ));
    s.push_str(&"-".repeat(105));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<10} {:<55} {:>9} {:>10.2} {:>10.2} {:>6}\n",
            r.row.benchmark,
            r.row.description,
            r.row.paper_seconds,
            r.prove_ms,
            r.check_ms,
            r.obligations
        ));
    }
    let total_paper: u32 = results.iter().map(|r| r.row.paper_seconds).sum();
    let total_ours: f64 = results.iter().map(|r| r.prove_ms).sum();
    s.push_str(&"-".repeat(105));
    s.push('\n');
    s.push_str(&format!(
        "{} properties, all proved automatically; paper total {total_paper}s, ours {total_ours:.1}ms\n",
        results.len()
    ));
    s
}

/// One Table 1 row: a benchmark's kernel vs. property line counts.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-empty, non-comment kernel (code) lines.
    pub kernel_loc: usize,
    /// Non-empty, non-comment property lines.
    pub props_loc: usize,
    /// The paper's kernel/property counts for the matching system, if it
    /// reported them (Table 1 covers ssh, browser, webserver).
    pub paper: Option<(usize, usize)>,
}

/// Computes Table 1 (benchmark sizes) over our kernel sources.
pub fn table1() -> Vec<Table1Row> {
    all_benchmarks()
        .into_iter()
        .map(|b| {
            let (kernel_loc, props_loc) = loc_split(b.source);
            let paper = match b.name {
                "ssh" => Some((64, 22)),
                "browser" => Some((81, 37)),
                "webserver" => Some((56, 29)),
                _ => None,
            };
            Table1Row {
                name: b.name,
                kernel_loc,
                props_loc,
                paper,
            }
        })
        .collect()
}

/// Renders Table 1 as a text table.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<11} {:>11} {:>10} {:>14} {:>13}\n",
        "benchmark", "kernel LoC", "props LoC", "paper kernel", "paper props"
    ));
    s.push_str(&"-".repeat(64));
    s.push('\n');
    for r in rows {
        let (pk, pp) = match r.paper {
            Some((k, p)) => (k.to_string(), p.to_string()),
            None => ("-".into(), "-".into()),
        };
        s.push_str(&format!(
            "{:<11} {:>11} {:>10} {:>14} {:>13}\n",
            r.name, r.kernel_loc, r.props_loc, pk, pp
        ));
    }
    s
}

/// One ablation configuration with its total verification time.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Configuration label.
    pub config: &'static str,
    /// The options used.
    pub options: ProverOptions,
    /// Total wall-clock over all 41 properties, milliseconds.
    pub total_ms: f64,
    /// Total certificate obligations (a proof-size proxy for the paper's
    /// memory-reduction claim).
    pub total_obligations: usize,
}

/// The ablation configurations of the §6.4 experiment.
pub fn ablation_configs() -> Vec<(&'static str, ProverOptions)> {
    vec![
        ("all optimizations", ProverOptions::optimized()),
        (
            "no syntactic skip",
            ProverOptions {
                syntactic_skip: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no path pruning",
            ProverOptions {
                prune_paths: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no invariant cache",
            ProverOptions {
                cache_invariants: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no shared cache",
            ProverOptions {
                shared_cache: false,
                ..ProverOptions::default()
            },
        ),
        ("none (unoptimized)", ProverOptions::unoptimized()),
    ]
}

/// Runs the §6.4 ablation: verifies all 41 properties under each
/// configuration.
///
/// # Errors
///
/// Returns [`BenchError`] if any configuration fails to verify every
/// property (disabled optimizations may be slower, never weaker).
pub fn run_ablation() -> Result<Vec<AblationResult>, BenchError> {
    ablation_configs()
        .into_iter()
        .map(|(config, options)| {
            let t0 = Instant::now();
            let results = run_figure6(&options)?;
            let total_ms = t0.elapsed().as_secs_f64() * 1e3;
            Ok(AblationResult {
                config,
                options,
                total_ms,
                total_obligations: results.iter().map(|r| r.obligations).sum(),
            })
        })
        .collect()
}

/// Renders the ablation as a text table with speedups relative to the
/// unoptimized configuration.
pub fn render_ablation(results: &[AblationResult]) -> String {
    let baseline = results
        .iter()
        .find(|r| r.config == "none (unoptimized)")
        .map(|r| r.total_ms)
        .unwrap_or(f64::NAN);
    let mut s = String::new();
    s.push_str(&format!(
        "{:<22} {:>12} {:>9} {:>12}\n",
        "configuration", "total (ms)", "speedup", "obligations"
    ));
    s.push_str(&"-".repeat(60));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<22} {:>12.1} {:>8.1}x {:>12}\n",
            r.config,
            r.total_ms,
            baseline / r.total_ms,
            r.total_obligations
        ));
    }
    s
}

/// One §6.3 utility experiment: a seeded mutation and whether the
/// automation caught it.
#[derive(Debug, Clone)]
pub struct UtilityResult {
    /// What was mutated.
    pub mutation: &'static str,
    /// The property expected to fail.
    pub property: &'static str,
    /// Whether verification (correctly) failed.
    pub caught: bool,
    /// Whether the bounded falsifier found a concrete counterexample.
    pub counterexample: bool,
}

/// Runs the seeded-bug experiment of §6.3 on the benchmark kernels.
///
/// Each mutant goes through a [`VerifySession`] scoped to the property the
/// mutation is expected to break: "caught" means the session reports it
/// unproved. Errors if a mutant no longer parses or typechecks (the seeded
/// edits must stay syntactically valid to be meaningful).
pub fn run_utility() -> Result<Vec<UtilityResult>, BenchError> {
    use reflex_verify::{falsify, FalsifyOptions};
    let cases: Vec<(&'static str, String, &'static str)> = vec![
        (
            "browser: socket handler loses its domain check",
            reflex_kernels::browser::SOURCE.replace(
                "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
                "    send(N, Connect(host));",
            ),
            "SocketsOnlyToOwnDomain",
        ),
        (
            "car: crash handler forgets to latch `crashed`",
            reflex_kernels::car::SOURCE.replace("    crashed = true;\n", ""),
            "NoLockAfterCrash",
        ),
        (
            "ssh: attempts counter reset on success",
            reflex_kernels::ssh::SOURCE.replace(
                "    auth_ok = true;\n  }",
                "    auth_ok = true;\n    attempts = 0;\n  }",
            ),
            "FirstAttemptOnlyOnce",
        ),
        (
            "webserver: duplicate-session guard removed",
            reflex_kernels::webserver::SOURCE.replace(
                "    lookup Client(c : c.user == user) {\n    } else {\n      n <- spawn Client(user);\n    }",
                "    n <- spawn Client(user);",
            ),
            "ClientsNeverDuplicated",
        ),
    ];
    let options = ProverOptions::default();
    cases
        .into_iter()
        .map(|(mutation, src, property)| {
            let program = reflex_parser::parse_program("mutant", &src)
                .map_err(|e| BenchError(format!("{mutation}: mutant no longer parses: {e}")))?;
            let checked = reflex_typeck::check(&program)
                .map_err(|e| BenchError(format!("{mutation}: mutant no longer typechecks: {e}")))?;
            let session = VerifySession::new(SessionConfig {
                options: options.clone(),
                jobs: 1,
                property: Some(property.to_owned()),
                ..SessionConfig::default()
            })
            .map_err(|e| BenchError(format!("{mutation}: {e}")))?
            .without_certificate_checks();
            let report = session
                .verify_checked(&checked, &NullSink)
                .map_err(|e| BenchError(format!("{mutation}: {e}")))?;
            let caught = report.proved() == 0;
            let counterexample = falsify(
                &checked,
                property,
                &FalsifyOptions {
                    max_exchanges: 4,
                    ..FalsifyOptions::default()
                },
            )
            .is_some();
            Ok(UtilityResult {
                mutation,
                property,
                caught,
                counterexample,
            })
        })
        .collect()
}

/// Renders the utility experiment as a text table.
pub fn render_utility(results: &[UtilityResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<55} {:<28} {:>7} {:>8}\n",
        "seeded mutation", "property", "caught", "cex"
    ));
    s.push_str(&"-".repeat(102));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<55} {:<28} {:>7} {:>8}\n",
            r.mutation,
            r.property,
            if r.caught { "yes" } else { "NO" },
            if r.counterexample { "found" } else { "-" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_in_paper_ballpark() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        for r in rows {
            assert!(r.kernel_loc > 10, "{}: {}", r.name, r.kernel_loc);
            assert!(r.props_loc > 3, "{}: {}", r.name, r.props_loc);
            if let Some((pk, pp)) = r.paper {
                // Same order of magnitude as the paper's counts.
                assert!(r.kernel_loc < pk * 3 && r.kernel_loc > pk / 3, "{}", r.name);
                assert!(r.props_loc < pp * 3 && r.props_loc > pp / 3, "{}", r.name);
            }
        }
    }

    #[test]
    fn utility_catches_every_seeded_bug() {
        for r in run_utility().expect("utility mutants verify-able") {
            assert!(r.caught, "{} was not caught", r.mutation);
            assert!(r.counterexample, "{}: no counterexample", r.mutation);
        }
    }
}
