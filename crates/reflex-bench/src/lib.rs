//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§6) against this reproduction.
//!
//! * [`table1`] — benchmark sizes (kernel LoC vs. property LoC), Table 1;
//! * [`run_figure6`] — all 41 properties, proved and certificate-checked,
//!   with wall-clock times next to the paper's (Figure 6);
//! * [`run_ablation`] — the §6.4 optimization ablation (syntactic skip,
//!   path pruning, invariant caching);
//! * [`run_utility`] — the §6.3 seeded-bug / false-policy experiment.
//!
//! The `figures` binary prints these as paper-style text tables; the
//! Criterion benches in `benches/` measure the same workloads with
//! statistical rigor.
//!
//! We do not expect to match the paper's absolute times — their prover is
//! Coq's kernel plus Ltac search, ours is native Rust — but the *shape*
//! must hold: every property verifies automatically, non-interference and
//! invariant-heavy rows are the most expensive, and the optimizations buy
//! large speedups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incr;
pub mod soak;
pub mod stress;

use std::time::Instant;

use reflex_kernels::{all_benchmarks, figure6, loc_split};
use reflex_verify::{check_certificate, prove_with_cache, Abstraction, ProofCache, ProverOptions};

/// One measured Figure 6 row.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// The paper row (benchmark, description, paper time).
    pub row: figure6::Row,
    /// Our proof-search wall-clock, milliseconds.
    pub prove_ms: f64,
    /// Certificate-checking wall-clock, milliseconds.
    pub check_ms: f64,
    /// Number of discharged obligations in the certificate.
    pub obligations: usize,
}

/// Proves (and certificate-checks) all 41 Figure 6 properties.
///
/// # Panics
///
/// Panics if any property fails to verify or any certificate is rejected —
/// the headline claim of the reproduction.
pub fn run_figure6(options: &ProverOptions) -> Vec<Fig6Result> {
    let mut out = Vec::with_capacity(figure6::ROWS.len());
    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        let abs = Abstraction::build(&checked, options);
        // One cross-property cache per benchmark, exactly as `prove_all`
        // shares subproofs across a program's properties.
        let cache = ProofCache::new();
        for row in figure6::ROWS.iter().filter(|r| r.benchmark == bench.name) {
            let t0 = Instant::now();
            let outcome = prove_with_cache(&abs, row.property, options, Some(&cache))
                .expect("property exists");
            let prove_ms = t0.elapsed().as_secs_f64() * 1e3;
            let cert = outcome.certificate().unwrap_or_else(|| {
                panic!(
                    "{}::{} failed: {}",
                    row.benchmark,
                    row.property,
                    outcome.failure().expect("failed")
                )
            });
            let t1 = Instant::now();
            check_certificate(&checked, cert, options)
                .unwrap_or_else(|e| panic!("{}::{}: {e}", row.benchmark, row.property));
            let check_ms = t1.elapsed().as_secs_f64() * 1e3;
            out.push(Fig6Result {
                row: *row,
                prove_ms,
                check_ms,
                obligations: cert.obligation_count(),
            });
        }
    }
    out
}

/// [`run_figure6`] with all 41 `(benchmark, property)` units fanned out
/// over `jobs` worker threads (`0`: one per available CPU) through a
/// global work queue. Each benchmark's abstraction is built once and its
/// properties share one [`ProofCache`]; results come back in the same
/// order as [`run_figure6`], with identical outcomes and certificates
/// (cached subproofs are pure functions of their keys).
///
/// # Panics
///
/// Panics if any property fails to verify or any certificate is rejected.
pub fn run_figure6_parallel(options: &ProverOptions, jobs: usize) -> Vec<Fig6Result> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    };
    let benches = all_benchmarks();
    let checked: Vec<_> = benches.iter().map(|b| (b.checked)()).collect();
    let abses: Vec<_> = checked
        .iter()
        .map(|c| Abstraction::build(c, options))
        .collect();
    let caches: Vec<ProofCache> = benches.iter().map(|_| ProofCache::new()).collect();
    // Work units in `run_figure6` output order.
    let units: Vec<(usize, &figure6::Row)> = benches
        .iter()
        .enumerate()
        .flat_map(|(bi, bench)| {
            figure6::ROWS
                .iter()
                .filter(move |r| r.benchmark == bench.name)
                .map(move |r| (bi, r))
        })
        .collect();
    let slots: Vec<OnceLock<Fig6Result>> = (0..units.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(units.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(bi, row)) = units.get(i) else {
                    break;
                };
                let t0 = Instant::now();
                let outcome =
                    prove_with_cache(&abses[bi], row.property, options, Some(&caches[bi]))
                        .expect("property exists");
                let prove_ms = t0.elapsed().as_secs_f64() * 1e3;
                let cert = outcome.certificate().unwrap_or_else(|| {
                    panic!(
                        "{}::{} failed: {}",
                        row.benchmark,
                        row.property,
                        outcome.failure().expect("failed")
                    )
                });
                let t1 = Instant::now();
                check_certificate(&checked[bi], cert, options)
                    .unwrap_or_else(|e| panic!("{}::{}: {e}", row.benchmark, row.property));
                let check_ms = t1.elapsed().as_secs_f64() * 1e3;
                let _ = slots[i].set(Fig6Result {
                    row: *row,
                    prove_ms,
                    check_ms,
                    obligations: cert.obligation_count(),
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every fig6 slot filled"))
        .collect()
}

/// One configuration's measurement inside [`Fig6Bench`].
#[derive(Debug, Clone)]
pub struct Fig6Run {
    /// Configuration label.
    pub label: &'static str,
    /// Whether the cross-property [`ProofCache`] was enabled.
    pub shared_cache: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock over the 41 units, milliseconds.
    pub total_ms: f64,
    /// Per-row measurements, in [`run_figure6`] order.
    pub rows: Vec<Fig6Result>,
}

/// The serial-baseline vs. parallel+shared-cache comparison recorded in
/// `BENCH_fig6.json`.
#[derive(Debug, Clone)]
pub struct Fig6Bench {
    /// CPUs available to this process.
    pub cores: usize,
    /// The serial baseline: one thread, no cross-property cache (the
    /// pre-optimization prover configuration).
    pub serial: Fig6Run,
    /// The optimized run: shared cache on, one worker per core.
    pub parallel: Fig6Run,
    /// `serial.total_ms / parallel.total_ms`.
    pub speedup: f64,
    /// Whether the two runs proved exactly the same properties with the
    /// same obligation counts (they must: the parallel prover is
    /// outcome-identical by construction, and the shared cache splices
    /// byte-identical packages).
    pub outcomes_identical: bool,
}

/// Measures the full fig6 suite serial-baseline vs. parallel+cached.
pub fn run_figure6_bench() -> Fig6Bench {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let serial_options = ProverOptions {
        shared_cache: false,
        jobs: 1,
        ..ProverOptions::default()
    };
    let t0 = Instant::now();
    let serial_rows = run_figure6(&serial_options);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let parallel_options = ProverOptions {
        shared_cache: true,
        jobs: cores,
        ..ProverOptions::default()
    };
    let t1 = Instant::now();
    let parallel_rows = run_figure6_parallel(&parallel_options, cores);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let outcomes_identical = serial_rows.len() == parallel_rows.len()
        && serial_rows.iter().zip(&parallel_rows).all(|(a, b)| {
            a.row.benchmark == b.row.benchmark
                && a.row.property == b.row.property
                && a.obligations == b.obligations
        });
    Fig6Bench {
        cores,
        serial: Fig6Run {
            label: "serial baseline (no shared cache)",
            shared_cache: false,
            jobs: 1,
            total_ms: serial_ms,
            rows: serial_rows,
        },
        parallel: Fig6Run {
            label: "parallel + shared cache",
            shared_cache: true,
            jobs: cores,
            total_ms: parallel_ms,
            rows: parallel_rows,
        },
        speedup: serial_ms / parallel_ms,
        outcomes_identical,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders a [`Fig6Bench`] as the `BENCH_fig6.json` document.
pub fn render_figure6_bench_json(bench: &Fig6Bench) -> String {
    fn run_json(run: &Fig6Run) -> String {
        let rows: Vec<String> = run
            .rows
            .iter()
            .map(|r| {
                format!(
                    "      {{\"benchmark\": \"{}\", \"property\": \"{}\", \
                     \"prove_ms\": {:.3}, \"check_ms\": {:.3}, \"obligations\": {}}}",
                    json_escape(r.row.benchmark),
                    json_escape(r.row.property),
                    r.prove_ms,
                    r.check_ms,
                    r.obligations
                )
            })
            .collect();
        format!(
            "{{\n    \"label\": \"{}\",\n    \"shared_cache\": {},\n    \
             \"jobs\": {},\n    \"total_ms\": {:.3},\n    \"rows\": [\n{}\n    ]\n  }}",
            json_escape(run.label),
            run.shared_cache,
            run.jobs,
            run.total_ms,
            rows.join(",\n")
        )
    }
    format!(
        "{{\n  \"suite\": \"figure6\",\n  \"properties\": {},\n  \"cores\": {},\n  \
         \"serial\": {},\n  \"parallel\": {},\n  \"speedup\": {:.3},\n  \
         \"outcomes_identical\": {}\n}}\n",
        bench.serial.rows.len(),
        bench.cores,
        run_json(&bench.serial),
        run_json(&bench.parallel),
        bench.speedup,
        bench.outcomes_identical
    )
}

/// Renders Figure 6 as a text table.
pub fn render_figure6(results: &[Fig6Result]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<10} {:<55} {:>9} {:>10} {:>10} {:>6}\n",
        "bench", "policy", "paper(s)", "ours(ms)", "check(ms)", "oblig"
    ));
    s.push_str(&"-".repeat(105));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<10} {:<55} {:>9} {:>10.2} {:>10.2} {:>6}\n",
            r.row.benchmark,
            r.row.description,
            r.row.paper_seconds,
            r.prove_ms,
            r.check_ms,
            r.obligations
        ));
    }
    let total_paper: u32 = results.iter().map(|r| r.row.paper_seconds).sum();
    let total_ours: f64 = results.iter().map(|r| r.prove_ms).sum();
    s.push_str(&"-".repeat(105));
    s.push('\n');
    s.push_str(&format!(
        "{} properties, all proved automatically; paper total {total_paper}s, ours {total_ours:.1}ms\n",
        results.len()
    ));
    s
}

/// One Table 1 row: a benchmark's kernel vs. property line counts.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Non-empty, non-comment kernel (code) lines.
    pub kernel_loc: usize,
    /// Non-empty, non-comment property lines.
    pub props_loc: usize,
    /// The paper's kernel/property counts for the matching system, if it
    /// reported them (Table 1 covers ssh, browser, webserver).
    pub paper: Option<(usize, usize)>,
}

/// Computes Table 1 (benchmark sizes) over our kernel sources.
pub fn table1() -> Vec<Table1Row> {
    all_benchmarks()
        .into_iter()
        .map(|b| {
            let (kernel_loc, props_loc) = loc_split(b.source);
            let paper = match b.name {
                "ssh" => Some((64, 22)),
                "browser" => Some((81, 37)),
                "webserver" => Some((56, 29)),
                _ => None,
            };
            Table1Row {
                name: b.name,
                kernel_loc,
                props_loc,
                paper,
            }
        })
        .collect()
}

/// Renders Table 1 as a text table.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<11} {:>11} {:>10} {:>14} {:>13}\n",
        "benchmark", "kernel LoC", "props LoC", "paper kernel", "paper props"
    ));
    s.push_str(&"-".repeat(64));
    s.push('\n');
    for r in rows {
        let (pk, pp) = match r.paper {
            Some((k, p)) => (k.to_string(), p.to_string()),
            None => ("-".into(), "-".into()),
        };
        s.push_str(&format!(
            "{:<11} {:>11} {:>10} {:>14} {:>13}\n",
            r.name, r.kernel_loc, r.props_loc, pk, pp
        ));
    }
    s
}

/// One ablation configuration with its total verification time.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Configuration label.
    pub config: &'static str,
    /// The options used.
    pub options: ProverOptions,
    /// Total wall-clock over all 41 properties, milliseconds.
    pub total_ms: f64,
    /// Total certificate obligations (a proof-size proxy for the paper's
    /// memory-reduction claim).
    pub total_obligations: usize,
}

/// The ablation configurations of the §6.4 experiment.
pub fn ablation_configs() -> Vec<(&'static str, ProverOptions)> {
    vec![
        ("all optimizations", ProverOptions::optimized()),
        (
            "no syntactic skip",
            ProverOptions {
                syntactic_skip: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no path pruning",
            ProverOptions {
                prune_paths: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no invariant cache",
            ProverOptions {
                cache_invariants: false,
                ..ProverOptions::default()
            },
        ),
        (
            "no shared cache",
            ProverOptions {
                shared_cache: false,
                ..ProverOptions::default()
            },
        ),
        ("none (unoptimized)", ProverOptions::unoptimized()),
    ]
}

/// Runs the §6.4 ablation: verifies all 41 properties under each
/// configuration.
pub fn run_ablation() -> Vec<AblationResult> {
    ablation_configs()
        .into_iter()
        .map(|(config, options)| {
            let t0 = Instant::now();
            let results = run_figure6(&options);
            let total_ms = t0.elapsed().as_secs_f64() * 1e3;
            AblationResult {
                config,
                options,
                total_ms,
                total_obligations: results.iter().map(|r| r.obligations).sum(),
            }
        })
        .collect()
}

/// Renders the ablation as a text table with speedups relative to the
/// unoptimized configuration.
pub fn render_ablation(results: &[AblationResult]) -> String {
    let baseline = results
        .iter()
        .find(|r| r.config == "none (unoptimized)")
        .map(|r| r.total_ms)
        .unwrap_or(f64::NAN);
    let mut s = String::new();
    s.push_str(&format!(
        "{:<22} {:>12} {:>9} {:>12}\n",
        "configuration", "total (ms)", "speedup", "obligations"
    ));
    s.push_str(&"-".repeat(60));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<22} {:>12.1} {:>8.1}x {:>12}\n",
            r.config,
            r.total_ms,
            baseline / r.total_ms,
            r.total_obligations
        ));
    }
    s
}

/// One §6.3 utility experiment: a seeded mutation and whether the
/// automation caught it.
#[derive(Debug, Clone)]
pub struct UtilityResult {
    /// What was mutated.
    pub mutation: &'static str,
    /// The property expected to fail.
    pub property: &'static str,
    /// Whether verification (correctly) failed.
    pub caught: bool,
    /// Whether the bounded falsifier found a concrete counterexample.
    pub counterexample: bool,
}

/// Runs the seeded-bug experiment of §6.3 on the benchmark kernels.
pub fn run_utility() -> Vec<UtilityResult> {
    use reflex_verify::{falsify, prove, FalsifyOptions};
    let cases: Vec<(&'static str, String, &'static str)> = vec![
        (
            "browser: socket handler loses its domain check",
            reflex_kernels::browser::SOURCE.replace(
                "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
                "    send(N, Connect(host));",
            ),
            "SocketsOnlyToOwnDomain",
        ),
        (
            "car: crash handler forgets to latch `crashed`",
            reflex_kernels::car::SOURCE.replace("    crashed = true;\n", ""),
            "NoLockAfterCrash",
        ),
        (
            "ssh: attempts counter reset on success",
            reflex_kernels::ssh::SOURCE.replace(
                "    auth_ok = true;\n  }",
                "    auth_ok = true;\n    attempts = 0;\n  }",
            ),
            "FirstAttemptOnlyOnce",
        ),
        (
            "webserver: duplicate-session guard removed",
            reflex_kernels::webserver::SOURCE.replace(
                "    lookup Client(c : c.user == user) {\n    } else {\n      n <- spawn Client(user);\n    }",
                "    n <- spawn Client(user);",
            ),
            "ClientsNeverDuplicated",
        ),
    ];
    let options = ProverOptions::default();
    cases
        .into_iter()
        .map(|(mutation, src, property)| {
            let program = reflex_parser::parse_program("mutant", &src).expect("mutant parses");
            let checked = reflex_typeck::check(&program).expect("mutant checks");
            let caught = !prove(&checked, property, &options)
                .expect("property exists")
                .is_proved();
            let counterexample = falsify(
                &checked,
                property,
                &FalsifyOptions {
                    max_exchanges: 4,
                    ..FalsifyOptions::default()
                },
            )
            .is_some();
            UtilityResult {
                mutation,
                property,
                caught,
                counterexample,
            }
        })
        .collect()
}

/// Renders the utility experiment as a text table.
pub fn render_utility(results: &[UtilityResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<55} {:<28} {:>7} {:>8}\n",
        "seeded mutation", "property", "caught", "cex"
    ));
    s.push_str(&"-".repeat(102));
    s.push('\n');
    for r in results {
        s.push_str(&format!(
            "{:<55} {:<28} {:>7} {:>8}\n",
            r.mutation,
            r.property,
            if r.caught { "yes" } else { "NO" },
            if r.counterexample { "found" } else { "-" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_in_paper_ballpark() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        for r in rows {
            assert!(r.kernel_loc > 10, "{}: {}", r.name, r.kernel_loc);
            assert!(r.props_loc > 3, "{}: {}", r.name, r.props_loc);
            if let Some((pk, pp)) = r.paper {
                // Same order of magnitude as the paper's counts.
                assert!(r.kernel_loc < pk * 3 && r.kernel_loc > pk / 3, "{}", r.name);
                assert!(r.props_loc < pp * 3 && r.props_loc > pp / 3, "{}", r.name);
            }
        }
    }

    #[test]
    fn utility_catches_every_seeded_bug() {
        for r in run_utility() {
            assert!(r.caught, "{} was not caught", r.mutation);
            assert!(r.counterexample, "{}: no counterexample", r.mutation);
        }
    }
}
