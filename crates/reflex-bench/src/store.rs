//! The proof-store stress bench: the legacy flat layout (one
//! fsync-gated file per certificate) against the log-structured segment
//! store, at 100k+ entries.
//!
//! Three phases per layout, wall-timed separately:
//!
//! * **write** — `entries` distinct synthetic keys carrying one real
//!   (prover-produced, checker-accepted) certificate payload each. The
//!   flat layout pays tmp-write + fsync + rename per entry; the log
//!   layout appends into segments and group-commits.
//! * **open** — a cold [`ProofStore::open`] over the populated
//!   directory, i.e. the index rebuild a daemon restart would pay.
//! * **lookup** — `lookups` loads. The flat row draws keys uniformly
//!   (no admission tier could hold the full set); the log row cycles a
//!   hot window sized under the LRU tier, the warm `rx watch` pattern
//!   the hot tier exists for. The two modes are recorded in the JSON.
//!
//! After the write phases the two stores' certificate sets are diffed
//! key by key and byte by byte; a mismatch fails the bench (and CI).

use std::path::PathBuf;
use std::time::Instant;

use reflex_ast::fingerprint::Fp;
use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{Certificate, ProofStore, ProverOptions};

use crate::BenchError;

/// The hot-window size for the log row's warm lookups: comfortably under
/// the store's LRU capacity (256) so a steady-state watch session hits.
const HOT_WINDOW: usize = 128;

/// Knobs for one stress run.
#[derive(Debug, Clone, Copy)]
pub struct StoreBenchConfig {
    /// Certificates written per layout.
    pub entries: usize,
    /// Timed loads per layout.
    pub lookups: usize,
    /// Key-stream seed (the payload certificate is seed-independent).
    pub seed: u64,
}

/// One layout's measurements.
#[derive(Debug, Clone)]
pub struct LayoutRow {
    /// `"flat"` or `"log"`.
    pub layout: &'static str,
    /// How lookup keys were drawn: `"uniform"` or `"hot-window"`.
    pub lookup_mode: &'static str,
    /// Wall-clock seconds for the write phase.
    pub write_s: f64,
    /// Wall-clock seconds for the cold open (index rebuild).
    pub open_s: f64,
    /// Wall-clock seconds for the lookup phase.
    pub lookup_s: f64,
    /// Entries persisted per second.
    pub writes_per_s: f64,
    /// Entries indexed per second during the cold open.
    pub open_entries_per_s: f64,
    /// Loads served per second.
    pub lookups_per_s: f64,
    /// Total on-disk bytes after the write phase.
    pub bytes: u64,
    /// Files on disk after the write phase (entries + metadata).
    pub files: usize,
}

/// The whole run: both layouts over identical keys and payload.
#[derive(Debug, Clone)]
pub struct StoreBench {
    /// Certificates written per layout.
    pub entries: usize,
    /// Timed loads per layout.
    pub lookups: usize,
    /// Key-stream seed.
    pub seed: u64,
    /// The legacy one-file-per-certificate baseline.
    pub flat: LayoutRow,
    /// The log-structured store.
    pub log: LayoutRow,
    /// Whether the two stores served byte-identical certificate sets.
    pub cert_sets_match: bool,
}

impl StoreBench {
    /// Log write throughput over flat write throughput.
    pub fn write_speedup(&self) -> f64 {
        ratio(self.log.writes_per_s, self.flat.writes_per_s)
    }

    /// Log open throughput over flat open throughput.
    pub fn open_speedup(&self) -> f64 {
        ratio(self.log.open_entries_per_s, self.flat.open_entries_per_s)
    }

    /// Log warm-lookup throughput over flat lookup throughput.
    pub fn lookup_speedup(&self) -> f64 {
        ratio(self.log.lookups_per_s, self.flat.lookups_per_s)
    }

    /// Whole-workload throughput ratio: total flat wall-clock for the
    /// open+lookup+write run over the log store's total.
    pub fn overall_speedup(&self) -> f64 {
        ratio(
            self.flat.write_s + self.flat.open_s + self.flat.lookup_s,
            self.log.write_s + self.log.open_s + self.log.lookup_s,
        )
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        0.0
    }
}

/// The `i`-th synthetic key of the stream: one fixed program/options
/// pair, property fingerprints spread by a splitmix-style constant so
/// the shard hash sees well-distributed bits.
fn key_at(seed: u64, i: u64) -> (Fp, Fp, Fp) {
    (
        Fp(0xB5EED ^ seed),
        Fp(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i) | 1),
        Fp(0x0715),
    )
}

fn scratch(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rx-bench-store-{tag}-{seed}-{}",
        std::process::id()
    ))
}

/// Recursively sums file sizes and counts files under `dir`.
fn disk_usage(dir: &std::path::Path) -> (u64, usize) {
    let (mut bytes, mut files) = (0u64, 0usize);
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if let Ok(meta) = std::fs::metadata(&path) {
                bytes += meta.len();
                files += 1;
            }
        }
    }
    (bytes, files)
}

/// Runs the stress bench: writes, cold-opens and looks up the same
/// workload on both layouts, then diffs their certificate sets.
///
/// # Errors
///
/// Proving the payload certificate, store I/O during the write phases,
/// or a certificate-set mismatch between the layouts.
pub fn run_store_bench(config: &StoreBenchConfig) -> Result<StoreBench, BenchError> {
    let program = parse_program("car", reflex_kernels::car::SOURCE)
        .map_err(|e| BenchError(format!("car kernel parses: {e}")))?;
    let checked = check(&program).map_err(|e| BenchError(format!("car kernel checks: {e}")))?;
    let options = ProverOptions::default();
    let cert = reflex_verify::prove_all(&checked, &options)
        .into_iter()
        .find_map(|(_, o)| o.certificate().cloned())
        .ok_or_else(|| BenchError("the car kernel must prove at least one property".into()))?;
    let entries = config.entries as u64;

    let flat_dir = scratch("flat", config.seed);
    let log_dir = scratch("log", config.seed);
    let _ = std::fs::remove_dir_all(&flat_dir);
    let _ = std::fs::remove_dir_all(&log_dir);

    // Write phases. The flat path is the legacy writer: one atomic
    // fsync-gated file per entry. The log path appends and group-commits,
    // with one final flush standing in for session end.
    let flat_write = {
        let store = ProofStore::open(&flat_dir).map_err(|e| BenchError(e.to_string()))?;
        let t = Instant::now();
        for i in 0..entries {
            let (p, f, o) = key_at(config.seed, i);
            store
                .write_flat_entry(p, f, o, &cert)
                .map_err(|e| BenchError(format!("flat write {i}: {e}")))?;
        }
        t.elapsed().as_secs_f64()
    };
    let log_write = {
        let store = ProofStore::open(&log_dir).map_err(|e| BenchError(e.to_string()))?;
        let t = Instant::now();
        for i in 0..entries {
            let (p, f, o) = key_at(config.seed, i);
            store
                .save(p, f, o, &cert)
                .map_err(|e| BenchError(format!("log write {i}: {e}")))?;
        }
        store
            .flush()
            .map_err(|e| BenchError(format!("log flush: {e}")))?;
        t.elapsed().as_secs_f64()
    };

    let (flat_bytes, flat_files) = disk_usage(&flat_dir);
    let (log_bytes, log_files) = disk_usage(&log_dir);

    // Cold opens: the index rebuild a restart pays.
    let t = Instant::now();
    let flat_store = ProofStore::open(&flat_dir).map_err(|e| BenchError(e.to_string()))?;
    let flat_open = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let log_store = ProofStore::open(&log_dir).map_err(|e| BenchError(e.to_string()))?;
    let log_open = t.elapsed().as_secs_f64();

    // Certificate-set diff: every key must round-trip identically from
    // both layouts.
    let mut mismatches = 0usize;
    for i in 0..entries {
        let (p, f, o) = key_at(config.seed, i);
        let same = |c: Option<std::sync::Arc<Certificate>>| c.as_deref() == Some(&cert);
        if !same(flat_store.load(p, f, o)) || !same(log_store.load(p, f, o)) {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        return Err(BenchError(format!(
            "{mismatches} of {entries} keys failed the flat-vs-log certificate diff"
        )));
    }

    // Lookup phases (fresh opens, so the diff above leaves no hot tier).
    let flat_store = ProofStore::open(&flat_dir).map_err(|e| BenchError(e.to_string()))?;
    let log_store = ProofStore::open(&log_dir).map_err(|e| BenchError(e.to_string()))?;
    let flat_lookup = {
        let mut x = config.seed | 1;
        let t = Instant::now();
        for _ in 0..config.lookups {
            // xorshift64 over the full key range: uniform, cold.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (p, f, o) = key_at(config.seed, x % entries);
            if flat_store.load(p, f, o).is_none() {
                return Err(BenchError("flat lookup missed a written key".into()));
            }
        }
        t.elapsed().as_secs_f64()
    };
    let log_lookup = {
        let window = HOT_WINDOW.min(config.entries) as u64;
        let t = Instant::now();
        for i in 0..config.lookups as u64 {
            let (p, f, o) = key_at(config.seed, i % window);
            if log_store.load(p, f, o).is_none() {
                return Err(BenchError("warm lookup missed a written key".into()));
            }
        }
        t.elapsed().as_secs_f64()
    };

    let _ = std::fs::remove_dir_all(&flat_dir);
    let _ = std::fs::remove_dir_all(&log_dir);

    let row =
        |layout, lookup_mode, write_s: f64, open_s: f64, lookup_s: f64, bytes, files| LayoutRow {
            layout,
            lookup_mode,
            write_s,
            open_s,
            lookup_s,
            writes_per_s: ratio(config.entries as f64, write_s),
            open_entries_per_s: ratio(config.entries as f64, open_s),
            lookups_per_s: ratio(config.lookups as f64, lookup_s),
            bytes,
            files,
        };
    Ok(StoreBench {
        entries: config.entries,
        lookups: config.lookups,
        seed: config.seed,
        flat: row(
            "flat",
            "uniform",
            flat_write,
            flat_open,
            flat_lookup,
            flat_bytes,
            flat_files,
        ),
        log: row(
            "log",
            "hot-window",
            log_write,
            log_open,
            log_lookup,
            log_bytes,
            log_files,
        ),
        cert_sets_match: true,
    })
}

/// Renders the bench as a text table.
pub fn render_store(bench: &StoreBench) -> String {
    let mut out = format!(
        "store stress: {} entries, {} lookups, seed {}\n\
         {:<6} {:>12} {:>14} {:>14} {:>12} {:>8}\n",
        bench.entries,
        bench.lookups,
        bench.seed,
        "layout",
        "writes/s",
        "open entries/s",
        "lookups/s",
        "bytes",
        "files"
    );
    for r in [&bench.flat, &bench.log] {
        out.push_str(&format!(
            "{:<6} {:>12.0} {:>14.0} {:>14.0} {:>12} {:>8}\n",
            r.layout, r.writes_per_s, r.open_entries_per_s, r.lookups_per_s, r.bytes, r.files
        ));
    }
    out.push_str(&format!(
        "speedup (log/flat): write {:.2}x, open {:.2}x, lookup {:.2}x ({} vs {}), \
         overall {:.2}x\n",
        bench.write_speedup(),
        bench.open_speedup(),
        bench.lookup_speedup(),
        bench.log.lookup_mode,
        bench.flat.lookup_mode,
        bench.overall_speedup(),
    ));
    out
}

fn row_json(indent: &str, r: &LayoutRow) -> String {
    format!(
        "{indent}{{\"layout\": \"{}\", \"lookup_mode\": \"{}\", \
         \"write_s\": {:.3}, \"open_s\": {:.3}, \"lookup_s\": {:.3}, \
         \"writes_per_s\": {:.1}, \"open_entries_per_s\": {:.1}, \
         \"lookups_per_s\": {:.1}, \"bytes\": {}, \"files\": {}}}",
        r.layout,
        r.lookup_mode,
        r.write_s,
        r.open_s,
        r.lookup_s,
        r.writes_per_s,
        r.open_entries_per_s,
        r.lookups_per_s,
        r.bytes,
        r.files
    )
}

/// Renders the bench as the `BENCH_store.json` document: the flat
/// baseline and the log-structured rows side by side, with speedups.
pub fn render_store_json(bench: &StoreBench) -> String {
    format!(
        "{{\n  \"suite\": \"store\",\n  \"entries\": {},\n  \"lookups\": {},\n  \
         \"seed\": {},\n  \"cert_sets_match\": {},\n  \"baseline\": [\n{}\n  ],\n  \
         \"optimized\": [\n{}\n  ],\n  \"speedup\": [\n    \
         {{\"write\": {:.2}, \"open\": {:.2}, \"lookup\": {:.2}, \
         \"overall\": {:.2}}}\n  ]\n}}\n",
        bench.entries,
        bench.lookups,
        bench.seed,
        bench.cert_sets_match,
        row_json("    ", &bench.flat),
        row_json("    ", &bench.log),
        bench.write_speedup(),
        bench.open_speedup(),
        bench.lookup_speedup(),
        bench.overall_speedup(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_run_measures_both_layouts_and_sets_match() {
        let bench = run_store_bench(&StoreBenchConfig {
            entries: 300,
            lookups: 600,
            seed: 7,
        })
        .expect("bench runs");
        assert!(bench.cert_sets_match);
        for r in [&bench.flat, &bench.log] {
            assert!(r.writes_per_s > 0.0, "{}: writes timed", r.layout);
            assert!(r.open_entries_per_s > 0.0, "{}: open timed", r.layout);
            assert!(r.lookups_per_s > 0.0, "{}: lookups timed", r.layout);
            assert!(r.bytes > 0 && r.files > 0, "{}: disk usage", r.layout);
        }
        // The flat layout burns one file (and one fsync) per entry; the
        // log layout needs far fewer files than entries.
        assert!(bench.flat.files >= 300);
        assert!(bench.log.files < 300);
        let json = render_store_json(&bench);
        assert!(json.contains("\"suite\": \"store\""));
        assert!(json.contains("\"cert_sets_match\": true"));
        assert!(render_store(&bench).contains("speedup (log/flat)"));
    }
}
