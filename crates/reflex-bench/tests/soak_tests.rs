//! Integration tests for the supervised-runtime soak harness:
//! determinism of fault injection and recovery, transparency of the
//! runtime monitor, and the monitor's ability to catch a real
//! (deliberately introduced) supervision-visible kernel bug.

use reflex_bench::soak::{run_soak, soak_kernel, SoakConfig};
use reflex_kernels::all_benchmarks;
use reflex_runtime::{
    EmptyWorld, FaultPlan, MonitorError, Registry, SupStep, Supervisor, SupervisorConfig,
    SupervisorError,
};
use reflex_trace::Msg;

fn fingerprints(cfg: &SoakConfig) -> Vec<(String, u64, u64)> {
    run_soak(cfg)
        .into_iter()
        .map(|o| {
            assert!(o.failure.is_none(), "{}: {:?}", o.kernel, o.failure);
            assert_eq!(o.unrecovered, 0, "{}: components left crashed", o.kernel);
            (o.kernel, o.trace_fingerprint, o.incident_fingerprint)
        })
        .collect()
}

#[test]
fn soak_is_deterministic_across_runs_and_job_counts() {
    let base = SoakConfig {
        steps: 250,
        seed: 11,
        ..SoakConfig::default()
    };
    let serial = fingerprints(&SoakConfig { jobs: 1, ..base });
    let parallel = fingerprints(&SoakConfig { jobs: 4, ..base });
    let again = fingerprints(&SoakConfig { jobs: 2, ..base });
    assert_eq!(serial, parallel, "jobs must not affect outcomes");
    assert_eq!(serial, again, "repeat runs must be byte-identical");
    // And a different seed must actually change the executions.
    let reseeded = fingerprints(&SoakConfig {
        seed: 12,
        jobs: 1,
        ..base
    });
    assert_ne!(serial, reseeded, "the seed must matter");
}

#[test]
fn monitor_is_transparent_to_the_execution() {
    // The monitor is a pure observer: switching it off must not change
    // the committed trace or the incident log of any kernel.
    let monitored = SoakConfig {
        steps: 250,
        seed: 5,
        monitor: true,
        jobs: 2,
        ..SoakConfig::default()
    };
    let unmonitored = SoakConfig {
        monitor: false,
        ..monitored
    };
    assert_eq!(fingerprints(&monitored), fingerprints(&unmonitored));
}

#[test]
fn every_kernel_survives_a_hostile_fault_schedule() {
    // Much higher fault rates than the default soak: roughly one injected
    // fault op every three exchanges plus frequent spontaneous call
    // faults. Everything must still recover and stay certified.
    let cfg = SoakConfig {
        steps: 300,
        seed: 3,
        fault_rate: 0.3,
        world_fault_rate: 0.2,
        monitor: true,
        jobs: 0,
    };
    for (i, bench) in all_benchmarks().iter().enumerate() {
        let o = soak_kernel(bench, &cfg, i);
        assert!(o.failure.is_none(), "{}: {:?}", o.kernel, o.failure);
        assert_eq!(o.unrecovered, 0, "{}: components left crashed", o.kernel);
        assert!(
            o.incidents > 0,
            "{}: hostile schedule never fired",
            o.kernel
        );
    }
}

/// The acceptance scenario from the issue: delete the `crashed = true;`
/// latch from the car kernel's `Engine:Crash()` handler, so a later
/// `Radio:LockReq()` re-locks the doors after a crash — violating the
/// verified property `NoLockAfterCrash: [Recv(Engine(), Crash())]
/// Disables [Send(Doors(), Lock())]`. The runtime monitor must halt the
/// supervised run and report the index of the forbidden `Lock` send.
#[test]
fn monitor_catches_a_property_violating_handler_mutation() {
    let benches = all_benchmarks();
    let car = benches.iter().find(|b| b.name == "car").expect("bundled");
    assert!(car.source.contains("crashed = true;"), "latch moved?");
    let mutated = car.source.replace("crashed = true;", "");
    let program = reflex_parser::parse_program("car_mutated", &mutated).expect("parses");
    let checked = reflex_typeck::check(&program).expect("well-formed");

    let drive = |checked: &reflex_typeck::CheckedProgram| {
        let mut sup = Supervisor::new(
            checked,
            Registry::new(),
            Box::new(EmptyWorld),
            0,
            FaultPlan::none(),
            SupervisorConfig::default(),
        )
        .expect("boots");
        let engine = sup.interpreter().components_of("Engine")[0].id;
        let radio = sup.interpreter().components_of("Radio")[0].id;
        sup.inject(engine, Msg::new("Crash", [])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
        sup.inject(radio, Msg::new("LockReq", [])).unwrap();
        let committed = sup.trace().len();
        (sup.step(), committed)
    };

    // The intact kernel serves the same workload without complaint...
    let intact = reflex_typeck::check(&(car.program)()).expect("well-formed");
    let (ok, _) = drive(&intact);
    assert!(matches!(ok, Ok(SupStep::Serviced(_))), "{ok:?}");

    // ...the mutated one is halted by the monitor at the forbidden send.
    let (err, committed) = drive(&checked);
    let err = match err {
        Err(SupervisorError::Monitor(e)) => e,
        other => panic!("expected a monitor violation, got {other:?}"),
    };
    match &err {
        MonitorError::Property { name, .. } => assert_eq!(name, "NoLockAfterCrash"),
        other => panic!("expected a property violation, got {other:?}"),
    }
    // The violating exchange appends Select, Recv(LockReq), Send(Lock):
    // the forbidden Lock lands two actions past the committed prefix.
    assert_eq!(err.action_index(), Some(committed + 2), "{err}");
}
