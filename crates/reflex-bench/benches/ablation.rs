//! Criterion benches for the §6.4 optimization ablation: total
//! verification time for a representative set of properties under each
//! prover configuration. The paper reports 80× average speedup (over
//! 1000× on some benchmarks) from these optimizations.

use criterion::{criterion_group, criterion_main, Criterion};
use reflex_bench::ablation_configs;
use reflex_verify::{prove_with, Abstraction};

/// The invariant-heavy rows, where the optimizations matter most.
const WORKLOAD: [(&str, &str); 5] = [
    ("ssh", "SecondAttemptOnlyOnce"),
    ("ssh", "LoginEnablesPty"),
    ("browser", "UniqueTabIds"),
    ("browser", "DomainNI"),
    ("car", "NoLockAfterCrash"),
];

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (config, options) in ablation_configs() {
        // Pre-check and pre-parse outside the timed region; abstraction
        // construction is configuration-dependent, so it stays inside.
        let kernels: Vec<_> = WORKLOAD
            .iter()
            .map(|(k, p)| {
                let bench = reflex_kernels::benchmark(k).expect("kernel exists");
                ((bench.checked)(), *p)
            })
            .collect();
        group.bench_function(config, |b| {
            b.iter(|| {
                for (checked, prop) in &kernels {
                    let abs = Abstraction::build(checked, &options);
                    let outcome = prove_with(&abs, prop, &options).expect("exists");
                    assert!(outcome.is_proved(), "{prop} must verify under {config}");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(ablation_benches, ablation);
criterion_main!(ablation_benches);
