//! Criterion benches for the pipeline stages underneath verification:
//! parsing, type checking, behavioral-abstraction construction, certificate
//! checking, and the runtime's exchange throughput. These quantify the
//! substrates so the Figure 6 numbers can be decomposed.

use criterion::{criterion_group, criterion_main, Criterion};
use reflex_ast::Value;
use reflex_runtime::{EmptyWorld, Interpreter, Registry, ScriptedBehavior};
use reflex_trace::Msg;
use reflex_verify::{check_certificate, prove, Abstraction, ProverOptions};

fn parse_and_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    for bench in reflex_kernels::all_benchmarks() {
        group.bench_function(format!("parse_{}", bench.name), |b| {
            b.iter(|| reflex_parser::parse_program(bench.name, bench.source).expect("parses"))
        });
        let program = (bench.program)();
        group.bench_function(format!("typecheck_{}", bench.name), |b| {
            b.iter(|| reflex_typeck::check(&program).expect("checks"))
        });
    }
    group.finish();
}

fn abstraction_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("behabs");
    group.sample_size(20);
    let options = ProverOptions::default();
    for bench in reflex_kernels::all_benchmarks() {
        let checked = (bench.checked)();
        group.bench_function(bench.name, |b| {
            b.iter(|| Abstraction::build(&checked, &options))
        });
    }
    group.finish();
}

fn certificate_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(20);
    let options = ProverOptions::default();
    let checked = reflex_kernels::ssh::checked();
    let outcome = prove(&checked, "LoginEnablesPty", &options).expect("exists");
    let cert = outcome.certificate().expect("proved").clone();
    group.bench_function("ssh_LoginEnablesPty", |b| {
        b.iter(|| check_certificate(&checked, &cert, &options).expect("valid"))
    });
    group.finish();
}

fn runtime_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(20);
    let checked = reflex_kernels::browser::checked();
    group.bench_function("browser_100_exchanges", |b| {
        b.iter(|| {
            let registry = Registry::new().register("chrome-ui.py", |_| {
                Box::new(ScriptedBehavior::new().starts_with(
                    (0..20).map(|i| Msg::new("NewTab", [Value::from(format!("d{}.org", i % 4))])),
                ))
            });
            let mut kernel =
                Interpreter::new(&checked, registry, Box::new(EmptyWorld), 0).expect("boots");
            kernel.run(100).expect("runs");
            let tabs = kernel.components_of("Tab").len();
            assert_eq!(tabs, 20);
            kernel.trace().len()
        })
    });
    group.finish();
}

fn incremental_reverification(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let options = ProverOptions::default();
    let old = reflex_kernels::browser::checked();
    let previous: Vec<_> = reflex_verify::prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    let new = reflex_typeck::check(
        &reflex_parser::parse_program("browser", &edited_src).expect("parses"),
    )
    .expect("checks");

    group.bench_function("full_reproving", |b| {
        b.iter(|| {
            let outcomes = reflex_verify::prove_all(&new, &options);
            assert!(outcomes.iter().all(|(_, o)| o.is_proved()));
            outcomes.len()
        })
    });
    group.bench_function("certificate_reuse", |b| {
        b.iter(|| {
            let report =
                reflex_verify::reverify(&previous, &new, &options).expect("well-formed previous");
            assert!(report.outcomes.iter().all(|(_, o)| o.is_proved()));
            assert!(!report.reused.is_empty());
            report.outcomes.len()
        })
    });
    group.finish();
}

criterion_group!(
    pipeline_benches,
    parse_and_check,
    abstraction_build,
    certificate_checking,
    runtime_throughput,
    incremental_reverification
);
criterion_main!(pipeline_benches);
