//! Criterion benches for Figure 6: one benchmark group per kernel, one
//! measurement per property (proof search against a pre-built behavioral
//! abstraction, exactly the workflow the paper times).

use criterion::{criterion_group, criterion_main, Criterion};
use reflex_kernels::figure6;
use reflex_verify::{prove_with, Abstraction, ProverOptions};

fn bench_kernel(c: &mut Criterion, kernel: &str) {
    let bench = reflex_kernels::benchmark(kernel).expect("kernel exists");
    let checked = (bench.checked)();
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    let mut group = c.benchmark_group(format!("fig6_{kernel}"));
    group.sample_size(10);
    for row in figure6::ROWS.iter().filter(|r| r.benchmark == kernel) {
        group.bench_function(row.property, |b| {
            b.iter(|| {
                let outcome = prove_with(&abs, row.property, &options).expect("property exists");
                assert!(outcome.is_proved(), "{} must verify", row.property);
                outcome
            })
        });
    }
    group.finish();
}

fn fig6_car(c: &mut Criterion) {
    bench_kernel(c, "car");
}

fn fig6_browser(c: &mut Criterion) {
    bench_kernel(c, "browser");
}

fn fig6_browser2(c: &mut Criterion) {
    bench_kernel(c, "browser2");
}

fn fig6_browser3(c: &mut Criterion) {
    bench_kernel(c, "browser3");
}

fn fig6_ssh(c: &mut Criterion) {
    bench_kernel(c, "ssh");
}

fn fig6_ssh2(c: &mut Criterion) {
    bench_kernel(c, "ssh2");
}

fn fig6_webserver(c: &mut Criterion) {
    bench_kernel(c, "webserver");
}

criterion_group!(
    figure6_benches,
    fig6_car,
    fig6_browser,
    fig6_browser2,
    fig6_browser3,
    fig6_ssh,
    fig6_ssh2,
    fig6_webserver
);
criterion_main!(figure6_benches);
