//! Service-core and daemon tests: backpressure, fairness, budget
//! clamps, shutdown draining, the ≥8-concurrent-clients acceptance run
//! over unix socket AND TCP with daemon certificates byte-identical to
//! a one-shot session, and hostile raw-socket input answered with typed
//! protocol errors while the server stays up.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use reflex_driver::{Event, Instrument, NullSink, SessionConfig, VerifySession};
use reflex_kernels::car;
use reflex_service::protocol::{
    read_frame, write_frame, Frame, ProtoError, ERROR, ERR_MALFORMED, ERR_OVERSIZED, MAX_FRAME,
    REQUEST,
};
use reflex_service::{
    serve, CancelStatus, Client, Endpoint, Reply, Request, ServerConfig, ServiceConfig,
    ServiceCore, ServiceError,
};
use reflex_verify::{certificate_to_bytes, Outcome};

/// A sink whose first event parks its worker until the test opens the
/// gate — the deterministic way to hold the single executor mid-request
/// while the test lines up queue state behind it.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, bool)>, // (open, entered)
    cv: Condvar,
}

impl Gate {
    fn wait_entered(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        while !s.1 {
            s = self.cv.wait(s).expect("gate poisoned");
        }
    }

    fn open(&self) {
        self.state.lock().expect("gate poisoned").0 = true;
        self.cv.notify_all();
    }
}

struct GateSink(Arc<Gate>);

impl Instrument for GateSink {
    fn event(&self, _event: &Event) {
        let mut s = self.0.state.lock().expect("gate poisoned");
        s.1 = true;
        self.0.cv.notify_all();
        while !s.0 {
            s = self.0.cv.wait(s).expect("gate poisoned");
        }
    }
}

fn single_worker_core(config: ServiceConfig) -> ServiceCore {
    ServiceCore::start(ServiceConfig {
        jobs: 1,
        workers: 1,
        ..config
    })
    .expect("core starts")
}

fn car_verify() -> Request {
    Request::Verify {
        name: "car".into(),
        source: car::SOURCE.to_owned(),
        property: None,
        budget_ms: None,
        budget_nodes: None,
        want_events: false,
        deadline_ms: None,
        idempotency_key: None,
    }
}

fn hold_worker(core: &ServiceCore) -> (Arc<Gate>, Arc<reflex_service::Ticket>) {
    let gate = Arc::new(Gate::default());
    let held = core
        .submit(0, 1, car_verify(), Arc::new(GateSink(Arc::clone(&gate))))
        .expect("the held request submits");
    // Once the sink has fired, the worker has *popped* the job: client
    // 0's queue is empty again and the executor is pinned.
    gate.wait_entered();
    (gate, held)
}

/// With `queue_cap = 1` and the only worker pinned, a client gets
/// exactly one queued slot; the next submit is refused with
/// [`ServiceError::Busy`] and counted.
#[test]
fn backpressure_refuses_past_the_queue_cap() {
    let core = single_worker_core(ServiceConfig {
        queue_cap: 1,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    let queued = core
        .submit(0, 2, Request::Ping, Arc::new(NullSink))
        .expect("one queued request fits the cap");
    match core.submit(0, 3, Request::Ping, Arc::new(NullSink)) {
        Err(ServiceError::Busy { client }) => assert_eq!(client, 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    // Backpressure is per client: another client still gets its slot.
    let other = core
        .submit(1, 4, Request::Ping, Arc::new(NullSink))
        .expect("a different client is not throttled");

    assert_eq!(core.stats().rejected_busy.load(Ordering::Relaxed), 1);

    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    assert!(matches!(queued.wait(), Ok(Reply::Pong)));
    assert!(matches!(other.wait(), Ok(Reply::Pong)));
    core.shutdown();
    assert_eq!(core.stats().requests_served.load(Ordering::Relaxed), 3);
}

/// Fairness: a client with a burst queued cannot starve later arrivals.
/// The recorded pick order must interleave round-robin, not drain the
/// burst first.
#[test]
fn scheduler_round_robins_across_clients() {
    let core = single_worker_core(ServiceConfig {
        record_schedule: true,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    // Client 1 bursts two requests; clients 2 and 3 arrive after.
    let tickets: Vec<_> = [1u64, 1, 2, 3]
        .into_iter()
        .enumerate()
        .map(|(i, client)| {
            core.submit(client, 10 + i as u64, Request::Ping, Arc::new(NullSink))
                .expect("queued")
        })
        .collect();

    gate.open();
    held.wait().expect("held request completes");
    for ticket in tickets {
        assert!(matches!(ticket.wait(), Ok(Reply::Pong)));
    }
    core.shutdown();

    // Pick 0 is the held request (client 0). The burst's second request
    // must wait for clients 2 and 3 despite arriving before them.
    assert_eq!(core.schedule(), vec![0, 1, 2, 3, 1]);
}

/// The per-core budget cap clamps every request: with a 0 ms ceiling no
/// proof search gets to run, and every property lands on `Timeout` —
/// never a hang, never a panic.
#[test]
fn budget_cap_clamps_every_request() {
    let core = single_worker_core(ServiceConfig {
        max_budget_ms: Some(0),
        ..ServiceConfig::default()
    });
    let reply = core
        .request(0, car_verify(), Arc::new(NullSink))
        .expect("the request itself succeeds");
    let Reply::Verify(report) = reply else {
        panic!("verify reply expected");
    };
    assert!(!report.outcomes.is_empty());
    assert_eq!(report.proved(), 0);
    for (name, outcome) in &report.outcomes {
        assert!(
            matches!(outcome, Outcome::Timeout(_)),
            "{name}: a zero budget must time out, got a different outcome"
        );
    }
    core.shutdown();
}

/// Graceful shutdown closes intake immediately but drains what was
/// already accepted: every queued ticket resolves with its real reply.
#[test]
fn shutdown_drains_queued_requests() {
    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let (gate, held) = hold_worker(&core);

    let queued: Vec<_> = (1u64..=3)
        .map(|client| {
            core.submit(client, 20 + client, Request::Ping, Arc::new(NullSink))
                .expect("queued")
        })
        .collect();

    let closer = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || core.shutdown())
    };
    // Intake closes as soon as the shutdown thread takes the lock; only
    // then does the gate open, so the drain provably covers the queue.
    // Submits that race in before the close are legitimate accepts —
    // they must drain too, so keep their tickets and check them below.
    let mut raced_in = Vec::new();
    let mut race_id = 30u64;
    loop {
        race_id += 1;
        match core.submit(7, race_id, Request::Ping, Arc::new(NullSink)) {
            Err(ServiceError::ShuttingDown) => break,
            Ok(ticket) => raced_in.push(ticket),
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    gate.open();
    closer.join().expect("shutdown thread joins");

    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    for ticket in queued.into_iter().chain(raced_in) {
        assert!(matches!(ticket.wait(), Ok(Reply::Pong)));
    }
    assert!(matches!(
        core.submit(0, 99, Request::Ping, Arc::new(NullSink)),
        Err(ServiceError::ShuttingDown)
    ));
}

fn baseline_certificates() -> BTreeMap<String, Vec<u8>> {
    let report = VerifySession::new(SessionConfig {
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("session opens")
    .verify_checked(&car::checked(), &NullSink)
    .expect("car verifies");
    let mut map = BTreeMap::new();
    for (name, outcome) in &report.outcomes {
        let cert = outcome
            .certificate()
            .expect("every car property proves one-shot");
        map.insert(name.clone(), certificate_to_bytes(cert));
    }
    assert!(!map.is_empty());
    map
}

fn temp_socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rxd-test-{tag}-{}.sock", std::process::id()))
}

/// The acceptance run: one daemon, both transports, eight concurrent
/// clients — and every certificate that comes back over the wire is
/// byte-identical to the one-shot session's.
#[test]
fn eight_concurrent_clients_get_oneshot_identical_certificates() {
    let baseline = Arc::new(baseline_certificates());
    let core = Arc::new(
        ServiceCore::start(ServiceConfig {
            jobs: 1,
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("core starts"),
    );
    let socket = temp_socket_path("accept");
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            unix: Some(socket.clone()),
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let tcp_addr = handle.tcp_addr.expect("tcp bound");

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let endpoint = if i % 2 == 0 {
                Endpoint::Unix(socket.clone())
            } else {
                Endpoint::Tcp(tcp_addr.to_string())
            };
            let baseline = Arc::clone(&baseline);
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("client connects");
                client.ping().expect("ping");
                let report = client
                    .verify(car_verify(), &mut |_| {})
                    .expect("remote verify");
                assert_eq!(report.outcomes.len(), baseline.len());
                for (name, outcome) in &report.outcomes {
                    let cert = outcome.certificate().unwrap_or_else(|| {
                        panic!("{name}: daemon failed to prove what one-shot proved")
                    });
                    assert_eq!(
                        &certificate_to_bytes(cert),
                        baseline.get(name).expect("known property"),
                        "{name}: daemon certificate differs from the one-shot bytes"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread succeeds");
    }

    let stats = core.stats().snapshot();
    assert!(stats.connections >= 8, "stats: {stats:?}");
    assert_eq!(stats.protocol_errors, 0, "stats: {stats:?}");
    assert_eq!(stats.rejected_busy, 0, "stats: {stats:?}");

    handle.stop();
    core.shutdown();
    let _ = std::fs::remove_file(&socket);
}

fn hostile_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connects");
    // A server regression must fail the test, not hang it.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout set");
    stream
}

fn read_error_frame(stream: &mut TcpStream) -> Frame {
    let frame = read_frame(stream).expect("server answers before closing");
    assert_eq!(frame.kind, ERROR, "expected a typed error frame");
    frame
}

/// Hostile bytes on a raw socket: the server answers with a typed
/// ERROR frame, counts it, closes that connection — and keeps serving
/// well-behaved clients.
#[test]
fn hostile_frames_get_typed_errors_and_the_server_survives() {
    let core = Arc::new(
        ServiceCore::start(ServiceConfig {
            jobs: 1,
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("core starts"),
    );
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            unix: None,
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    // A first frame that is not HELLO: malformed handshake.
    {
        let mut stream = hostile_connect(addr);
        write_frame(
            &mut stream,
            &Frame {
                kind: REQUEST,
                request_id: 1,
                payload: vec![1, 2, 3],
            },
        )
        .expect("frame writes");
        let error = read_error_frame(&mut stream);
        let (code, _) =
            reflex_service::protocol::decode_error(&error.payload).expect("error decodes");
        assert_eq!(code, ERR_MALFORMED);
        // The connection is closed after the error.
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::Closed | ProtoError::Io(_))
        ));
    }

    // An oversized length prefix: refused before any allocation.
    {
        let mut stream = hostile_connect(addr);
        stream
            .write_all(&(MAX_FRAME + 1).to_le_bytes())
            .expect("prefix writes");
        stream.write_all(&[0u8; 32]).expect("junk writes");
        let error = read_error_frame(&mut stream);
        let (code, _) =
            reflex_service::protocol::decode_error(&error.payload).expect("error decodes");
        assert_eq!(code, ERR_OVERSIZED);
    }

    // Raw garbage that parses as a short frame: still a typed answer or
    // a clean close — the accept loop must not die either way.
    {
        let mut stream = hostile_connect(addr);
        stream.write_all(&[0xff; 7]).expect("garbage writes");
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }

    assert!(core.stats().protocol_errors.load(Ordering::Relaxed) >= 2);

    // The server is still alive for a well-behaved client.
    let mut client = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("still serving");
    client.ping().expect("ping after hostile traffic");
    let summary = client.check("car", car::SOURCE).expect("check works");
    assert!(summary.properties > 0);

    handle.stop();
    core.shutdown();
}

// ---------------------------------------------------------------------------
// Cancellation, deadlines, overload shedding and idempotency
// ---------------------------------------------------------------------------

/// Cancelling a request that is still queued resolves its ticket with
/// the typed [`ServiceError::Cancelled`] — the reply frame a connected
/// client would see — without the job ever running.
#[test]
fn cancelling_a_queued_request_yields_a_typed_error() {
    let core = single_worker_core(ServiceConfig::default());
    let (gate, held) = hold_worker(&core);

    let queued = core
        .submit(0, 2, Request::Ping, Arc::new(NullSink))
        .expect("queued behind the pinned worker");
    assert_eq!(core.cancel(0, 2), CancelStatus::Queued);
    assert!(matches!(queued.wait(), Err(ServiceError::Cancelled)));
    assert_eq!(core.stats().cancelled.load(Ordering::Relaxed), 1);
    // Cancellation is idempotent: the id is gone now.
    assert_eq!(core.cancel(0, 2), CancelStatus::Unknown);

    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    core.shutdown();
}

/// Cancelling a request mid-run flips its budget's cancellation flag:
/// the prover stops at the next check and the client still gets a real
/// reply whose outcomes are typed `Cancelled` — never a dropped
/// connection, never a hang.
#[test]
fn cancelling_a_running_request_yields_a_typed_cancelled_outcome() {
    let core = single_worker_core(ServiceConfig::default());
    let (gate, held) = hold_worker(&core);

    assert_eq!(core.cancel(0, 1), CancelStatus::Running);
    gate.open();
    let reply = held.wait().expect("a cancelled run still replies");
    let Reply::Verify(report) = reply else {
        panic!("verify reply expected");
    };
    assert!(!report.outcomes.is_empty());
    assert!(
        report
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, Outcome::Cancelled(_))),
        "at least one property must land on the typed Cancelled outcome"
    );
    assert_eq!(core.stats().cancelled.load(Ordering::Relaxed), 1);
    core.shutdown();
}

/// A request whose deadline expires while it waits in the queue is
/// refused with the typed [`ServiceError::DeadlineExpired`] at dequeue —
/// the worker never wastes time starting it.
#[test]
fn a_deadline_that_expires_in_the_queue_is_a_typed_refusal() {
    let core = single_worker_core(ServiceConfig::default());
    let (gate, held) = hold_worker(&core);

    let mut request = car_verify();
    if let Request::Verify { deadline_ms, .. } = &mut request {
        *deadline_ms = Some(0);
    }
    let doomed = core
        .submit(0, 2, request, Arc::new(NullSink))
        .expect("an expired deadline is caught at dequeue, not submit");
    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    assert!(matches!(doomed.wait(), Err(ServiceError::DeadlineExpired)));
    assert_eq!(core.stats().deadline_expired.load(Ordering::Relaxed), 1);
    core.shutdown();
}

/// Admission control sheds fast once the global queue watermark is hit,
/// with the configured retry-after hint — distinct from the per-client
/// Busy cap — and the per-client in-flight cap sheds a single client
/// that hoards the pool.
#[test]
fn overload_sheds_with_a_retry_hint_before_the_hard_cap() {
    let core = single_worker_core(ServiceConfig {
        shed_queue_depth: 1,
        shed_retry_after_ms: 40,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    let queued = core
        .submit(1, 2, Request::Ping, Arc::new(NullSink))
        .expect("below the watermark");
    match core.submit(2, 3, Request::Ping, Arc::new(NullSink)) {
        Err(ServiceError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 40),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(
        core.stats().rejected_overloaded.load(Ordering::Relaxed),
        1,
        "sheds are counted separately from Busy"
    );
    assert_eq!(core.stats().rejected_busy.load(Ordering::Relaxed), 0);

    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    assert!(matches!(queued.wait(), Ok(Reply::Pong)));
    core.shutdown();
}

/// The per-client in-flight cap sheds the hoarding client only; other
/// clients keep their slots.
#[test]
fn the_per_client_inflight_cap_sheds_only_the_hoarder() {
    let core = single_worker_core(ServiceConfig {
        client_inflight_cap: 1,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    let first = core
        .submit(5, 2, Request::Ping, Arc::new(NullSink))
        .expect("first request fits the cap");
    assert!(matches!(
        core.submit(5, 3, Request::Ping, Arc::new(NullSink)),
        Err(ServiceError::Overloaded { .. })
    ));
    let other = core
        .submit(6, 4, Request::Ping, Arc::new(NullSink))
        .expect("a different client is not shed");

    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    assert!(matches!(first.wait(), Ok(Reply::Pong)));
    assert!(matches!(other.wait(), Ok(Reply::Pong)));
    core.shutdown();
}

fn keyed_car_verify(key: u64) -> Request {
    match car_verify() {
        Request::Verify {
            name,
            source,
            property,
            budget_ms,
            budget_nodes,
            want_events,
            deadline_ms,
            ..
        } => Request::Verify {
            name,
            source,
            property,
            budget_ms,
            budget_nodes,
            want_events,
            deadline_ms,
            idempotency_key: Some(key),
        },
        _ => unreachable!(),
    }
}

/// The idempotency window: a retry of a completed verify is answered
/// from the window with a byte-identical reply — and byte-identical to
/// the one-shot session's certificates — without re-running the proof
/// search. This extends the certificate-identity guarantee across the
/// retry path.
#[test]
fn idempotent_retries_replay_the_exact_reply_bytes() {
    use reflex_service::protocol::encode_reply;

    let baseline = baseline_certificates();
    let core = single_worker_core(ServiceConfig::default());

    let first = core
        .submit(0, 1, keyed_car_verify(0xfeed), Arc::new(NullSink))
        .expect("first submit")
        .wait()
        .expect("first verify completes");
    // A reconnecting client retries under a fresh connection id and a
    // fresh request id; only the key matches.
    let retried = core
        .submit(9, 700, keyed_car_verify(0xfeed), Arc::new(NullSink))
        .expect("retry submits")
        .wait()
        .expect("retry is served from the window");

    assert_eq!(
        encode_reply(&first),
        encode_reply(&retried),
        "the retried reply must be byte-identical"
    );
    let Reply::Verify(report) = &retried else {
        panic!("verify reply expected");
    };
    for (name, outcome) in &report.outcomes {
        let cert = outcome.certificate().expect("car proves everything");
        assert_eq!(
            &certificate_to_bytes(cert),
            baseline.get(name).expect("known property"),
            "{name}: the deduped certificate must match the one-shot bytes"
        );
    }
    assert_eq!(
        core.stats().requests_executed.load(Ordering::Relaxed),
        1,
        "the proof search must not run twice"
    );
    assert_eq!(core.stats().idempotent_hits.load(Ordering::Relaxed), 1);
    core.shutdown();
}

/// A retry that lands while the original is still running attaches as a
/// follower of the in-flight attempt: one execution, two identical
/// replies.
#[test]
fn an_inflight_idempotent_retry_attaches_as_a_follower() {
    use reflex_service::protocol::encode_reply;

    let core = single_worker_core(ServiceConfig::default());
    let gate = Arc::new(Gate::default());
    let original = core
        .submit(
            0,
            1,
            keyed_car_verify(0xcafe),
            Arc::new(GateSink(Arc::clone(&gate))),
        )
        .expect("original submits");
    gate.wait_entered();

    let follower = core
        .submit(3, 9, keyed_car_verify(0xcafe), Arc::new(NullSink))
        .expect("follower attaches");
    assert_eq!(core.stats().idempotent_hits.load(Ordering::Relaxed), 1);

    gate.open();
    let a = original.wait().expect("original completes");
    let b = follower.wait().expect("follower completes with it");
    assert_eq!(encode_reply(&a), encode_reply(&b));
    assert_eq!(core.stats().requests_executed.load(Ordering::Relaxed), 1);
    core.shutdown();
}

// ---------------------------------------------------------------------------
// Hostile peers against the socket server
// ---------------------------------------------------------------------------

/// A slow-loris peer — a frame that starts arriving and never finishes —
/// is reaped within the frame deadline with a typed [`ERR_IDLE`] frame
/// before the close, and the server keeps serving.
#[test]
fn a_slow_loris_peer_is_reaped_with_a_typed_error() {
    use reflex_service::protocol::{decode_error, encode_hello, HELLO, HELLO_OK};

    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            frame_timeout_ms: 80,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    let mut stream = hostile_connect(addr);
    write_frame(
        &mut stream,
        &Frame {
            kind: HELLO,
            request_id: 0,
            payload: encode_hello(),
        },
    )
    .expect("hello writes");
    let hello_ok = read_frame(&mut stream).expect("handshake completes");
    assert_eq!(hello_ok.kind, HELLO_OK);

    // Announce a frame, deliver two bytes of it, go silent.
    stream.write_all(&64u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[REQUEST, 0]).expect("trickle");
    let reap = read_error_frame(&mut stream);
    let (code, message) = decode_error(&reap.payload).expect("reap error decodes");
    assert_eq!(code, reflex_service::protocol::ERR_IDLE);
    assert!(message.contains("reaped"), "{message}");
    assert!(matches!(
        read_frame(&mut stream),
        Err(ProtoError::Closed | ProtoError::Io(_))
    ));
    assert_eq!(core.stats().reaped_connections.load(Ordering::Relaxed), 1);

    // The pool was never blocked: a well-behaved client is served.
    let mut client = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("still serving");
    client.ping().expect("ping after the reap");

    handle.stop();
    core.shutdown();
}

/// A peer that sends a length prefix and disconnects mid-frame: the
/// server treats it as a gone peer (no panic, no protocol-error count)
/// and keeps serving.
#[test]
fn a_mid_frame_disconnect_after_the_length_prefix_is_survived() {
    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    {
        let mut stream = hostile_connect(addr);
        stream.write_all(&32u32.to_le_bytes()).expect("prefix");
        stream.write_all(&[REQUEST]).expect("one body byte");
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }

    let mut client = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("still serving");
    client.ping().expect("ping after the truncated peer");
    assert_eq!(core.stats().protocol_errors.load(Ordering::Relaxed), 0);

    handle.stop();
    core.shutdown();
}

/// CANCEL is idempotent on the wire: unknown ids and completed ids are
/// both acknowledged with CANCEL_OK and the connection stays usable.
#[test]
fn cancel_frames_for_unknown_and_completed_ids_are_acknowledged() {
    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    let mut client = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("connects");
    client.ping().expect("a request completes");
    // Id 1 was the ping (completed); id 999 was never submitted.
    client
        .cancel(1)
        .expect("cancelling a completed id is acked");
    client
        .cancel(999)
        .expect("cancelling an unknown id is acked");
    client.ping().expect("the connection is still usable");

    handle.stop();
    core.shutdown();
}

// ---------------------------------------------------------------------------
// The retrying client
// ---------------------------------------------------------------------------

/// The retrying client redials through connect failures and counts its
/// attempts; the backoff schedule is a pure function of the policy
/// seed.
#[test]
fn retrying_client_survives_connect_failures_and_reconnects() {
    use reflex_service::{ClientError, RetryPolicy, RetryingClient};

    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    let mut failures = 2;
    let mut client = RetryingClient::with_dialer(
        Box::new(move || {
            if failures > 0 {
                failures -= 1;
                return Err(ClientError::Io("injected connect failure".into()));
            }
            Client::connect(&Endpoint::Tcp(addr.to_string()))
        }),
        RetryPolicy {
            max_attempts: 4,
            seed: 7,
            ..RetryPolicy::default()
        },
    );
    let mut slept = Vec::new();
    let sleeps = Arc::new(Mutex::new(Vec::new()));
    {
        let sleeps = Arc::clone(&sleeps);
        client.set_sleeper(Box::new(move |ms| {
            sleeps.lock().expect("sleeps poisoned").push(ms)
        }));
    }
    client.ping().expect("the third dial succeeds");
    assert_eq!(client.stats().connects, 1);
    assert_eq!(client.stats().retries, 2);
    slept.extend(sleeps.lock().expect("sleeps poisoned").iter().copied());

    // The schedule is deterministic from the seed, capped exponential
    // with half-jitter: retry n sleeps within (step/2 ..= step).
    let policy = RetryPolicy {
        seed: 7,
        ..RetryPolicy::default()
    };
    assert_eq!(slept, vec![policy.delay_ms(1), policy.delay_ms(2)]);
    for (i, ms) in slept.iter().enumerate() {
        let step = policy.base_delay_ms << i;
        assert!(*ms >= step / 2 && *ms <= step, "retry {i} slept {ms}");
    }

    handle.stop();
    core.shutdown();
}

/// A verify retried across a mid-stream disconnect lands exactly once:
/// the client stamps one idempotency key before the first send, the
/// second attempt is answered from the window, and the certificates are
/// byte-identical to the one-shot baseline.
#[test]
fn a_retried_verify_is_deduplicated_across_reconnects() {
    use reflex_service::{RetryPolicy, RetryingClient};

    let baseline = baseline_certificates();
    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let socket = temp_socket_path("retry-dedup");
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            unix: Some(socket.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");

    // Warm the window with the "first attempt whose reply was lost":
    // the first key a seed-99 retrying client stamps is draw 1 of its
    // seed-derived key stream, so the test can pre-run that request.
    let key = reflex_rng::stream_u64(reflex_rng::derive(99, "idem-key"), 1);
    let lost_attempt = core
        .request(1000, keyed_car_verify(key), Arc::new(NullSink))
        .expect("first attempt completes server-side");

    // The retry: same seed, so the client stamps the same key.
    let endpoint = Endpoint::Unix(socket.clone());
    let mut client = RetryingClient::connect(
        &endpoint,
        RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        },
    );
    client.set_sleeper(Box::new(|_| {}));
    let report = client
        .verify(car_verify(), &mut |_| {})
        .expect("retried verify is served from the window");

    let Reply::Verify(first_report) = &lost_attempt else {
        panic!("verify reply expected");
    };
    assert_eq!(report.outcomes.len(), first_report.outcomes.len());
    for (name, outcome) in &report.outcomes {
        let cert = outcome.certificate().expect("car proves everything");
        assert_eq!(
            &certificate_to_bytes(cert),
            baseline.get(name).expect("known property"),
            "{name}: retried certificate differs from the one-shot bytes"
        );
    }
    assert_eq!(core.stats().requests_executed.load(Ordering::Relaxed), 1);
    assert_eq!(core.stats().idempotent_hits.load(Ordering::Relaxed), 1);

    handle.stop();
    core.shutdown();
    let _ = std::fs::remove_file(&socket);
}
