//! Service-core and daemon tests: backpressure, fairness, budget
//! clamps, shutdown draining, the ≥8-concurrent-clients acceptance run
//! over unix socket AND TCP with daemon certificates byte-identical to
//! a one-shot session, and hostile raw-socket input answered with typed
//! protocol errors while the server stays up.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use reflex_driver::{Event, Instrument, NullSink, SessionConfig, VerifySession};
use reflex_kernels::car;
use reflex_service::protocol::{
    read_frame, write_frame, Frame, ProtoError, ERROR, ERR_MALFORMED, ERR_OVERSIZED, MAX_FRAME,
    REQUEST,
};
use reflex_service::{
    serve, Client, Endpoint, Reply, Request, ServerConfig, ServiceConfig, ServiceCore, ServiceError,
};
use reflex_verify::{certificate_to_bytes, Outcome};

/// A sink whose first event parks its worker until the test opens the
/// gate — the deterministic way to hold the single executor mid-request
/// while the test lines up queue state behind it.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, bool)>, // (open, entered)
    cv: Condvar,
}

impl Gate {
    fn wait_entered(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        while !s.1 {
            s = self.cv.wait(s).expect("gate poisoned");
        }
    }

    fn open(&self) {
        self.state.lock().expect("gate poisoned").0 = true;
        self.cv.notify_all();
    }
}

struct GateSink(Arc<Gate>);

impl Instrument for GateSink {
    fn event(&self, _event: &Event) {
        let mut s = self.0.state.lock().expect("gate poisoned");
        s.1 = true;
        self.0.cv.notify_all();
        while !s.0 {
            s = self.0.cv.wait(s).expect("gate poisoned");
        }
    }
}

fn single_worker_core(config: ServiceConfig) -> ServiceCore {
    ServiceCore::start(ServiceConfig {
        jobs: 1,
        workers: 1,
        ..config
    })
    .expect("core starts")
}

fn car_verify() -> Request {
    Request::Verify {
        name: "car".into(),
        source: car::SOURCE.to_owned(),
        property: None,
        budget_ms: None,
        budget_nodes: None,
        want_events: false,
    }
}

fn hold_worker(core: &ServiceCore) -> (Arc<Gate>, Arc<reflex_service::Ticket>) {
    let gate = Arc::new(Gate::default());
    let held = core
        .submit(0, car_verify(), Arc::new(GateSink(Arc::clone(&gate))))
        .expect("the held request submits");
    // Once the sink has fired, the worker has *popped* the job: client
    // 0's queue is empty again and the executor is pinned.
    gate.wait_entered();
    (gate, held)
}

/// With `queue_cap = 1` and the only worker pinned, a client gets
/// exactly one queued slot; the next submit is refused with
/// [`ServiceError::Busy`] and counted.
#[test]
fn backpressure_refuses_past_the_queue_cap() {
    let core = single_worker_core(ServiceConfig {
        queue_cap: 1,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    let queued = core
        .submit(0, Request::Ping, Arc::new(NullSink))
        .expect("one queued request fits the cap");
    match core.submit(0, Request::Ping, Arc::new(NullSink)) {
        Err(ServiceError::Busy { client }) => assert_eq!(client, 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    // Backpressure is per client: another client still gets its slot.
    let other = core
        .submit(1, Request::Ping, Arc::new(NullSink))
        .expect("a different client is not throttled");

    assert_eq!(core.stats().rejected_busy.load(Ordering::Relaxed), 1);

    gate.open();
    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    assert!(matches!(queued.wait(), Ok(Reply::Pong)));
    assert!(matches!(other.wait(), Ok(Reply::Pong)));
    core.shutdown();
    assert_eq!(core.stats().requests_served.load(Ordering::Relaxed), 3);
}

/// Fairness: a client with a burst queued cannot starve later arrivals.
/// The recorded pick order must interleave round-robin, not drain the
/// burst first.
#[test]
fn scheduler_round_robins_across_clients() {
    let core = single_worker_core(ServiceConfig {
        record_schedule: true,
        ..ServiceConfig::default()
    });
    let (gate, held) = hold_worker(&core);

    // Client 1 bursts two requests; clients 2 and 3 arrive after.
    let tickets: Vec<_> = [1u64, 1, 2, 3]
        .into_iter()
        .map(|client| {
            core.submit(client, Request::Ping, Arc::new(NullSink))
                .expect("queued")
        })
        .collect();

    gate.open();
    held.wait().expect("held request completes");
    for ticket in tickets {
        assert!(matches!(ticket.wait(), Ok(Reply::Pong)));
    }
    core.shutdown();

    // Pick 0 is the held request (client 0). The burst's second request
    // must wait for clients 2 and 3 despite arriving before them.
    assert_eq!(core.schedule(), vec![0, 1, 2, 3, 1]);
}

/// The per-core budget cap clamps every request: with a 0 ms ceiling no
/// proof search gets to run, and every property lands on `Timeout` —
/// never a hang, never a panic.
#[test]
fn budget_cap_clamps_every_request() {
    let core = single_worker_core(ServiceConfig {
        max_budget_ms: Some(0),
        ..ServiceConfig::default()
    });
    let reply = core
        .request(0, car_verify(), Arc::new(NullSink))
        .expect("the request itself succeeds");
    let Reply::Verify(report) = reply else {
        panic!("verify reply expected");
    };
    assert!(!report.outcomes.is_empty());
    assert_eq!(report.proved(), 0);
    for (name, outcome) in &report.outcomes {
        assert!(
            matches!(outcome, Outcome::Timeout(_)),
            "{name}: a zero budget must time out, got a different outcome"
        );
    }
    core.shutdown();
}

/// Graceful shutdown closes intake immediately but drains what was
/// already accepted: every queued ticket resolves with its real reply.
#[test]
fn shutdown_drains_queued_requests() {
    let core = Arc::new(single_worker_core(ServiceConfig::default()));
    let (gate, held) = hold_worker(&core);

    let queued: Vec<_> = (1u64..=3)
        .map(|client| {
            core.submit(client, Request::Ping, Arc::new(NullSink))
                .expect("queued")
        })
        .collect();

    let closer = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || core.shutdown())
    };
    // Intake closes as soon as the shutdown thread takes the lock; only
    // then does the gate open, so the drain provably covers the queue.
    // Submits that race in before the close are legitimate accepts —
    // they must drain too, so keep their tickets and check them below.
    let mut raced_in = Vec::new();
    loop {
        match core.submit(7, Request::Ping, Arc::new(NullSink)) {
            Err(ServiceError::ShuttingDown) => break,
            Ok(ticket) => raced_in.push(ticket),
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    gate.open();
    closer.join().expect("shutdown thread joins");

    assert!(matches!(held.wait(), Ok(Reply::Verify(_))));
    for ticket in queued.into_iter().chain(raced_in) {
        assert!(matches!(ticket.wait(), Ok(Reply::Pong)));
    }
    assert!(matches!(
        core.submit(0, Request::Ping, Arc::new(NullSink)),
        Err(ServiceError::ShuttingDown)
    ));
}

fn baseline_certificates() -> BTreeMap<String, Vec<u8>> {
    let report = VerifySession::new(SessionConfig {
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("session opens")
    .verify_checked(&car::checked(), &NullSink)
    .expect("car verifies");
    let mut map = BTreeMap::new();
    for (name, outcome) in &report.outcomes {
        let cert = outcome
            .certificate()
            .expect("every car property proves one-shot");
        map.insert(name.clone(), certificate_to_bytes(cert));
    }
    assert!(!map.is_empty());
    map
}

fn temp_socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rxd-test-{tag}-{}.sock", std::process::id()))
}

/// The acceptance run: one daemon, both transports, eight concurrent
/// clients — and every certificate that comes back over the wire is
/// byte-identical to the one-shot session's.
#[test]
fn eight_concurrent_clients_get_oneshot_identical_certificates() {
    let baseline = Arc::new(baseline_certificates());
    let core = Arc::new(
        ServiceCore::start(ServiceConfig {
            jobs: 1,
            workers: 2,
            ..ServiceConfig::default()
        })
        .expect("core starts"),
    );
    let socket = temp_socket_path("accept");
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            unix: Some(socket.clone()),
            tcp: Some("127.0.0.1:0".into()),
        },
    )
    .expect("server binds");
    let tcp_addr = handle.tcp_addr.expect("tcp bound");

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let endpoint = if i % 2 == 0 {
                Endpoint::Unix(socket.clone())
            } else {
                Endpoint::Tcp(tcp_addr.to_string())
            };
            let baseline = Arc::clone(&baseline);
            std::thread::spawn(move || {
                let mut client = Client::connect(&endpoint).expect("client connects");
                client.ping().expect("ping");
                let report = client
                    .verify(car_verify(), &mut |_| {})
                    .expect("remote verify");
                assert_eq!(report.outcomes.len(), baseline.len());
                for (name, outcome) in &report.outcomes {
                    let cert = outcome.certificate().unwrap_or_else(|| {
                        panic!("{name}: daemon failed to prove what one-shot proved")
                    });
                    assert_eq!(
                        &certificate_to_bytes(cert),
                        baseline.get(name).expect("known property"),
                        "{name}: daemon certificate differs from the one-shot bytes"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread succeeds");
    }

    let stats = core.stats().snapshot();
    assert!(stats.connections >= 8, "stats: {stats:?}");
    assert_eq!(stats.protocol_errors, 0, "stats: {stats:?}");
    assert_eq!(stats.rejected_busy, 0, "stats: {stats:?}");

    handle.stop();
    core.shutdown();
    let _ = std::fs::remove_file(&socket);
}

fn hostile_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connects");
    // A server regression must fail the test, not hang it.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout set");
    stream
}

fn read_error_frame(stream: &mut TcpStream) -> Frame {
    let frame = read_frame(stream).expect("server answers before closing");
    assert_eq!(frame.kind, ERROR, "expected a typed error frame");
    frame
}

/// Hostile bytes on a raw socket: the server answers with a typed
/// ERROR frame, counts it, closes that connection — and keeps serving
/// well-behaved clients.
#[test]
fn hostile_frames_get_typed_errors_and_the_server_survives() {
    let core = Arc::new(
        ServiceCore::start(ServiceConfig {
            jobs: 1,
            workers: 1,
            ..ServiceConfig::default()
        })
        .expect("core starts"),
    );
    let handle = serve(
        Arc::clone(&core),
        &ServerConfig {
            unix: None,
            tcp: Some("127.0.0.1:0".into()),
        },
    )
    .expect("server binds");
    let addr = handle.tcp_addr.expect("tcp bound");

    // A first frame that is not HELLO: malformed handshake.
    {
        let mut stream = hostile_connect(addr);
        write_frame(
            &mut stream,
            &Frame {
                kind: REQUEST,
                request_id: 1,
                payload: vec![1, 2, 3],
            },
        )
        .expect("frame writes");
        let error = read_error_frame(&mut stream);
        let (code, _) =
            reflex_service::protocol::decode_error(&error.payload).expect("error decodes");
        assert_eq!(code, ERR_MALFORMED);
        // The connection is closed after the error.
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::Closed | ProtoError::Io(_))
        ));
    }

    // An oversized length prefix: refused before any allocation.
    {
        let mut stream = hostile_connect(addr);
        stream
            .write_all(&(MAX_FRAME + 1).to_le_bytes())
            .expect("prefix writes");
        stream.write_all(&[0u8; 32]).expect("junk writes");
        let error = read_error_frame(&mut stream);
        let (code, _) =
            reflex_service::protocol::decode_error(&error.payload).expect("error decodes");
        assert_eq!(code, ERR_OVERSIZED);
    }

    // Raw garbage that parses as a short frame: still a typed answer or
    // a clean close — the accept loop must not die either way.
    {
        let mut stream = hostile_connect(addr);
        stream.write_all(&[0xff; 7]).expect("garbage writes");
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }

    assert!(core.stats().protocol_errors.load(Ordering::Relaxed) >= 2);

    // The server is still alive for a well-behaved client.
    let mut client = Client::connect(&Endpoint::Tcp(addr.to_string())).expect("still serving");
    client.ping().expect("ping after hostile traffic");
    let summary = client.check("car", car::SOURCE).expect("check works");
    assert!(summary.properties > 0);

    handle.stop();
    core.shutdown();
}
