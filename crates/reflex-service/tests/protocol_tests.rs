//! Wire-protocol tests: frame and payload codecs round-trip exactly,
//! and hostile input — malformed, truncated, oversized, mutated — is
//! rejected with a typed error, never a panic.

use std::io::Cursor;

use proptest::prelude::*;
use reflex_driver::{NullSink, SessionConfig, VerifySession};
use reflex_service::protocol::{
    decode_error, decode_error_retry, decode_hello, decode_reply, decode_request, decode_stats,
    enc_report, encode_error, encode_error_retry, encode_hello, encode_reply, encode_request,
    encode_stats, read_frame, write_frame, Dec, Enc, Frame, ProtoError, Reply, Request,
    StatsSnapshot, HELLO, MAX_FRAME, REQUEST,
};

fn roundtrip_frame(frame: &Frame) -> Frame {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).expect("frame writes");
    read_frame(&mut Cursor::new(buf)).expect("frame reads back")
}

#[test]
fn frames_roundtrip_bit_exactly() {
    for frame in [
        Frame {
            kind: HELLO,
            request_id: 0,
            payload: encode_hello(),
        },
        Frame {
            kind: REQUEST,
            request_id: u64::MAX,
            payload: vec![],
        },
        Frame {
            kind: 200,
            request_id: 7,
            payload: (0..=255).collect(),
        },
    ] {
        assert_eq!(roundtrip_frame(&frame), frame);
    }
}

#[test]
fn oversized_frames_are_refused_on_both_sides() {
    // Writing: a payload pushing past MAX_FRAME never hits the wire.
    let frame = Frame {
        kind: REQUEST,
        request_id: 1,
        payload: vec![0u8; MAX_FRAME as usize],
    };
    let mut buf = Vec::new();
    assert!(matches!(
        write_frame(&mut buf, &frame),
        Err(ProtoError::Oversized { .. })
    ));
    assert!(buf.is_empty(), "nothing may be written for a refused frame");

    // Reading: a hostile length prefix is rejected before any body
    // allocation.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    hostile.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        read_frame(&mut Cursor::new(hostile)),
        Err(ProtoError::Oversized { len }) if len == MAX_FRAME + 1
    ));
}

#[test]
fn truncated_and_undersized_frames_are_typed_errors() {
    // Clean EOF between frames: the peer hung up.
    assert!(matches!(
        read_frame(&mut Cursor::new(Vec::new())),
        Err(ProtoError::Closed)
    ));

    // A length shorter than the kind + request-id header is malformed.
    let mut short = Vec::new();
    short.extend_from_slice(&3u32.to_le_bytes());
    short.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        read_frame(&mut Cursor::new(short)),
        Err(ProtoError::Malformed(_))
    ));

    // EOF inside an announced body: a truncated peer, surfaced as I/O.
    let frame = Frame {
        kind: REQUEST,
        request_id: 9,
        payload: vec![1, 2, 3, 4],
    };
    let mut buf = Vec::new();
    write_frame(&mut buf, &frame).expect("frame writes");
    buf.truncate(buf.len() - 2);
    assert!(matches!(
        read_frame(&mut Cursor::new(buf)),
        Err(ProtoError::Io(_))
    ));
}

#[test]
fn request_payloads_roundtrip() {
    for request in [
        Request::Ping,
        Request::Check {
            name: "kernel".into(),
            source: "components { }".into(),
        },
        Request::Verify {
            name: "car".into(),
            source: "state { x: num = 0; }".into(),
            property: Some("P1".into()),
            budget_ms: Some(250),
            budget_nodes: None,
            want_events: true,
            deadline_ms: Some(5_000),
            idempotency_key: Some(0xfeed_beef_dead_cafe),
        },
        Request::Verify {
            name: String::new(),
            source: String::new(),
            property: None,
            budget_ms: None,
            budget_nodes: Some(u64::MAX),
            want_events: false,
            deadline_ms: None,
            idempotency_key: None,
        },
    ] {
        let decoded = decode_request(&encode_request(&request)).expect("request decodes");
        assert_eq!(decoded, request);
    }
}

#[test]
fn stats_error_and_hello_payloads_roundtrip() {
    let stats = StatsSnapshot {
        requests_submitted: 1,
        requests_served: 2,
        rejected_busy: 3,
        protocol_errors: 4,
        connections: 5,
        rejected_overloaded: 6,
        cancelled: 7,
        deadline_expired: 8,
        idempotent_hits: 9,
        requests_executed: 10,
        reaped_connections: 11,
        accept_errors: 12,
    };
    assert_eq!(decode_stats(&encode_stats(&stats)), Some(stats));

    let (code, message) = decode_error(&encode_error(6, "queue full")).expect("error decodes");
    assert_eq!((code, message.as_str()), (6, "queue full"));

    // The retry-hint variant round-trips both with and without a hint,
    // and the hintless decoder still reads a hinted payload.
    let hinted = encode_error_retry(10, "shedding", Some(250));
    assert_eq!(
        decode_error_retry(&hinted),
        Some((10, "shedding".to_owned(), Some(250)))
    );
    assert_eq!(decode_error(&hinted), Some((10, "shedding".to_owned())));
    assert_eq!(
        decode_error_retry(&encode_error(6, "queue full")),
        Some((6, "queue full".to_owned(), None))
    );

    assert_eq!(
        decode_hello(&encode_hello()),
        Some(reflex_service::protocol::VERSION)
    );
    // Wrong magic is refused outright.
    let mut e = Enc::new();
    e.u32(0xdead_beef);
    e.u16(reflex_service::protocol::VERSION);
    assert_eq!(decode_hello(&e.buf), None);
}

/// A real session report — certificates included — must survive the
/// reply codec byte-for-byte: this is what makes daemon verify output
/// indistinguishable from a local one-shot run.
#[test]
fn verify_reply_roundtrips_with_certificates() {
    let report = VerifySession::new(SessionConfig {
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("session opens")
    .verify_checked(&reflex_kernels::car::checked(), &NullSink)
    .expect("car verifies");
    assert!(report.proved() > 0, "the fixture must prove something");

    let reply = Reply::Verify(Box::new(report));
    let encoded = encode_reply(&reply);
    let decoded = decode_reply(&encoded).expect("reply decodes");

    // Certificates have no PartialEq shortcut at the report level, so
    // compare through the codec itself: a second encode of the decoded
    // reply must reproduce the exact bytes.
    assert_eq!(encode_reply(&decoded), encoded);

    let (Reply::Verify(a), Reply::Verify(b)) = (&reply, &decoded) else {
        panic!("verify replies expected");
    };
    assert_eq!(a.program, b.program);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for ((name_a, out_a), (name_b, out_b)) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(name_a, name_b);
        assert_eq!(out_a.certificate(), out_b.certificate());
    }
}

#[test]
fn trailing_garbage_is_malformed() {
    let mut payload = encode_request(&Request::Ping);
    payload.push(0);
    assert_eq!(decode_request(&payload), None);

    let mut d = Dec::new(&[1, 2]);
    assert!(d.u8().is_some());
    assert!(d.finish().is_none(), "an unconsumed byte must fail finish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes on the wire: the frame reader returns a typed
    /// error or a frame — it never panics and never over-allocates.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = read_frame(&mut Cursor::new(bytes));
    }

    /// Arbitrary payloads through every decoder: `None` or a value,
    /// never a panic, never an out-of-bounds read.
    #[test]
    fn payload_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
        let _ = decode_stats(&bytes);
        let _ = decode_error(&bytes);
        let _ = decode_hello(&bytes);
    }

    /// Flipping any single byte of a valid request payload yields either
    /// a clean decode failure or a (different or equal) valid request —
    /// never a panic.
    #[test]
    fn mutated_requests_fail_closed(
        flip_at in 0usize..64,
        flip_with in 1u8..255,
        budget in proptest::option::of(0u64..1_000_000),
    ) {
        let request = Request::Verify {
            name: "kernel".into(),
            source: "state { x: num = 0; }".into(),
            property: Some("P".into()),
            budget_ms: budget,
            budget_nodes: budget.map(|b| b.saturating_mul(2)),
            want_events: budget.is_some(),
            deadline_ms: budget.map(|b| b + 1),
            idempotency_key: budget,
        };
        let mut payload = encode_request(&request);
        let index = flip_at % payload.len();
        payload[index] ^= flip_with;
        let _ = decode_request(&payload);
    }

    /// Truncating a valid reply payload at any point decodes to `None`
    /// (a prefix can never masquerade as a full report).
    #[test]
    fn truncated_replies_fail_closed(cut in 0usize..64) {
        let report = Reply::Checked(reflex_service::CheckSummary {
            program: "p".into(),
            components: 1,
            messages: 2,
            state_vars: 3,
            handlers: 4,
            properties: 5,
        });
        let payload = encode_reply(&report);
        if cut < payload.len() {
            prop_assert!(decode_reply(&payload[..cut]).is_none());
        }
    }
}

/// The helper [`enc_report`] and the reply wrapper agree: a report
/// encoded standalone is exactly the reply payload minus its tag byte.
#[test]
fn report_codec_and_reply_wrapper_agree() {
    let report = VerifySession::new(SessionConfig {
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("session opens")
    .verify_checked(&reflex_kernels::car::checked(), &NullSink)
    .expect("car verifies");
    let mut e = Enc::new();
    enc_report(&mut e, &report);
    let reply_payload = encode_reply(&Reply::Verify(Box::new(report)));
    assert_eq!(&reply_payload[1..], &e.buf[..]);
}
