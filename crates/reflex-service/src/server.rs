//! The `rxd` socket server: unix-socket and TCP front ends over one
//! shared [`ServiceCore`].
//!
//! Each accepted connection gets its own reader thread and its own
//! client id (so per-client queueing, budgets and fairness apply per
//! connection). After the version handshake the reader keeps reading
//! frames while requests run: each accepted [`REQUEST`] is submitted to
//! the core and a waiter thread writes its terminal frame (preceded by
//! any streamed [`EVENT`](crate::protocol::EVENT) frames from the core
//! workers) through the shared, locked write half. That is what lets a
//! [`CANCEL`] frame reach a request already in flight, and lets one
//! connection pipeline requests.
//!
//! Hostile or dead peers cannot wedge the server: reads run under a
//! per-frame progress deadline (a slow-loris trickling bytes is reaped
//! mid-frame) and an idle deadline (a dead TCP half with nothing in
//! flight is reaped between frames), both answered with a typed
//! [`ERR_IDLE`] frame before close; writes carry a socket write
//! timeout. Malformed input is answered, counted and dropped — never
//! panicked on: a frame that fails to decode gets a typed
//! [`ERROR`](crate::protocol::ERROR) frame, bumps
//! [`ServiceStats::protocol_errors`] and closes the connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reflex_driver::{Event, Instrument, NullSink};

use crate::core::{ServiceCore, ServiceError, ServiceStats};
use crate::protocol::{
    decode_hello, decode_request, encode_error, encode_error_retry, encode_reply, encode_stats,
    read_frame, write_frame, Frame, ProtoError, CANCEL, CANCEL_OK, ERROR, ERR_BUSY, ERR_CANCELLED,
    ERR_DEADLINE, ERR_IDLE, ERR_MALFORMED, ERR_OVERLOADED, ERR_OVERSIZED, ERR_REQUEST,
    ERR_SHUTDOWN, ERR_VERSION, EVENT, HELLO, HELLO_OK, REPLY, REQUEST, SHUTDOWN, SHUTDOWN_OK,
    STATS, STATS_REPLY, VERSION,
};

/// Where the server listens and how aggressively it reaps bad peers.
/// At least one of the two endpoints must be set.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Unix-socket path (a stale socket file is replaced).
    pub unix: Option<PathBuf>,
    /// TCP bind address, e.g. `127.0.0.1:7171` (port 0 picks a free
    /// port, reported by [`ServerHandle::tcp_addr`]).
    pub tcp: Option<String>,
    /// Once a frame's first byte arrives, the whole frame must complete
    /// within this long or the peer is reaped (slow-loris guard).
    /// 0 means the default (10 000 ms).
    pub frame_timeout_ms: u64,
    /// A connection with no in-flight requests and no bytes arriving
    /// for this long is reaped (dead-half guard). 0 means the default
    /// (300 000 ms).
    pub idle_timeout_ms: u64,
    /// Socket write timeout, so a peer that stopped draining cannot
    /// block event/reply writers forever. 0 means the default
    /// (30 000 ms).
    pub write_timeout_ms: u64,
}

/// Resolved read/write deadlines for one server.
#[derive(Debug, Clone, Copy)]
struct Timeouts {
    /// Socket-level read poll granularity (how often deadline checks
    /// run while the peer is silent).
    poll: Duration,
    frame: Duration,
    idle: Duration,
    write: Duration,
}

impl Timeouts {
    fn of(config: &ServerConfig) -> Timeouts {
        let or = |v: u64, d: u64| if v == 0 { d } else { v };
        let frame = or(config.frame_timeout_ms, 10_000);
        // Poll fast enough that a small frame deadline is enforced with
        // useful resolution, without spinning.
        let poll = (frame / 8).clamp(5, 100);
        Timeouts {
            poll: Duration::from_millis(poll),
            frame: Duration::from_millis(frame),
            idle: Duration::from_millis(or(config.idle_timeout_ms, 300_000)),
            write: Duration::from_millis(or(config.write_timeout_ms, 30_000)),
        }
    }
}

/// One live transport stream (both halves).
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn close(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            Stream::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

/// Why [`TimedReader`] gave up on a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reaped {
    /// A frame started arriving but did not finish inside the frame
    /// deadline (slow-loris).
    SlowFrame,
    /// Nothing in flight and no bytes for the idle deadline (dead
    /// half).
    Idle,
}

/// A deadline-enforcing read adapter over a [`Stream`] whose socket
/// read timeout is set to [`Timeouts::poll`]: timeouts from the socket
/// are absorbed here and turned into deadline checks, so the framed
/// reader above ([`read_frame`]) never sees a spurious timeout mid
/// `read_exact` (which would lose the bytes already consumed).
struct TimedReader<'a> {
    stream: &'a mut Stream,
    timeouts: Timeouts,
    stop: Arc<AtomicBool>,
    /// Requests submitted on this connection and not yet answered;
    /// while nonzero, silence is legitimate (the peer is waiting for
    /// replies) and idle reaping is off.
    inflight: Arc<AtomicUsize>,
    /// Deadline for the frame currently arriving (set at its first
    /// byte, cleared by [`TimedReader::begin_frame`]).
    frame_deadline: Option<Instant>,
    /// Start of the current between-frames gap.
    idle_since: Instant,
    /// Set when a deadline tripped; the connection loop turns it into
    /// a typed [`ERR_IDLE`] frame before closing.
    reaped: Option<Reaped>,
}

impl<'a> TimedReader<'a> {
    fn new(
        stream: &'a mut Stream,
        timeouts: Timeouts,
        stop: Arc<AtomicBool>,
        inflight: Arc<AtomicUsize>,
    ) -> TimedReader<'a> {
        TimedReader {
            stream,
            timeouts,
            stop,
            inflight,
            frame_deadline: None,
            idle_since: Instant::now(),
            reaped: None,
        }
    }

    /// Marks a frame boundary: the next byte starts a new frame (and a
    /// new frame deadline); until it arrives the idle clock runs.
    fn begin_frame(&mut self) {
        self.frame_deadline = None;
        self.idle_since = Instant::now();
    }
}

impl Read for TimedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Ok(n) => {
                    if n > 0 && self.frame_deadline.is_none() {
                        self.frame_deadline = Some(Instant::now() + self.timeouts.frame);
                    }
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::Relaxed) {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "server stopping"));
                    }
                    let now = Instant::now();
                    if let Some(deadline) = self.frame_deadline {
                        if now >= deadline {
                            self.reaped = Some(Reaped::SlowFrame);
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "frame read deadline exceeded",
                            ));
                        }
                    } else if self.inflight.load(Ordering::Relaxed) == 0
                        && now.duration_since(self.idle_since) >= self.timeouts.idle
                    {
                        self.reaped = Some(Reaped::Idle);
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "idle deadline exceeded",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Forwards session events as [`EVENT`] frames through the connection's
/// shared write half, tagged with the request they belong to.
struct FrameSink {
    writer: Arc<Mutex<Stream>>,
    request_id: u64,
}

impl Instrument for FrameSink {
    fn event(&self, event: &Event) {
        let frame = Frame {
            kind: EVENT,
            request_id: self.request_id,
            payload: event.to_json().into_bytes(),
        };
        if let Ok(mut w) = self.writer.lock() {
            // A client that stopped reading mid-stream is its own
            // problem; the reply path will surface the broken pipe.
            let _ = write_frame(&mut *w, &frame);
        }
    }
}

/// A running server: its listeners, connection threads and shutdown
/// switchboard.
#[derive(Debug)]
pub struct ServerHandle {
    core: Arc<ServiceCore>,
    /// Tells accept loops and connections to wind down.
    stop: Arc<AtomicBool>,
    /// Set when a client asked the daemon to shut down.
    shutdown_requested: Arc<AtomicBool>,
    accept_threads: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<Shared>,
    /// The unix socket path actually bound, if any.
    pub unix_path: Option<PathBuf>,
    /// The TCP address actually bound, if any (resolves port 0).
    pub tcp_addr: Option<SocketAddr>,
}

/// State shared by every accept loop and connection thread.
struct Shared {
    core: Arc<ServiceCore>,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    next_client: AtomicU64,
    timeouts: Timeouts,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Read-half clones of live connections, closed on stop to unblock
    /// their reader threads.
    conns: Mutex<Vec<Stream>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish()
    }
}

/// Binds the configured listeners and starts serving `core`.
pub fn serve(core: Arc<ServiceCore>, config: &ServerConfig) -> io::Result<ServerHandle> {
    if config.unix.is_none() && config.tcp.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "server needs a unix socket path or a tcp address",
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let shutdown_requested = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        core: Arc::clone(&core),
        stop: Arc::clone(&stop),
        shutdown_requested: Arc::clone(&shutdown_requested),
        next_client: AtomicU64::new(1),
        timeouts: Timeouts::of(config),
        conn_threads: Mutex::new(Vec::new()),
        conns: Mutex::new(Vec::new()),
    });
    let mut accept_threads = Vec::new();
    let mut unix_path = None;
    if let Some(path) = &config.unix {
        // A previous daemon's stale socket file would make bind fail;
        // replacing it is the standard unix-daemon move.
        if path.exists() {
            let _ = std::fs::remove_file(path);
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        let shared = Arc::clone(&shared);
        accept_threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| Stream::Unix(s)));
        }));
    }
    let mut tcp_addr = None;
    if let Some(addr) = &config.tcp {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&shared);
        accept_threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| Stream::Tcp(s)));
        }));
    }
    Ok(ServerHandle {
        core,
        stop,
        shutdown_requested,
        accept_threads: Mutex::new(accept_threads),
        shared,
        unix_path,
        tcp_addr,
    })
}

impl ServerHandle {
    /// Whether a client has requested daemon shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Blocks until a client requests shutdown (the `rxd` main loop).
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The core this server fronts.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Stops accepting, closes live connections, joins every server
    /// thread and removes the unix socket file. The core itself is left
    /// running — call [`ServiceCore::shutdown`] after this to drain and
    /// flush.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in std::mem::take(&mut *self.accept_threads.lock().expect("accept poisoned")) {
            let _ = handle.join();
        }
        for conn in std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned")) {
            conn.close();
        }
        for handle in
            std::mem::take(&mut *self.shared.conn_threads.lock().expect("threads poisoned"))
        {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Polls a nonblocking listener until told to stop, spawning one thread
/// per accepted connection.
fn accept_loop(shared: &Arc<Shared>, mut accept: impl FnMut() -> io::Result<Stream>) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match accept() {
            Ok(stream) => {
                shared
                    .core
                    .stats()
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                if let Ok(reader_clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conns poisoned")
                        .push(reader_clone);
                }
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let mut stream = stream;
                    handle_connection(&shared2, &mut stream, client);
                    // The clone parked in `conns` (for stop()) keeps the
                    // descriptor alive; shut the socket down so the peer
                    // sees the close the moment this connection ends.
                    stream.close();
                });
                shared
                    .conn_threads
                    .lock()
                    .expect("threads poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // Transient listener trouble (EMFILE, ECONNABORTED, a
                // shutdown race): log, count, back off and keep
                // accepting — one bad accept must never kill the
                // listener for every future client.
                shared
                    .core
                    .stats()
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!("rxd: accept error (continuing): {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Sends an [`ERROR`] frame (best-effort) and bumps the protocol-error
/// counter when `count` is set.
fn send_error(
    writer: &Arc<Mutex<Stream>>,
    stats: &ServiceStats,
    request_id: u64,
    code: u16,
    message: &str,
    count: bool,
) {
    if count {
        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
    if let Ok(mut w) = writer.lock() {
        let _ = write_frame(
            &mut *w,
            &Frame {
                kind: ERROR,
                request_id,
                payload: encode_error(code, message),
            },
        );
    }
}

fn send_frame(writer: &Arc<Mutex<Stream>>, kind: u8, request_id: u64, payload: Vec<u8>) {
    if let Ok(mut w) = writer.lock() {
        let _ = write_frame(
            &mut *w,
            &Frame {
                kind,
                request_id,
                payload,
            },
        );
    }
}

/// Sends the typed [`ERROR`] frame for a [`ServiceError`] (carrying the
/// `retry_after_ms` hint when it is an overload shed).
fn send_service_error(writer: &Arc<Mutex<Stream>>, request_id: u64, e: &ServiceError) {
    let retry_after = match e {
        ServiceError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
        _ => None,
    };
    if let Ok(mut w) = writer.lock() {
        let _ = write_frame(
            &mut *w,
            &Frame {
                kind: ERROR,
                request_id,
                payload: encode_error_retry(error_code(e), &e.to_string(), retry_after),
            },
        );
    }
}

/// Runs one connection to completion: handshake, then the pipelined
/// request loop — the reader keeps reading (so CANCEL frames land)
/// while waiter threads write each request's terminal frame. Every exit
/// path is a clean close that first joins the waiters, so accepted
/// requests always get their terminal frame; nothing in here panics on
/// hostile input.
fn handle_connection(shared: &Arc<Shared>, reader: &mut Stream, client: u64) {
    let stats = shared.core.stats();
    // The poll-granularity socket timeout drives TimedReader's deadline
    // checks; the write timeout bounds every writer through the shared
    // half (the fd is shared with the clone, so setting it here covers
    // both).
    let _ = reader.set_read_timeout(Some(shared.timeouts.poll));
    let _ = reader.set_write_timeout(Some(shared.timeouts.write));
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let inflight = Arc::new(AtomicUsize::new(0));
    let timeouts = shared.timeouts;
    let mut timed = TimedReader::new(
        reader,
        timeouts,
        Arc::clone(&shared.stop),
        Arc::clone(&inflight),
    );
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();

    // ---- Handshake ------------------------------------------------------
    timed.begin_frame();
    match read_frame(&mut timed) {
        Ok(frame) if frame.kind == HELLO => match decode_hello(&frame.payload) {
            Some(version) if version == VERSION => {
                let mut e = crate::protocol::Enc::new();
                e.u16(VERSION);
                send_frame(&writer, HELLO_OK, frame.request_id, e.buf);
            }
            Some(version) => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_VERSION,
                    &format!("unsupported protocol version {version} (server speaks {VERSION})"),
                    true,
                );
                return;
            }
            None => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_VERSION,
                    "bad hello payload",
                    true,
                );
                return;
            }
        },
        Ok(frame) => {
            send_error(
                &writer,
                stats,
                frame.request_id,
                ERR_MALFORMED,
                "expected hello frame first",
                true,
            );
            return;
        }
        Err(e) => {
            report_reap(&writer, stats, timed.reaped);
            report_read_error(&writer, stats, &e);
            return;
        }
    }

    // ---- Request loop ---------------------------------------------------
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        timed.begin_frame();
        let frame = match read_frame(&mut timed) {
            Ok(frame) => frame,
            Err(e) => {
                report_reap(&writer, stats, timed.reaped);
                report_read_error(&writer, stats, &e);
                break;
            }
        };
        match frame.kind {
            REQUEST => {
                let Some(request) = decode_request(&frame.payload) else {
                    send_error(
                        &writer,
                        stats,
                        frame.request_id,
                        ERR_MALFORMED,
                        "request payload did not decode",
                        true,
                    );
                    break;
                };
                let want_events = matches!(
                    request,
                    crate::protocol::Request::Verify {
                        want_events: true,
                        ..
                    }
                );
                let sink: Arc<dyn Instrument + Send> = if want_events {
                    Arc::new(FrameSink {
                        writer: Arc::clone(&writer),
                        request_id: frame.request_id,
                    })
                } else {
                    Arc::new(NullSink)
                };
                // Submit on the reader thread (preserving the client's
                // send order in its queue); a waiter thread blocks on
                // the ticket so this loop keeps reading — that is what
                // lets CANCEL reach an in-flight request.
                match shared.core.submit(client, frame.request_id, request, sink) {
                    Ok(ticket) => {
                        inflight.fetch_add(1, Ordering::Relaxed);
                        let writer = Arc::clone(&writer);
                        let inflight = Arc::clone(&inflight);
                        let request_id = frame.request_id;
                        waiters.push(std::thread::spawn(move || {
                            match ticket.wait() {
                                Ok(reply) => {
                                    send_frame(&writer, REPLY, request_id, encode_reply(&reply));
                                }
                                Err(e) => send_service_error(&writer, request_id, &e),
                            }
                            inflight.fetch_sub(1, Ordering::Relaxed);
                        }));
                    }
                    Err(e) => send_service_error(&writer, frame.request_id, &e),
                }
            }
            CANCEL => {
                // Idempotent: unknown/completed ids are acknowledged
                // the same way — the interesting effect (a typed
                // Cancelled terminal frame) travels on the original
                // request's id.
                let _ = shared.core.cancel(client, frame.request_id);
                send_frame(&writer, CANCEL_OK, frame.request_id, Vec::new());
            }
            STATS => {
                send_frame(
                    &writer,
                    STATS_REPLY,
                    frame.request_id,
                    encode_stats(&stats.snapshot()),
                );
            }
            SHUTDOWN => {
                send_frame(&writer, SHUTDOWN_OK, frame.request_id, Vec::new());
                shared.shutdown_requested.store(true, Ordering::Relaxed);
                break;
            }
            _ => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_MALFORMED,
                    &format!("unknown frame kind {}", frame.kind),
                    true,
                );
                break;
            }
        }
    }
    // Every accepted request still gets its terminal frame before the
    // connection closes.
    for waiter in waiters {
        let _ = waiter.join();
    }
}

fn error_code(e: &ServiceError) -> u16 {
    match e {
        ServiceError::Busy { .. } => ERR_BUSY,
        ServiceError::Overloaded { .. } => ERR_OVERLOADED,
        ServiceError::Cancelled => ERR_CANCELLED,
        ServiceError::DeadlineExpired => ERR_DEADLINE,
        ServiceError::ShuttingDown => ERR_SHUTDOWN,
        ServiceError::Session(_) => ERR_REQUEST,
    }
}

/// Announces a reaped connection: a typed [`ERR_IDLE`] frame
/// (best-effort — a dead half will not read it, a slow-loris might) and
/// the reaped-connections counter.
fn report_reap(writer: &Arc<Mutex<Stream>>, stats: &ServiceStats, reaped: Option<Reaped>) {
    let Some(why) = reaped else { return };
    stats.reaped_connections.fetch_add(1, Ordering::Relaxed);
    let message = match why {
        Reaped::SlowFrame => "connection reaped: frame did not complete within the read deadline",
        Reaped::Idle => "connection reaped: idle past the deadline with nothing in flight",
    };
    send_error(writer, stats, 0, ERR_IDLE, message, false);
}

/// Classifies a failed read: hostile frames get a typed error reply and
/// count as protocol errors; a peer that just went away does not.
fn report_read_error(writer: &Arc<Mutex<Stream>>, stats: &ServiceStats, e: &ProtoError) {
    match e {
        ProtoError::Oversized { .. } => {
            send_error(writer, stats, 0, ERR_OVERSIZED, &e.to_string(), true);
        }
        ProtoError::Malformed(_) => {
            send_error(writer, stats, 0, ERR_MALFORMED, &e.to_string(), true);
        }
        ProtoError::Closed | ProtoError::Io(_) => {}
    }
}
