//! The `rxd` socket server: unix-socket and TCP front ends over one
//! shared [`ServiceCore`].
//!
//! Each accepted connection gets its own thread and its own client id
//! (so per-client queueing, budgets and fairness apply per connection).
//! A connection is a strict request/reply conversation: after the
//! version handshake the client sends one frame at a time and the
//! server answers it — streamed [`EVENT`](crate::protocol::EVENT)
//! frames first (written by core worker threads through a shared,
//! locked write half while the request runs), then exactly one terminal
//! frame. Concurrency comes from connections, not pipelining: eight
//! clients are eight sockets, which is exactly how the load generator
//! and the acceptance tests drive it.
//!
//! Malformed input is answered, counted and dropped — never panicked
//! on: a frame that fails to decode gets a typed
//! [`ERROR`](crate::protocol::ERROR) frame, bumps
//! [`ServiceStats::protocol_errors`] and closes the connection.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use reflex_driver::{Event, Instrument, NullSink};

use crate::core::{ServiceCore, ServiceError, ServiceStats};
use crate::protocol::{
    decode_hello, decode_request, encode_error, encode_reply, encode_stats, read_frame,
    write_frame, Frame, ProtoError, ERROR, ERR_BUSY, ERR_MALFORMED, ERR_OVERSIZED, ERR_REQUEST,
    ERR_SHUTDOWN, ERR_VERSION, EVENT, HELLO, HELLO_OK, REPLY, REQUEST, SHUTDOWN, SHUTDOWN_OK,
    STATS, STATS_REPLY, VERSION,
};

/// Where the server listens. At least one of the two must be set.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Unix-socket path (a stale socket file is replaced).
    pub unix: Option<PathBuf>,
    /// TCP bind address, e.g. `127.0.0.1:7171` (port 0 picks a free
    /// port, reported by [`ServerHandle::tcp_addr`]).
    pub tcp: Option<String>,
}

/// One live transport stream (both halves).
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn close(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Forwards session events as [`EVENT`] frames through the connection's
/// shared write half, tagged with the request they belong to.
struct FrameSink {
    writer: Arc<Mutex<Stream>>,
    request_id: u64,
}

impl Instrument for FrameSink {
    fn event(&self, event: &Event) {
        let frame = Frame {
            kind: EVENT,
            request_id: self.request_id,
            payload: event.to_json().into_bytes(),
        };
        if let Ok(mut w) = self.writer.lock() {
            // A client that stopped reading mid-stream is its own
            // problem; the reply path will surface the broken pipe.
            let _ = write_frame(&mut *w, &frame);
        }
    }
}

/// A running server: its listeners, connection threads and shutdown
/// switchboard.
#[derive(Debug)]
pub struct ServerHandle {
    core: Arc<ServiceCore>,
    /// Tells accept loops and connections to wind down.
    stop: Arc<AtomicBool>,
    /// Set when a client asked the daemon to shut down.
    shutdown_requested: Arc<AtomicBool>,
    accept_threads: Mutex<Vec<JoinHandle<()>>>,
    shared: Arc<Shared>,
    /// The unix socket path actually bound, if any.
    pub unix_path: Option<PathBuf>,
    /// The TCP address actually bound, if any (resolves port 0).
    pub tcp_addr: Option<SocketAddr>,
}

/// State shared by every accept loop and connection thread.
struct Shared {
    core: Arc<ServiceCore>,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    next_client: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Read-half clones of live connections, closed on stop to unblock
    /// their reader threads.
    conns: Mutex<Vec<Stream>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish()
    }
}

/// Binds the configured listeners and starts serving `core`.
pub fn serve(core: Arc<ServiceCore>, config: &ServerConfig) -> io::Result<ServerHandle> {
    if config.unix.is_none() && config.tcp.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "server needs a unix socket path or a tcp address",
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let shutdown_requested = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        core: Arc::clone(&core),
        stop: Arc::clone(&stop),
        shutdown_requested: Arc::clone(&shutdown_requested),
        next_client: AtomicU64::new(1),
        conn_threads: Mutex::new(Vec::new()),
        conns: Mutex::new(Vec::new()),
    });
    let mut accept_threads = Vec::new();
    let mut unix_path = None;
    if let Some(path) = &config.unix {
        // A previous daemon's stale socket file would make bind fail;
        // replacing it is the standard unix-daemon move.
        if path.exists() {
            let _ = std::fs::remove_file(path);
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        let shared = Arc::clone(&shared);
        accept_threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| Stream::Unix(s)));
        }));
    }
    let mut tcp_addr = None;
    if let Some(addr) = &config.tcp {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        let shared = Arc::clone(&shared);
        accept_threads.push(std::thread::spawn(move || {
            accept_loop(&shared, || listener.accept().map(|(s, _)| Stream::Tcp(s)));
        }));
    }
    Ok(ServerHandle {
        core,
        stop,
        shutdown_requested,
        accept_threads: Mutex::new(accept_threads),
        shared,
        unix_path,
        tcp_addr,
    })
}

impl ServerHandle {
    /// Whether a client has requested daemon shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Blocks until a client requests shutdown (the `rxd` main loop).
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The core this server fronts.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Stops accepting, closes live connections, joins every server
    /// thread and removes the unix socket file. The core itself is left
    /// running — call [`ServiceCore::shutdown`] after this to drain and
    /// flush.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in std::mem::take(&mut *self.accept_threads.lock().expect("accept poisoned")) {
            let _ = handle.join();
        }
        for conn in std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned")) {
            conn.close();
        }
        for handle in
            std::mem::take(&mut *self.shared.conn_threads.lock().expect("threads poisoned"))
        {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Polls a nonblocking listener until told to stop, spawning one thread
/// per accepted connection.
fn accept_loop(shared: &Arc<Shared>, mut accept: impl FnMut() -> io::Result<Stream>) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match accept() {
            Ok(stream) => {
                shared
                    .core
                    .stats()
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                if let Ok(reader_clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conns poisoned")
                        .push(reader_clone);
                }
                let shared2 = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let mut stream = stream;
                    handle_connection(&shared2, &mut stream, client);
                    // The clone parked in `conns` (for stop()) keeps the
                    // descriptor alive; shut the socket down so the peer
                    // sees the close the moment this connection ends.
                    stream.close();
                });
                shared
                    .conn_threads
                    .lock()
                    .expect("threads poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Listener trouble (shutdown race, transient accept
                // failure): back off and re-check the stop flag.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Sends an [`ERROR`] frame (best-effort) and bumps the protocol-error
/// counter when `count` is set.
fn send_error(
    writer: &Arc<Mutex<Stream>>,
    stats: &ServiceStats,
    request_id: u64,
    code: u16,
    message: &str,
    count: bool,
) {
    if count {
        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
    if let Ok(mut w) = writer.lock() {
        let _ = write_frame(
            &mut *w,
            &Frame {
                kind: ERROR,
                request_id,
                payload: encode_error(code, message),
            },
        );
    }
}

fn send_frame(writer: &Arc<Mutex<Stream>>, kind: u8, request_id: u64, payload: Vec<u8>) {
    if let Ok(mut w) = writer.lock() {
        let _ = write_frame(
            &mut *w,
            &Frame {
                kind,
                request_id,
                payload,
            },
        );
    }
}

/// Runs one connection to completion: handshake, then the
/// request/reply loop. Every exit path is a clean close; nothing in
/// here panics on hostile input.
fn handle_connection(shared: &Arc<Shared>, reader: &mut Stream, client: u64) {
    let stats = shared.core.stats();
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };

    // ---- Handshake ------------------------------------------------------
    match read_frame(reader) {
        Ok(frame) if frame.kind == HELLO => match decode_hello(&frame.payload) {
            Some(version) if version == VERSION => {
                let mut e = crate::protocol::Enc::new();
                e.u16(VERSION);
                send_frame(&writer, HELLO_OK, frame.request_id, e.buf);
            }
            Some(version) => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_VERSION,
                    &format!("unsupported protocol version {version} (server speaks {VERSION})"),
                    true,
                );
                return;
            }
            None => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_VERSION,
                    "bad hello payload",
                    true,
                );
                return;
            }
        },
        Ok(frame) => {
            send_error(
                &writer,
                stats,
                frame.request_id,
                ERR_MALFORMED,
                "expected hello frame first",
                true,
            );
            return;
        }
        Err(e) => {
            report_read_error(&writer, stats, &e);
            return;
        }
    }

    // ---- Request loop ---------------------------------------------------
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let frame = match read_frame(reader) {
            Ok(frame) => frame,
            Err(e) => {
                report_read_error(&writer, stats, &e);
                return;
            }
        };
        match frame.kind {
            REQUEST => {
                let Some(request) = decode_request(&frame.payload) else {
                    send_error(
                        &writer,
                        stats,
                        frame.request_id,
                        ERR_MALFORMED,
                        "request payload did not decode",
                        true,
                    );
                    return;
                };
                let want_events = matches!(
                    request,
                    crate::protocol::Request::Verify {
                        want_events: true,
                        ..
                    }
                );
                let sink: Arc<dyn Instrument + Send> = if want_events {
                    Arc::new(FrameSink {
                        writer: Arc::clone(&writer),
                        request_id: frame.request_id,
                    })
                } else {
                    Arc::new(NullSink)
                };
                match shared.core.submit(client, request, sink) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(reply) => {
                            send_frame(&writer, REPLY, frame.request_id, encode_reply(&reply));
                        }
                        Err(e) => {
                            let code = error_code(&e);
                            send_error(
                                &writer,
                                stats,
                                frame.request_id,
                                code,
                                &e.to_string(),
                                false,
                            );
                        }
                    },
                    Err(e) => {
                        let code = error_code(&e);
                        send_error(
                            &writer,
                            stats,
                            frame.request_id,
                            code,
                            &e.to_string(),
                            false,
                        );
                    }
                }
            }
            STATS => {
                send_frame(
                    &writer,
                    STATS_REPLY,
                    frame.request_id,
                    encode_stats(&stats.snapshot()),
                );
            }
            SHUTDOWN => {
                send_frame(&writer, SHUTDOWN_OK, frame.request_id, Vec::new());
                shared.shutdown_requested.store(true, Ordering::Relaxed);
                return;
            }
            _ => {
                send_error(
                    &writer,
                    stats,
                    frame.request_id,
                    ERR_MALFORMED,
                    &format!("unknown frame kind {}", frame.kind),
                    true,
                );
                return;
            }
        }
    }
}

fn error_code(e: &ServiceError) -> u16 {
    match e {
        ServiceError::Busy { .. } => ERR_BUSY,
        ServiceError::ShuttingDown => ERR_SHUTDOWN,
        ServiceError::Session(_) => ERR_REQUEST,
    }
}

/// Classifies a failed read: hostile frames get a typed error reply and
/// count as protocol errors; a peer that just went away does not.
fn report_read_error(writer: &Arc<Mutex<Stream>>, stats: &ServiceStats, e: &ProtoError) {
    match e {
        ProtoError::Oversized { .. } => {
            send_error(writer, stats, 0, ERR_OVERSIZED, &e.to_string(), true);
        }
        ProtoError::Malformed(_) => {
            send_error(writer, stats, 0, ERR_MALFORMED, &e.to_string(), true);
        }
        ProtoError::Closed | ProtoError::Io(_) => {}
    }
}
