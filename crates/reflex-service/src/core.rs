//! The resident service core: one long-lived shared [`Env`] serving
//! many request-scoped sessions.
//!
//! [`ServiceCore`] inverts the ownership model of the one-shot CLI:
//! instead of every invocation building (and tearing down) its own
//! interner traffic, proof caches and proof store, the core owns them
//! once and multiplexes verify/check requests from many clients over
//! them. Each request runs as its own [`VerifySession`] with a
//! *request-scoped* budget (clamped to the server's per-client cap), so
//! one client's deadline never cancels another's work, while all of
//! them share the warm caches and the open log-structured store.
//!
//! # Fairness and backpressure
//!
//! Requests queue per client; worker threads pick the next job by
//! round-robin over clients with pending work, so a client issuing
//! thousands of requests cannot starve one issuing a single request —
//! between two consecutive picks of any active client, every other
//! active client is picked at most once. A client whose queue is full
//! (the per-client cap) is refused immediately with
//! [`ServiceError::Busy`] rather than buffered without bound; the
//! client retries after its in-flight work drains.
//!
//! # Shutdown
//!
//! [`ServiceCore::shutdown`] closes intake, drains every queued job to
//! its terminal reply, then group-commits the proof store
//! ([`reflex_verify::ProofStore::flush`]) so no accepted certificate is
//! lost. [`ServiceCore::abandon`] is the crash path the simulator uses:
//! queued jobs are dropped with [`ServiceError::ShuttingDown`] and the
//! store is *not* flushed — restarting against the same directory must
//! still find every previously committed certificate.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use reflex_driver::{Env, Instrument, SessionConfig, SessionError, VerifySession, WatchSession};
use reflex_verify::{Clock, ProofBudget, ProverOptions};

use crate::protocol::{CheckSummary, Reply, Request, StatsSnapshot};

/// Configuration for a [`ServiceCore`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Persist and reuse certificates through a proof store here.
    pub store_dir: Option<String>,
    /// Filesystem the store runs on (`None`: the real one; the
    /// simulator injects a faulty one).
    pub store_fs: Option<Arc<dyn reflex_verify::vfs::VerifyFs>>,
    /// Prover worker threads *per request* (0: one per CPU).
    pub jobs: usize,
    /// Concurrent request executors (0: one per CPU). Sim scenarios use
    /// 1 so the round-robin pick order is deterministic.
    pub workers: usize,
    /// Per-client pending-request cap; a submit beyond it is refused
    /// with [`ServiceError::Busy`]. 0 means the default (16).
    pub queue_cap: usize,
    /// Upper bound any request's wall-clock budget is clamped to.
    pub max_budget_ms: Option<u64>,
    /// Upper bound any request's explored-path budget is clamped to.
    pub max_budget_nodes: Option<u64>,
    /// Clock behind request budgets (`None`: the machine's monotonic
    /// clock; the simulator injects a virtual one).
    pub clock: Option<Arc<dyn Clock>>,
    /// Record the scheduler's client pick order (fairness tests).
    pub record_schedule: bool,
}

/// Why the service refused or failed a request.
#[derive(Debug)]
pub enum ServiceError {
    /// The client's queue is full — backpressure, retry after in-flight
    /// work drains.
    Busy {
        /// The refused client.
        client: u64,
    },
    /// The core is shutting down and takes no new work.
    ShuttingDown,
    /// The request ran and failed (parse, typecheck, store…).
    Session(SessionError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Busy { client } => {
                write!(f, "client {client}: queue full, retry later")
            }
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A pending request's completion slot: the submitting thread blocks in
/// [`Ticket::wait`] until a worker fills it.
#[derive(Debug, Default)]
pub struct Ticket {
    slot: Mutex<Option<Result<Reply, ServiceError>>>,
    done: Condvar,
}

impl Ticket {
    /// Blocks until the request reaches its terminal reply.
    pub fn wait(&self) -> Result<Reply, ServiceError> {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.done.wait(slot).expect("ticket poisoned");
        }
    }

    fn fill(&self, result: Result<Reply, ServiceError>) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// One queued unit of work.
struct Job {
    request: Request,
    sink: Arc<dyn Instrument + Send>,
    ticket: Arc<Ticket>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("request", &self.request)
            .finish()
    }
}

/// Scheduler state: per-client FIFO queues plus the round-robin ring of
/// clients with pending work.
#[derive(Debug, Default)]
struct SchedState {
    queues: HashMap<u64, VecDeque<Job>>,
    /// Clients with at least one queued job, in pick order. Invariant
    /// (at lock release): `client ∈ ring ⟺ !queues[client].is_empty()`.
    ring: VecDeque<u64>,
    /// Accepting new submissions.
    open: bool,
    /// Drop queued jobs instead of draining them (the crash path).
    aborting: bool,
    /// Jobs currently executing on workers.
    active: usize,
    /// Recorded client pick order, when enabled.
    schedule: Vec<u64>,
}

impl SchedState {
    /// Pops the next job round-robin; re-queues the client at the back
    /// of the ring if it still has pending work.
    fn pop_next(&mut self, record: bool) -> Option<Job> {
        let client = self.ring.pop_front()?;
        let queue = self.queues.get_mut(&client)?;
        let job = queue.pop_front()?;
        if !queue.is_empty() {
            self.ring.push_back(client);
        }
        if record {
            self.schedule.push(client);
        }
        Some(job)
    }

    fn drained(&self) -> bool {
        self.active == 0 && self.queues.values().all(VecDeque::is_empty)
    }
}

/// Service-wide counters (shared with the [`crate::server`] layer,
/// which owns the protocol-error and connection counts).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into a client queue.
    pub requests_submitted: AtomicU64,
    /// Requests executed to a terminal reply.
    pub requests_served: AtomicU64,
    /// Requests refused for backpressure.
    pub rejected_busy: AtomicU64,
    /// Frames that failed to decode, across all connections.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl ServiceStats {
    /// A point-in-time copy, in wire form.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests_submitted: self.requests_submitted.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

struct Inner {
    env: Arc<Env>,
    clock: Arc<dyn Clock>,
    /// Filesystem the store runs on, kept for the watch loop's
    /// degraded-mode reopen probes.
    store_fs: Option<Arc<dyn reflex_verify::vfs::VerifyFs>>,
    queue_cap: usize,
    max_budget_ms: Option<u64>,
    max_budget_nodes: Option<u64>,
    record_schedule: bool,
    state: Mutex<SchedState>,
    /// Woken on submit, job completion and shutdown; workers and the
    /// draining shutdown both wait on it.
    changed: Condvar,
    stats: ServiceStats,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

/// The resident verification service: a long-lived shared [`Env`] plus
/// a fair, backpressured request scheduler (see the module docs).
#[derive(Debug)]
pub struct ServiceCore {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServiceCore {
    /// Opens the store (if configured), builds the shared [`Env`] and
    /// spawns the worker pool.
    pub fn start(config: ServiceConfig) -> Result<ServiceCore, SessionError> {
        let session_config = SessionConfig {
            options: ProverOptions {
                jobs: config.jobs,
                ..ProverOptions::default()
            },
            jobs: config.jobs,
            store_dir: config.store_dir.clone(),
            store_fs: config.store_fs.clone(),
            clock: config.clock.clone(),
            ..SessionConfig::default()
        };
        let env = Arc::new(Env::new(&session_config)?);
        let clock = config
            .clock
            .clone()
            .unwrap_or_else(reflex_verify::RealClock::shared);
        let inner = Arc::new(Inner {
            env,
            clock,
            store_fs: config.store_fs.clone(),
            queue_cap: if config.queue_cap == 0 {
                16
            } else {
                config.queue_cap
            },
            max_budget_ms: config.max_budget_ms,
            max_budget_nodes: config.max_budget_nodes,
            record_schedule: config.record_schedule,
            state: Mutex::new(SchedState {
                open: true,
                ..SchedState::default()
            }),
            changed: Condvar::new(),
            stats: ServiceStats::default(),
        });
        let workers = reflex_verify::resolve_jobs(config.workers);
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(ServiceCore {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// The shared environment (caches, store slot, job pool).
    pub fn env(&self) -> &Arc<Env> {
        &self.inner.env
    }

    /// The clock request budgets tick against.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// The service counters (shared with the socket server).
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// Enqueues a request for `client`, refusing with
    /// [`ServiceError::Busy`] when the client's queue is at its cap.
    /// Events stream into `sink` while the request runs; the returned
    /// ticket blocks until the terminal reply.
    pub fn submit(
        &self,
        client: u64,
        request: Request,
        sink: Arc<dyn Instrument + Send>,
    ) -> Result<Arc<Ticket>, ServiceError> {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("scheduler poisoned");
        if !state.open {
            return Err(ServiceError::ShuttingDown);
        }
        let queue = state.queues.entry(client).or_default();
        if queue.len() >= inner.queue_cap {
            inner.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Busy { client });
        }
        let ticket = Arc::new(Ticket::default());
        let was_empty = queue.is_empty();
        queue.push_back(Job {
            request,
            sink,
            ticket: Arc::clone(&ticket),
        });
        if was_empty {
            state.ring.push_back(client);
        }
        inner
            .stats
            .requests_submitted
            .fetch_add(1, Ordering::Relaxed);
        drop(state);
        inner.changed.notify_all();
        Ok(ticket)
    }

    /// Submits and waits: the blocking convenience the in-process CLI
    /// path uses.
    pub fn request(
        &self,
        client: u64,
        request: Request,
        sink: Arc<dyn Instrument + Send>,
    ) -> Result<Reply, ServiceError> {
        self.submit(client, request, sink)?.wait()
    }

    /// A watch loop over this core's shared env: the in-process
    /// `rx watch` path. The loop drives the store retry/degrade/
    /// re-attach policy around the env's store slot. The budget (clamped
    /// to the per-client caps, like any request's) spans the whole loop,
    /// exactly as the one-shot watch command's env-wide budget did.
    pub fn watch(
        &self,
        store_dir: Option<String>,
        budget_ms: Option<u64>,
        budget_nodes: Option<u64>,
    ) -> WatchSession {
        let budget = request_budget(&self.inner, budget_ms, budget_nodes);
        let session = match budget {
            Some(_) => VerifySession::with_env_budget(Arc::clone(&self.inner.env), budget),
            None => VerifySession::with_env(Arc::clone(&self.inner.env)),
        };
        WatchSession::over(
            session,
            store_dir,
            self.inner.store_fs.clone(),
            Arc::clone(&self.inner.clock),
        )
    }

    /// The recorded client pick order (empty unless
    /// [`ServiceConfig::record_schedule`] was set).
    pub fn schedule(&self) -> Vec<u64> {
        self.inner
            .state
            .lock()
            .expect("scheduler poisoned")
            .schedule
            .clone()
    }

    /// Graceful shutdown: closes intake, drains every queued job to its
    /// reply, joins the workers and group-commits the proof store.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("scheduler poisoned");
            state.open = false;
            while !state.drained() {
                self.inner.changed.notify_all();
                state = self.inner.changed.wait(state).expect("scheduler poisoned");
            }
        }
        self.inner.changed.notify_all();
        self.join_workers();
        if let Some(store) = self.inner.env.store() {
            // Shutdown must not lose group-buffered writes; an fsync
            // error here is the store's to count, not ours to panic on.
            let _ = store.flush();
        }
    }

    /// Crash shutdown (the simulator's kill switch): closes intake,
    /// drops queued jobs with [`ServiceError::ShuttingDown`], joins the
    /// workers and deliberately skips the store flush.
    pub fn abandon(&self) {
        let dropped: Vec<Job> = {
            let mut state = self.inner.state.lock().expect("scheduler poisoned");
            state.open = false;
            state.aborting = true;
            state.ring.clear();
            state.queues.values_mut().flat_map(std::mem::take).collect()
        };
        for job in dropped {
            job.ticket.fill(Err(ServiceError::ShuttingDown));
        }
        self.inner.changed.notify_all();
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("scheduler poisoned");
            loop {
                if state.aborting {
                    return;
                }
                if let Some(job) = state.pop_next(inner.record_schedule) {
                    state.active += 1;
                    break job;
                }
                if !state.open {
                    // Intake is closed and nothing is queued: drained.
                    return;
                }
                state = inner.changed.wait(state).expect("scheduler poisoned");
            }
        };
        let result = execute(inner, job.request, &*job.sink);
        inner.stats.requests_served.fetch_add(1, Ordering::Relaxed);
        job.ticket.fill(result);
        {
            let mut state = inner.state.lock().expect("scheduler poisoned");
            state.active -= 1;
        }
        inner.changed.notify_all();
    }
}

/// Runs one request to its terminal reply.
fn execute(inner: &Inner, request: Request, sink: &dyn Instrument) -> Result<Reply, ServiceError> {
    match request {
        Request::Ping => Ok(Reply::Pong),
        Request::Check { name, source } => {
            let program = reflex_parser::parse_program(&name, &source)
                .map_err(|e| ServiceError::Session(SessionError::Parse(e.to_string())))?;
            let checked = reflex_typeck::check(&program)
                .map_err(|e| ServiceError::Session(SessionError::Typecheck(e.to_string())))?;
            let p = checked.program();
            Ok(Reply::Checked(CheckSummary {
                program: p.name.clone(),
                components: p.components.len() as u64,
                messages: p.messages.len() as u64,
                state_vars: p.state.len() as u64,
                handlers: p.handlers.len() as u64,
                properties: p.properties.len() as u64,
            }))
        }
        Request::Verify {
            name,
            source,
            property,
            budget_ms,
            budget_nodes,
            want_events: _,
        } => {
            let budget = request_budget(inner, budget_ms, budget_nodes);
            let session = VerifySession::with_env_budget(Arc::clone(&inner.env), budget)
                .with_property(property);
            let report = session
                .verify_source(&name, &source, sink)
                .map_err(ServiceError::Session)?;
            Ok(Reply::Verify(Box::new(report)))
        }
    }
}

/// The request's effective budget: its own asks clamped to the
/// per-client caps (a capped dimension applies even when the request
/// asked for nothing).
fn request_budget(
    inner: &Inner,
    budget_ms: Option<u64>,
    budget_nodes: Option<u64>,
) -> Option<Arc<ProofBudget>> {
    let ms = clamp(budget_ms, inner.max_budget_ms);
    let nodes = clamp(budget_nodes, inner.max_budget_nodes);
    (ms.is_some() || nodes.is_some()).then(|| {
        Arc::new(ProofBudget::new_with_clock(
            Arc::clone(&inner.clock),
            ms.map(Duration::from_millis),
            nodes,
        ))
    })
}

fn clamp(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
    match (requested, cap) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    }
}
