//! The resident service core: one long-lived shared [`Env`] serving
//! many request-scoped sessions.
//!
//! [`ServiceCore`] inverts the ownership model of the one-shot CLI:
//! instead of every invocation building (and tearing down) its own
//! interner traffic, proof caches and proof store, the core owns them
//! once and multiplexes verify/check requests from many clients over
//! them. Each request runs as its own [`VerifySession`] with a
//! *request-scoped* budget (clamped to the server's per-client cap), so
//! one client's deadline never cancels another's work, while all of
//! them share the warm caches and the open log-structured store.
//!
//! # Fairness and backpressure
//!
//! Requests queue per client; worker threads pick the next job by
//! round-robin over clients with pending work, so a client issuing
//! thousands of requests cannot starve one issuing a single request —
//! between two consecutive picks of any active client, every other
//! active client is picked at most once. A client whose queue is full
//! (the per-client cap) is refused immediately with
//! [`ServiceError::Busy`] rather than buffered without bound; the
//! client retries after its in-flight work drains.
//!
//! # Shutdown
//!
//! [`ServiceCore::shutdown`] closes intake, drains every queued job to
//! its terminal reply, then group-commits the proof store
//! ([`reflex_verify::ProofStore::flush`]) so no accepted certificate is
//! lost. [`ServiceCore::abandon`] is the crash path the simulator uses:
//! queued jobs are dropped with [`ServiceError::ShuttingDown`] and the
//! store is *not* flushed — restarting against the same directory must
//! still find every previously committed certificate.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use reflex_driver::{Env, Instrument, SessionConfig, SessionError, VerifySession, WatchSession};
use reflex_verify::{Clock, ProofBudget, ProverOptions};

use crate::protocol::{CheckSummary, Reply, Request, StatsSnapshot};

/// Configuration for a [`ServiceCore`].
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Persist and reuse certificates through a proof store here.
    pub store_dir: Option<String>,
    /// Filesystem the store runs on (`None`: the real one; the
    /// simulator injects a faulty one).
    pub store_fs: Option<Arc<dyn reflex_verify::vfs::VerifyFs>>,
    /// Prover worker threads *per request* (0: one per CPU).
    pub jobs: usize,
    /// Concurrent request executors (0: one per CPU). Sim scenarios use
    /// 1 so the round-robin pick order is deterministic.
    pub workers: usize,
    /// Per-client pending-request cap; a submit beyond it is refused
    /// with [`ServiceError::Busy`]. 0 means the default (16).
    pub queue_cap: usize,
    /// Upper bound any request's wall-clock budget is clamped to.
    pub max_budget_ms: Option<u64>,
    /// Upper bound any request's explored-path budget is clamped to.
    pub max_budget_nodes: Option<u64>,
    /// Clock behind request budgets (`None`: the machine's monotonic
    /// clock; the simulator injects a virtual one).
    pub clock: Option<Arc<dyn Clock>>,
    /// Record the scheduler's client pick order (fairness tests).
    pub record_schedule: bool,
    /// Admission-control high watermark on *total* queued jobs across
    /// all clients: a submit at or above it is shed immediately with
    /// [`ServiceError::Overloaded`] instead of queueing. 0 disables.
    pub shed_queue_depth: usize,
    /// Per-client cap on queued + executing requests; beyond it a
    /// submit is shed with [`ServiceError::Overloaded`]. 0 disables.
    pub client_inflight_cap: usize,
    /// `retry_after_ms` hint attached to shed rejections. 0 means the
    /// default (100 ms).
    pub shed_retry_after_ms: u64,
    /// Completed-reply entries kept in the idempotency dedup window.
    /// 0 means the default (256).
    pub idempotency_window: usize,
}

/// Why the service refused or failed a request. `Clone` so an
/// idempotent in-flight attempt can fan its result out to every
/// attached retry.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The client's queue is full — backpressure, retry after in-flight
    /// work drains.
    Busy {
        /// The refused client.
        client: u64,
    },
    /// Admission control shed the request before queueing it (global
    /// queue depth or per-client in-flight watermark).
    Overloaded {
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The request was cancelled while still queued (a running request
    /// instead finishes with a typed `Outcome::Cancelled` reply).
    Cancelled,
    /// The request's deadline expired before a worker picked it up.
    DeadlineExpired,
    /// The core is shutting down and takes no new work.
    ShuttingDown,
    /// The request ran and failed (parse, typecheck, store…).
    Session(SessionError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Busy { client } => {
                write!(f, "client {client}: queue full, retry later")
            }
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded, retry after {retry_after_ms} ms")
            }
            ServiceError::Cancelled => write!(f, "request cancelled while queued"),
            ServiceError::DeadlineExpired => {
                write!(f, "request deadline expired while queued")
            }
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A pending request's completion slot: the submitting thread blocks in
/// [`Ticket::wait`] until a worker fills it.
#[derive(Debug, Default)]
pub struct Ticket {
    slot: Mutex<Option<Result<Reply, ServiceError>>>,
    done: Condvar,
}

impl Ticket {
    /// Blocks until the request reaches its terminal reply.
    pub fn wait(&self) -> Result<Reply, ServiceError> {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.done.wait(slot).expect("ticket poisoned");
        }
    }

    fn fill(&self, result: Result<Reply, ServiceError>) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// One queued unit of work.
struct Job {
    client: u64,
    request_id: u64,
    request: Request,
    sink: Arc<dyn Instrument + Send>,
    ticket: Arc<Ticket>,
    /// Absolute deadline on the core clock, if the request carried one.
    deadline_ns: Option<u64>,
    /// The request's idempotency key, if any (Verify only).
    idem_key: Option<u64>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("request", &self.request)
            .finish()
    }
}

/// Scheduler state: per-client FIFO queues plus the round-robin ring of
/// clients with pending work.
#[derive(Debug, Default)]
struct SchedState {
    queues: HashMap<u64, VecDeque<Job>>,
    /// Clients with at least one queued job, in pick order. Invariant
    /// (at lock release): `client ∈ ring ⟺ !queues[client].is_empty()`.
    ring: VecDeque<u64>,
    /// Total queued jobs across all clients (the shed watermark input).
    queued_total: usize,
    /// Budgets of jobs currently executing, keyed `(client, request_id)`
    /// — the handle [`ServiceCore::cancel`] trips for mid-run stops.
    running: HashMap<(u64, u64), Arc<ProofBudget>>,
    /// Accepting new submissions.
    open: bool,
    /// Drop queued jobs instead of draining them (the crash path).
    aborting: bool,
    /// Jobs currently executing on workers.
    active: usize,
    /// Recorded client pick order, when enabled.
    schedule: Vec<u64>,
}

impl SchedState {
    /// Pops the next job round-robin; re-queues the client at the back
    /// of the ring if it still has pending work.
    fn pop_next(&mut self, record: bool) -> Option<Job> {
        let client = self.ring.pop_front()?;
        let queue = self.queues.get_mut(&client)?;
        let job = queue.pop_front()?;
        self.queued_total -= 1;
        if !queue.is_empty() {
            self.ring.push_back(client);
        }
        if record {
            self.schedule.push(client);
        }
        Some(job)
    }

    /// Removes a specific queued job, maintaining the ring invariant.
    fn remove_queued(&mut self, client: u64, request_id: u64) -> Option<Job> {
        let queue = self.queues.get_mut(&client)?;
        let at = queue.iter().position(|j| j.request_id == request_id)?;
        let job = queue.remove(at)?;
        self.queued_total -= 1;
        if queue.is_empty() {
            self.ring.retain(|c| *c != client);
        }
        Some(job)
    }

    /// Queued + executing requests for one client.
    fn inflight_of(&self, client: u64) -> usize {
        let queued = self.queues.get(&client).map_or(0, VecDeque::len);
        let running = self.running.keys().filter(|(c, _)| *c == client).count();
        queued + running
    }

    fn drained(&self) -> bool {
        self.active == 0 && self.queues.values().all(VecDeque::is_empty)
    }
}

/// What [`ServiceCore::cancel`] found to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStatus {
    /// The request was still queued; its ticket was filled with
    /// [`ServiceError::Cancelled`] without running.
    Queued,
    /// The request was executing; its budget's cancellation flag was
    /// set, so it will finish with a typed `Outcome::Cancelled` reply.
    Running,
    /// No such request is queued or running (already completed, or the
    /// id was never submitted). Cancellation is idempotent: this is an
    /// acknowledgement, not an error.
    Unknown,
}

/// Service-wide counters (shared with the [`crate::server`] layer,
/// which owns the protocol-error and connection counts).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into a client queue.
    pub requests_submitted: AtomicU64,
    /// Requests executed to a terminal reply.
    pub requests_served: AtomicU64,
    /// Requests refused for backpressure.
    pub rejected_busy: AtomicU64,
    /// Frames that failed to decode, across all connections.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests shed by admission control.
    pub rejected_overloaded: AtomicU64,
    /// Requests cancelled (queued kills and mid-run stops).
    pub cancelled: AtomicU64,
    /// Requests whose deadline expired while still queued.
    pub deadline_expired: AtomicU64,
    /// Verify requests answered from the idempotency window.
    pub idempotent_hits: AtomicU64,
    /// Verify requests that actually ran a proof session.
    pub requests_executed: AtomicU64,
    /// Connections reaped by the server's read/idle deadline.
    pub reaped_connections: AtomicU64,
    /// Transient `accept()` errors survived by the listener loop.
    pub accept_errors: AtomicU64,
}

impl ServiceStats {
    /// A point-in-time copy, in wire form.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests_submitted: self.requests_submitted.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            idempotent_hits: self.idempotent_hits.load(Ordering::Relaxed),
            requests_executed: self.requests_executed.load(Ordering::Relaxed),
            reaped_connections: self.reaped_connections.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
        }
    }
}

/// One idempotency-window entry.
enum IdemEntry {
    /// The keyed request is queued or executing; retries attach their
    /// tickets here and are filled when the first attempt finishes.
    InFlight { followers: Vec<Arc<Ticket>> },
    /// The keyed request completed; retries get the cached reply (the
    /// certificates inside are the very bytes the first attempt
    /// produced).
    Done(Reply),
}

/// Bounded dedup window: key → entry, with completed entries evicted
/// oldest-first past the cap. In-flight entries are bounded by the
/// queues themselves and never evicted.
#[derive(Default)]
struct IdemWindow {
    entries: HashMap<u64, IdemEntry>,
    /// Completed keys in insertion order (the eviction queue).
    done_order: VecDeque<u64>,
}

impl IdemWindow {
    /// Records a completed keyed request and wakes attached retries.
    /// Only successful replies are cached: a deterministic failure will
    /// fail identically on a re-run, and caching errors would let one
    /// transient fault poison every retry.
    fn complete(&mut self, key: u64, result: &Result<Reply, ServiceError>, cap: usize) {
        let followers = match self.entries.remove(&key) {
            Some(IdemEntry::InFlight { followers }) => followers,
            _ => Vec::new(),
        };
        for f in followers {
            f.fill(result.clone());
        }
        if let Ok(reply) = result {
            self.entries.insert(key, IdemEntry::Done(reply.clone()));
            self.done_order.push_back(key);
            while self.done_order.len() > cap {
                if let Some(old) = self.done_order.pop_front() {
                    if matches!(self.entries.get(&old), Some(IdemEntry::Done(_))) {
                        self.entries.remove(&old);
                    }
                }
            }
        }
    }

    /// Drops an in-flight entry whose first attempt died before
    /// executing (cancelled / deadline-expired / abandoned), failing
    /// attached retries with the same typed error.
    fn fail_inflight(&mut self, key: u64, error: &ServiceError) {
        if let Some(IdemEntry::InFlight { followers }) = self.entries.remove(&key) {
            for f in followers {
                f.fill(Err(error.clone()));
            }
        }
    }
}

struct Inner {
    env: Arc<Env>,
    clock: Arc<dyn Clock>,
    /// Filesystem the store runs on, kept for the watch loop's
    /// degraded-mode reopen probes.
    store_fs: Option<Arc<dyn reflex_verify::vfs::VerifyFs>>,
    queue_cap: usize,
    max_budget_ms: Option<u64>,
    max_budget_nodes: Option<u64>,
    record_schedule: bool,
    shed_queue_depth: usize,
    client_inflight_cap: usize,
    shed_retry_after_ms: u64,
    idempotency_cap: usize,
    state: Mutex<SchedState>,
    /// The idempotency dedup window. Lock order: `state` before `idem`
    /// when both are held (submit); workers take `idem` alone.
    idem: Mutex<IdemWindow>,
    /// Internal request-id source for [`ServiceCore::request`] callers
    /// that have no wire ids; starts in the top half of the id space so
    /// it can never collide with a connection's frame ids.
    next_internal_id: AtomicU64,
    /// Woken on submit, job completion and shutdown; workers and the
    /// draining shutdown both wait on it.
    changed: Condvar,
    stats: ServiceStats,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

/// The resident verification service: a long-lived shared [`Env`] plus
/// a fair, backpressured request scheduler (see the module docs).
#[derive(Debug)]
pub struct ServiceCore {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServiceCore {
    /// Opens the store (if configured), builds the shared [`Env`] and
    /// spawns the worker pool.
    pub fn start(config: ServiceConfig) -> Result<ServiceCore, SessionError> {
        let session_config = SessionConfig {
            options: ProverOptions {
                jobs: config.jobs,
                ..ProverOptions::default()
            },
            jobs: config.jobs,
            store_dir: config.store_dir.clone(),
            store_fs: config.store_fs.clone(),
            clock: config.clock.clone(),
            ..SessionConfig::default()
        };
        let env = Arc::new(Env::new(&session_config)?);
        let clock = config
            .clock
            .clone()
            .unwrap_or_else(reflex_verify::RealClock::shared);
        let inner = Arc::new(Inner {
            env,
            clock,
            store_fs: config.store_fs.clone(),
            queue_cap: if config.queue_cap == 0 {
                16
            } else {
                config.queue_cap
            },
            max_budget_ms: config.max_budget_ms,
            max_budget_nodes: config.max_budget_nodes,
            record_schedule: config.record_schedule,
            shed_queue_depth: config.shed_queue_depth,
            client_inflight_cap: config.client_inflight_cap,
            shed_retry_after_ms: if config.shed_retry_after_ms == 0 {
                100
            } else {
                config.shed_retry_after_ms
            },
            idempotency_cap: if config.idempotency_window == 0 {
                256
            } else {
                config.idempotency_window
            },
            state: Mutex::new(SchedState {
                open: true,
                ..SchedState::default()
            }),
            idem: Mutex::new(IdemWindow::default()),
            next_internal_id: AtomicU64::new(1 << 63),
            changed: Condvar::new(),
            stats: ServiceStats::default(),
        });
        let workers = reflex_verify::resolve_jobs(config.workers);
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(ServiceCore {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// The shared environment (caches, store slot, job pool).
    pub fn env(&self) -> &Arc<Env> {
        &self.inner.env
    }

    /// The clock request budgets tick against.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// The service counters (shared with the socket server).
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// Enqueues a request for `client`, refusing with
    /// [`ServiceError::Busy`] when the client's queue is at its cap and
    /// with [`ServiceError::Overloaded`] when admission control's
    /// watermarks say queueing would only grow the backlog. Events
    /// stream into `sink` while the request runs; the returned ticket
    /// blocks until the terminal reply. `request_id` must be unique
    /// among the client's live requests — it is the handle
    /// [`ServiceCore::cancel`] takes.
    pub fn submit(
        &self,
        client: u64,
        request_id: u64,
        request: Request,
        sink: Arc<dyn Instrument + Send>,
    ) -> Result<Arc<Ticket>, ServiceError> {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("scheduler poisoned");
        if !state.open {
            return Err(ServiceError::ShuttingDown);
        }
        // Idempotency first: a retry of known work is never shed — it
        // costs nothing to answer from the window.
        let (deadline_ms, idem_key) = match &request {
            Request::Verify {
                deadline_ms,
                idempotency_key,
                ..
            } => (*deadline_ms, *idempotency_key),
            _ => (None, None),
        };
        if let Some(key) = idem_key {
            let mut idem = inner.idem.lock().expect("idempotency window poisoned");
            match idem.entries.get_mut(&key) {
                Some(IdemEntry::Done(reply)) => {
                    let ticket = Arc::new(Ticket::default());
                    ticket.fill(Ok(reply.clone()));
                    inner.stats.idempotent_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(ticket);
                }
                Some(IdemEntry::InFlight { followers }) => {
                    let ticket = Arc::new(Ticket::default());
                    followers.push(Arc::clone(&ticket));
                    inner.stats.idempotent_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(ticket);
                }
                None => {
                    idem.entries.insert(
                        key,
                        IdemEntry::InFlight {
                            followers: Vec::new(),
                        },
                    );
                }
            }
        }
        // Admission control: shed fast while the backlog is high
        // instead of buffering up to the hard cap.
        let shed = (inner.shed_queue_depth > 0 && state.queued_total >= inner.shed_queue_depth)
            || (inner.client_inflight_cap > 0
                && state.inflight_of(client) >= inner.client_inflight_cap);
        if shed {
            if let Some(key) = idem_key {
                inner
                    .idem
                    .lock()
                    .expect("idempotency window poisoned")
                    .entries
                    .remove(&key);
            }
            inner
                .stats
                .rejected_overloaded
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                retry_after_ms: inner.shed_retry_after_ms,
            });
        }
        let queue = state.queues.entry(client).or_default();
        if queue.len() >= inner.queue_cap {
            if let Some(key) = idem_key {
                inner
                    .idem
                    .lock()
                    .expect("idempotency window poisoned")
                    .entries
                    .remove(&key);
            }
            inner.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Busy { client });
        }
        // Only read the clock when a deadline was actually asked for:
        // under the simulator's virtual clock every read advances time,
        // so deadline-free requests must stay read-free.
        let deadline_ns = deadline_ms.map(|ms| {
            inner
                .clock
                .now_ns()
                .saturating_add(ms.saturating_mul(1_000_000))
        });
        let ticket = Arc::new(Ticket::default());
        let was_empty = queue.is_empty();
        queue.push_back(Job {
            client,
            request_id,
            request,
            sink,
            ticket: Arc::clone(&ticket),
            deadline_ns,
            idem_key,
        });
        state.queued_total += 1;
        if was_empty {
            state.ring.push_back(client);
        }
        inner
            .stats
            .requests_submitted
            .fetch_add(1, Ordering::Relaxed);
        drop(state);
        inner.changed.notify_all();
        Ok(ticket)
    }

    /// Submits and waits: the blocking convenience the in-process CLI
    /// path uses. Request ids are allocated internally (no wire ids to
    /// collide with).
    pub fn request(
        &self,
        client: u64,
        request: Request,
        sink: Arc<dyn Instrument + Send>,
    ) -> Result<Reply, ServiceError> {
        let id = self.inner.next_internal_id.fetch_add(1, Ordering::Relaxed);
        self.submit(client, id, request, sink)?.wait()
    }

    /// Cancels a queued or running request. A queued request dies here
    /// with [`ServiceError::Cancelled`]; a running one gets its
    /// budget's cancellation flag set and finishes with a typed
    /// `Outcome::Cancelled` reply. Unknown or completed ids are a
    /// no-op acknowledgement.
    pub fn cancel(&self, client: u64, request_id: u64) -> CancelStatus {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("scheduler poisoned");
        if let Some(job) = state.remove_queued(client, request_id) {
            drop(state);
            if let Some(key) = job.idem_key {
                inner
                    .idem
                    .lock()
                    .expect("idempotency window poisoned")
                    .fail_inflight(key, &ServiceError::Cancelled);
            }
            job.ticket.fill(Err(ServiceError::Cancelled));
            inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            inner.changed.notify_all();
            return CancelStatus::Queued;
        }
        if let Some(budget) = state.running.get(&(client, request_id)) {
            budget.cancel();
            inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            return CancelStatus::Running;
        }
        CancelStatus::Unknown
    }

    /// A watch loop over this core's shared env: the in-process
    /// `rx watch` path. The loop drives the store retry/degrade/
    /// re-attach policy around the env's store slot. The budget (clamped
    /// to the per-client caps, like any request's) spans the whole loop,
    /// exactly as the one-shot watch command's env-wide budget did.
    pub fn watch(
        &self,
        store_dir: Option<String>,
        budget_ms: Option<u64>,
        budget_nodes: Option<u64>,
    ) -> WatchSession {
        let ms = clamp(budget_ms, self.inner.max_budget_ms);
        let nodes = clamp(budget_nodes, self.inner.max_budget_nodes);
        let budget = (ms.is_some() || nodes.is_some()).then(|| {
            Arc::new(ProofBudget::new_with_clock(
                Arc::clone(&self.inner.clock),
                ms.map(Duration::from_millis),
                nodes,
            ))
        });
        let session = match budget {
            Some(_) => VerifySession::with_env_budget(Arc::clone(&self.inner.env), budget),
            None => VerifySession::with_env(Arc::clone(&self.inner.env)),
        };
        WatchSession::over(
            session,
            store_dir,
            self.inner.store_fs.clone(),
            Arc::clone(&self.inner.clock),
        )
    }

    /// The recorded client pick order (empty unless
    /// [`ServiceConfig::record_schedule`] was set).
    pub fn schedule(&self) -> Vec<u64> {
        self.inner
            .state
            .lock()
            .expect("scheduler poisoned")
            .schedule
            .clone()
    }

    /// Graceful shutdown: closes intake, drains every queued job to its
    /// reply, joins the workers and group-commits the proof store.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("scheduler poisoned");
            state.open = false;
            while !state.drained() {
                self.inner.changed.notify_all();
                state = self.inner.changed.wait(state).expect("scheduler poisoned");
            }
        }
        self.inner.changed.notify_all();
        self.join_workers();
        if let Some(store) = self.inner.env.store() {
            // Shutdown must not lose group-buffered writes; an fsync
            // error here is the store's to count, not ours to panic on.
            let _ = store.flush();
        }
    }

    /// Crash shutdown (the simulator's kill switch): closes intake,
    /// drops queued jobs with [`ServiceError::ShuttingDown`], joins the
    /// workers and deliberately skips the store flush.
    pub fn abandon(&self) {
        let dropped: Vec<Job> = {
            let mut state = self.inner.state.lock().expect("scheduler poisoned");
            state.open = false;
            state.aborting = true;
            state.ring.clear();
            state.queued_total = 0;
            state.queues.values_mut().flat_map(std::mem::take).collect()
        };
        for job in dropped {
            if let Some(key) = job.idem_key {
                self.inner
                    .idem
                    .lock()
                    .expect("idempotency window poisoned")
                    .fail_inflight(key, &ServiceError::ShuttingDown);
            }
            job.ticket.fill(Err(ServiceError::ShuttingDown));
        }
        self.inner.changed.notify_all();
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (job, budget) = {
            let mut state = inner.state.lock().expect("scheduler poisoned");
            loop {
                if state.aborting {
                    return;
                }
                if let Some(job) = state.pop_next(inner.record_schedule) {
                    // Expired-in-queue: answer with the typed error
                    // without spending a worker on it.
                    if let Some(deadline_ns) = job.deadline_ns {
                        if inner.clock.now_ns() >= deadline_ns {
                            drop(state);
                            if let Some(key) = job.idem_key {
                                inner
                                    .idem
                                    .lock()
                                    .expect("idempotency window poisoned")
                                    .fail_inflight(key, &ServiceError::DeadlineExpired);
                            }
                            inner.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                            job.ticket.fill(Err(ServiceError::DeadlineExpired));
                            inner.changed.notify_all();
                            state = inner.state.lock().expect("scheduler poisoned");
                            continue;
                        }
                    }
                    state.active += 1;
                    // Every job gets a budget — unlimited if nothing was
                    // asked — so it is always cancellable mid-run. The
                    // remaining deadline folds into the wall axis, so
                    // mid-run expiry surfaces as a typed Timeout reply.
                    let budget = request_budget(inner, &job);
                    state
                        .running
                        .insert((job.client, job.request_id), Arc::clone(&budget));
                    break (job, budget);
                }
                if !state.open {
                    // Intake is closed and nothing is queued: drained.
                    return;
                }
                state = inner.changed.wait(state).expect("scheduler poisoned");
            }
        };
        let result = execute(inner, job.request, &*job.sink, budget);
        inner.stats.requests_served.fetch_add(1, Ordering::Relaxed);
        if let Some(key) = job.idem_key {
            inner
                .idem
                .lock()
                .expect("idempotency window poisoned")
                .complete(key, &result, inner.idempotency_cap);
        }
        job.ticket.fill(result);
        {
            let mut state = inner.state.lock().expect("scheduler poisoned");
            state.running.remove(&(job.client, job.request_id));
            state.active -= 1;
        }
        inner.changed.notify_all();
    }
}

/// Runs one request to its terminal reply.
fn execute(
    inner: &Inner,
    request: Request,
    sink: &dyn Instrument,
    budget: Arc<ProofBudget>,
) -> Result<Reply, ServiceError> {
    match request {
        Request::Ping => Ok(Reply::Pong),
        Request::Check { name, source } => {
            let program = reflex_parser::parse_program(&name, &source)
                .map_err(|e| ServiceError::Session(SessionError::Parse(e.to_string())))?;
            let checked = reflex_typeck::check(&program)
                .map_err(|e| ServiceError::Session(SessionError::Typecheck(e.to_string())))?;
            let p = checked.program();
            Ok(Reply::Checked(CheckSummary {
                program: p.name.clone(),
                components: p.components.len() as u64,
                messages: p.messages.len() as u64,
                state_vars: p.state.len() as u64,
                handlers: p.handlers.len() as u64,
                properties: p.properties.len() as u64,
            }))
        }
        Request::Verify {
            name,
            source,
            property,
            ..
        } => {
            inner
                .stats
                .requests_executed
                .fetch_add(1, Ordering::Relaxed);
            let session = VerifySession::with_env_budget(Arc::clone(&inner.env), Some(budget))
                .with_property(property);
            let report = session
                .verify_source(&name, &source, sink)
                .map_err(ServiceError::Session)?;
            Ok(Reply::Verify(Box::new(report)))
        }
    }
}

/// The job's effective budget: its own asks clamped to the per-client
/// caps (a capped dimension applies even when the request asked for
/// nothing), with any remaining deadline folded into the wall axis.
/// Always present, so every running job doubles as a cancellation
/// target; an unlimited budget never reads the clock, keeping
/// deadline-free simulator runs read-for-read identical.
fn request_budget(inner: &Inner, job: &Job) -> Arc<ProofBudget> {
    let (budget_ms, budget_nodes) = match &job.request {
        Request::Verify {
            budget_ms,
            budget_nodes,
            ..
        } => (*budget_ms, *budget_nodes),
        _ => (None, None),
    };
    let mut ms = clamp(budget_ms, inner.max_budget_ms);
    if let Some(deadline_ns) = job.deadline_ns {
        let left_ms = deadline_ns
            .saturating_sub(inner.clock.now_ns())
            .div_ceil(1_000_000)
            .max(1);
        ms = Some(ms.map_or(left_ms, |m| m.min(left_ms)));
    }
    let nodes = clamp(budget_nodes, inner.max_budget_nodes);
    Arc::new(ProofBudget::new_with_clock(
        Arc::clone(&inner.clock),
        ms.map(Duration::from_millis),
        nodes,
    ))
}

fn clamp(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
    match (requested, cap) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, cap) => cap,
    }
}
