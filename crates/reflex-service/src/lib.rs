//! Resident verification service: a long-lived shared environment
//! behind a small wire protocol.
//!
//! The one-shot pipeline (`reflex-driver`) rebuilds its world — interned
//! terms, proof caches, the open proof store — on every invocation and
//! throws it away at exit. This crate inverts that ownership:
//!
//! * [`core`] — [`ServiceCore`](core::ServiceCore) owns one
//!   [`Env`](reflex_driver::Env) for the life of the process and serves
//!   verify/check requests as request-scoped sessions with per-client
//!   budgets, round-robin fairness and queue-cap backpressure;
//! * [`protocol`] — the length-prefixed frame protocol `rxd` speaks:
//!   request ids, streamed instrument events, typed errors, and a
//!   deterministic report codec whose certificates are byte-identical
//!   to a local run's;
//! * [`server`] — unix-socket and TCP front ends multiplexing many
//!   client connections onto one core;
//! * [`client`] — the thin SDK `rx client` (and the re-routed local
//!   subcommands) build on.
//!
//! See DESIGN.md §6.12 for the architecture discussion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Duplex, Endpoint, RetryPolicy, RetryStats, RetryingClient};
pub use core::{CancelStatus, ServiceConfig, ServiceCore, ServiceError, ServiceStats, Ticket};
pub use protocol::{CheckSummary, Reply, Request, StatsSnapshot};
pub use server::{serve, ServerConfig, ServerHandle};
