//! The `rxd` wire protocol: length-prefixed frames with request ids.
//!
//! Every message on a connection — in either direction — is one frame:
//!
//! ```text
//! [u32 len LE][u8 kind][u64 request_id LE][payload…]
//! ```
//!
//! where `len` counts everything after itself (`1 + 8 + payload.len()`).
//! Frames larger than [`MAX_FRAME`] are rejected before any allocation,
//! so a hostile length prefix cannot balloon memory. All integers are
//! little-endian; floats travel as `f64::to_bits`; strings are UTF-8
//! with a `u32` byte-length prefix — the same conventions as the proof
//! store's certificate codec, and deliberately position-independent so
//! equal values always encode to equal bytes.
//!
//! The conversation is strictly client-initiated: after a
//! [`HELLO`]/[`HELLO_OK`] version handshake, the client sends request
//! frames ([`REQUEST`], [`STATS`], [`SHUTDOWN`]) and the server answers
//! each with zero or more [`EVENT`] frames (streamed `Instrument`
//! events, tagged with the request's id) followed by exactly one
//! terminal frame ([`REPLY`], [`STATS_REPLY`], [`SHUTDOWN_OK`] or
//! [`ERROR`]). Malformed input never panics the peer: decoding returns
//! `None`/[`ProtoError`] and the server answers with a typed [`ERROR`]
//! frame (see the `ERR_*` codes) before closing the connection.

use std::fmt;
use std::io::{Read, Write};

use reflex_driver::SessionReport;
use reflex_verify::{
    certificate_from_bytes, certificate_to_bytes, CacheStats, Outcome, ProofFailure, PropStats,
    ProverStats,
};

/// Protocol magic, first field of the [`HELLO`] payload (`"RXD1"`).
pub const MAGIC: u32 = 0x5258_4431;

/// Protocol version, bumped on any incompatible frame change.
/// Version 2 added [`CANCEL`], per-request deadlines and idempotency
/// keys on `Verify`, the overload/cancel/deadline [`ERROR`] codes
/// (with an optional `retry_after_ms` hint), and the extended
/// [`StatsSnapshot`].
pub const VERSION: u16 = 2;

/// Upper bound on `len` (kind + request id + payload), 8 MiB. A frame
/// announcing more is answered with [`ERR_OVERSIZED`] and the
/// connection is closed without reading the body.
pub const MAX_FRAME: u32 = 8 * 1024 * 1024;

/// Client → server: version handshake (`magic u32, version u16`).
pub const HELLO: u8 = 1;
/// Server → client: handshake accepted (`version u16`).
pub const HELLO_OK: u8 = 2;
/// Client → server: one [`Request`] (tagged payload).
pub const REQUEST: u8 = 3;
/// Server → client: one streamed session event (payload: the event's
/// JSON-line rendering), tagged with the request id it belongs to.
pub const EVENT: u8 = 4;
/// Server → client: the terminal [`Reply`] for a request.
pub const REPLY: u8 = 5;
/// Server → client: typed failure (`code u16, message str`).
pub const ERROR: u8 = 6;
/// Client → server: service counters request (empty payload).
pub const STATS: u8 = 7;
/// Server → client: the [`StatsSnapshot`] payload.
pub const STATS_REPLY: u8 = 8;
/// Client → server: drain and stop the daemon (empty payload).
pub const SHUTDOWN: u8 = 9;
/// Server → client: shutdown acknowledged; the server drains queued
/// work, group-commits the store and exits.
pub const SHUTDOWN_OK: u8 = 10;
/// Client → server: cancel the in-flight or queued request whose id is
/// in the frame header (empty payload). Answered through the original
/// request's terminal frame: a queued request dies with
/// [`ERR_CANCELLED`], a running one finishes with a typed
/// `Outcome::Cancelled` reply. A CANCEL for an unknown or completed id
/// is acknowledged with [`CANCEL_OK`] and otherwise ignored.
pub const CANCEL: u8 = 11;
/// Server → client: the [`CANCEL`] frame was processed (whether or not
/// it found a live request), tagged with the cancelled request's id.
pub const CANCEL_OK: u8 = 12;

/// [`ERROR`] code: a frame or payload failed to decode.
pub const ERR_MALFORMED: u16 = 1;
/// [`ERROR`] code: the announced frame length exceeds [`MAX_FRAME`].
pub const ERR_OVERSIZED: u16 = 2;
/// [`ERROR`] code: handshake magic/version mismatch.
pub const ERR_VERSION: u16 = 3;
/// [`ERROR`] code: the client's queue is full (backpressure) — retry
/// after in-flight requests finish.
pub const ERR_BUSY: u16 = 4;
/// [`ERROR`] code: the server is shutting down and takes no new work.
pub const ERR_SHUTDOWN: u16 = 5;
/// [`ERROR`] code: the request ran and failed (payload message is the
/// session error: load/parse/typecheck/store…).
pub const ERR_REQUEST: u16 = 6;
/// [`ERROR`] code: an internal invariant broke while serving.
pub const ERR_INTERNAL: u16 = 7;
/// [`ERROR`] code: the request was cancelled while still queued (a
/// request cancelled mid-run instead gets a typed `Cancelled` reply).
pub const ERR_CANCELLED: u16 = 8;
/// [`ERROR`] code: the request's deadline expired before it started
/// running (expiry mid-run yields a typed `Timeout` reply instead).
pub const ERR_DEADLINE: u16 = 9;
/// [`ERROR`] code: admission control shed the request before queueing
/// it (load above the high watermark or the per-client in-flight cap).
/// The payload carries a `retry_after_ms` hint — see
/// [`decode_error_retry`].
pub const ERR_OVERLOADED: u16 = 10;
/// [`ERROR`] code: the connection sat idle (or mid-frame) past the
/// server's read deadline and is being reaped.
pub const ERR_IDLE: u16 = 11;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind ([`HELLO`] … [`SHUTDOWN_OK`]).
    pub kind: u8,
    /// Request id this frame belongs to (0 for connection-level frames).
    pub request_id: u64,
    /// Kind-specific payload.
    pub payload: Vec<u8>,
}

/// Why reading or decoding a frame failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The underlying transport failed (or hit EOF mid-frame).
    Io(String),
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// The announced length exceeds [`MAX_FRAME`].
    Oversized {
        /// The announced `len` field.
        len: u32,
    },
    /// The frame or its payload did not decode.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME})")
            }
            ProtoError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Writes one frame. A frame whose `kind + id + payload` would exceed
/// [`MAX_FRAME`] is refused here too, so both sides enforce the same
/// bound.
pub fn write_frame(w: &mut dyn Write, frame: &Frame) -> Result<(), ProtoError> {
    let len = 1u64 + 8 + frame.payload.len() as u64;
    if len > u64::from(MAX_FRAME) {
        return Err(ProtoError::Oversized {
            len: u32::try_from(len).unwrap_or(u32::MAX),
        });
    }
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(frame.kind);
    buf.extend_from_slice(&frame.request_id.to_le_bytes());
    buf.extend_from_slice(&frame.payload);
    w.write_all(&buf)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    w.flush().map_err(|e| ProtoError::Io(e.to_string()))
}

/// Reads one frame, enforcing [`MAX_FRAME`] before allocating the body.
///
/// EOF cleanly between frames is [`ProtoError::Closed`]; EOF inside a
/// frame (a truncated peer) is [`ProtoError::Io`].
pub fn read_frame(r: &mut dyn Read) -> Result<Frame, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(ProtoError::Closed),
        Err(e) => return Err(ProtoError::Io(e.to_string())),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized { len });
    }
    if len < 9 {
        return Err(ProtoError::Malformed(format!(
            "frame length {len} is shorter than its own header"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    let kind = body[0];
    let mut id = [0u8; 8];
    id.copy_from_slice(&body[1..9]);
    Ok(Frame {
        kind,
        request_id: u64::from_le_bytes(id),
        payload: body[9..].to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

/// Append-only payload encoder (little-endian, position-independent).
#[derive(Debug, Default)]
pub struct Enc {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a byte string with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u32` byte-length prefix.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends an optional `u64` (presence byte, then the value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    /// Appends an optional string (presence byte, then the string).
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.str(v);
            }
            None => self.u8(0),
        }
    }
}

/// Checked payload decoder: every accessor returns `None` on
/// truncation, so a hostile payload can never index out of bounds.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }

    /// Reads an optional string.
    pub fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }

    /// Succeeds only if every byte was consumed — trailing garbage is
    /// malformed, same discipline as the certificate codec.
    pub fn finish(self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

// ---------------------------------------------------------------------------
// Requests and replies
// ---------------------------------------------------------------------------

/// One unit of work a client asks the service core to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with [`Reply::Pong`].
    Ping,
    /// Parse and type-check a kernel without proving anything
    /// (the `rx check` path).
    Check {
        /// Program name (for reports).
        name: String,
        /// Kernel source text.
        source: String,
    },
    /// Verify a kernel end to end (the `rx verify` path).
    Verify {
        /// Program name (for reports and the store namespace).
        name: String,
        /// Kernel source text.
        source: String,
        /// Verify only this property (all properties when `None`).
        property: Option<String>,
        /// Request wall-clock budget, ms (clamped to the server's
        /// per-client cap).
        budget_ms: Option<u64>,
        /// Request explored-path budget (clamped likewise).
        budget_nodes: Option<u64>,
        /// Stream per-stage/per-property [`EVENT`] frames back while
        /// the request runs.
        want_events: bool,
        /// Relative deadline, ms from admission on the server's clock.
        /// A request still queued when it expires dies with
        /// [`ERR_DEADLINE`]; one already running is stopped with a
        /// typed `Timeout` reply. Folds into the wall budget.
        deadline_ms: Option<u64>,
        /// Client-generated idempotency key. Two `Verify` requests with
        /// the same key inside the server's dedup window are one unit
        /// of work: a retry of a completed attempt returns the cached
        /// reply (byte-identical certificates), a retry of an in-flight
        /// attempt attaches to it instead of re-proving.
        idempotency_key: Option<u64>,
    },
}

const REQ_PING: u8 = 0;
const REQ_CHECK: u8 = 1;
const REQ_VERIFY: u8 = 2;

/// Encodes a [`Request`] as a [`REQUEST`] frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    match req {
        Request::Ping => e.u8(REQ_PING),
        Request::Check { name, source } => {
            e.u8(REQ_CHECK);
            e.str(name);
            e.str(source);
        }
        Request::Verify {
            name,
            source,
            property,
            budget_ms,
            budget_nodes,
            want_events,
            deadline_ms,
            idempotency_key,
        } => {
            e.u8(REQ_VERIFY);
            e.str(name);
            e.str(source);
            e.opt_str(property.as_deref());
            e.opt_u64(*budget_ms);
            e.opt_u64(*budget_nodes);
            e.bool(*want_events);
            e.opt_u64(*deadline_ms);
            e.opt_u64(*idempotency_key);
        }
    }
    e.buf
}

/// Decodes a [`REQUEST`] frame payload.
pub fn decode_request(payload: &[u8]) -> Option<Request> {
    let mut d = Dec::new(payload);
    let req = match d.u8()? {
        REQ_PING => Request::Ping,
        REQ_CHECK => Request::Check {
            name: d.str()?,
            source: d.str()?,
        },
        REQ_VERIFY => Request::Verify {
            name: d.str()?,
            source: d.str()?,
            property: d.opt_str()?,
            budget_ms: d.opt_u64()?,
            budget_nodes: d.opt_u64()?,
            want_events: d.bool()?,
            deadline_ms: d.opt_u64()?,
            idempotency_key: d.opt_u64()?,
        },
        _ => return None,
    };
    d.finish()?;
    Some(req)
}

/// The shape summary `rx check` reports (no proving involved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSummary {
    /// Program name.
    pub program: String,
    /// Component types declared.
    pub components: u64,
    /// Message types declared.
    pub messages: u64,
    /// State variables declared.
    pub state_vars: u64,
    /// Handlers declared.
    pub handlers: u64,
    /// Properties declared.
    pub properties: u64,
}

/// The terminal answer to one [`Request`]. `Clone` so the service core
/// can cache replies for idempotent retries.
#[derive(Debug, Clone)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Check`].
    Checked(CheckSummary),
    /// Answer to [`Request::Verify`]: the full session report,
    /// certificates included — the client renders it with the same code
    /// as a local run, so daemon output is byte-identical.
    Verify(Box<SessionReport>),
}

const REP_PONG: u8 = 0;
const REP_CHECKED: u8 = 1;
const REP_VERIFY: u8 = 2;

/// Encodes a [`Reply`] as a [`REPLY`] frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut e = Enc::new();
    match reply {
        Reply::Pong => e.u8(REP_PONG),
        Reply::Checked(c) => {
            e.u8(REP_CHECKED);
            e.str(&c.program);
            e.u64(c.components);
            e.u64(c.messages);
            e.u64(c.state_vars);
            e.u64(c.handlers);
            e.u64(c.properties);
        }
        Reply::Verify(report) => {
            e.u8(REP_VERIFY);
            enc_report(&mut e, report);
        }
    }
    e.buf
}

/// Decodes a [`REPLY`] frame payload.
pub fn decode_reply(payload: &[u8]) -> Option<Reply> {
    let mut d = Dec::new(payload);
    let reply = match d.u8()? {
        REP_PONG => Reply::Pong,
        REP_CHECKED => Reply::Checked(CheckSummary {
            program: d.str()?,
            components: d.u64()?,
            messages: d.u64()?,
            state_vars: d.u64()?,
            handlers: d.u64()?,
            properties: d.u64()?,
        }),
        REP_VERIFY => Reply::Verify(Box::new(dec_report(&mut d)?)),
        _ => return None,
    };
    d.finish()?;
    Some(reply)
}

const OUT_PROVED: u8 = 0;
const OUT_FAILED: u8 = 1;
const OUT_TIMEOUT: u8 = 2;
const OUT_CRASHED: u8 = 3;
const OUT_CANCELLED: u8 = 4;

fn enc_outcome(e: &mut Enc, outcome: &Outcome) {
    match outcome {
        Outcome::Proved(cert) => {
            e.u8(OUT_PROVED);
            e.bytes(&certificate_to_bytes(cert));
        }
        Outcome::Failed(f) | Outcome::Timeout(f) | Outcome::Cancelled(f) | Outcome::Crashed(f) => {
            e.u8(match outcome {
                Outcome::Failed(_) => OUT_FAILED,
                Outcome::Timeout(_) => OUT_TIMEOUT,
                Outcome::Cancelled(_) => OUT_CANCELLED,
                _ => OUT_CRASHED,
            });
            e.str(&f.location);
            e.str(&f.reason);
        }
    }
}

fn dec_outcome(d: &mut Dec) -> Option<Outcome> {
    let tag = d.u8()?;
    if tag == OUT_PROVED {
        return Some(Outcome::Proved(certificate_from_bytes(d.bytes()?)?));
    }
    let failure = ProofFailure {
        location: d.str()?,
        reason: d.str()?,
    };
    match tag {
        OUT_FAILED => Some(Outcome::Failed(failure)),
        OUT_TIMEOUT => Some(Outcome::Timeout(failure)),
        OUT_CANCELLED => Some(Outcome::Cancelled(failure)),
        OUT_CRASHED => Some(Outcome::Crashed(failure)),
        _ => None,
    }
}

fn enc_names(e: &mut Enc, names: &[String]) {
    e.u32(u32::try_from(names.len()).unwrap_or(u32::MAX));
    for n in names {
        e.str(n);
    }
}

fn dec_names(d: &mut Dec) -> Option<Vec<String>> {
    let n = d.u32()? as usize;
    // Bound pre-allocation by the bytes actually present: each name
    // costs at least its 4-byte length prefix.
    let mut out = Vec::with_capacity(n.min(d.buf.len() / 4 + 1));
    for _ in 0..n {
        out.push(d.str()?);
    }
    Some(out)
}

/// Encodes a full [`SessionReport`] (certificates included, via the
/// store's deterministic certificate codec).
pub fn enc_report(e: &mut Enc, r: &SessionReport) {
    e.str(&r.program);
    e.u32(u32::try_from(r.outcomes.len()).unwrap_or(u32::MAX));
    for (name, outcome) in &r.outcomes {
        e.str(name);
        enc_outcome(e, outcome);
    }
    enc_names(e, &r.reused);
    enc_names(e, &r.partial);
    enc_names(e, &r.reproved);
    e.u64(r.store_loaded as u64);
    e.u64(r.store_saved as u64);
    e.bool(r.certificates_checked);
    e.f64(r.wall_ms);
    e.u64(r.stats.jobs as u64);
    e.f64(r.stats.total_ms);
    e.u32(u32::try_from(r.stats.properties.len()).unwrap_or(u32::MAX));
    for p in &r.stats.properties {
        e.str(&p.name);
        e.bool(p.proved);
        e.f64(p.wall_ms);
        e.u64(p.obligations as u64);
    }
    e.u64(r.stats.paths_explored);
    e.u64(r.stats.cache.invariant_entries);
    e.u64(r.stats.cache.lemma_entries);
    e.u64(r.stats.cache.invariant_hits);
    e.u64(r.stats.cache.invariant_misses);
    e.u64(r.stats.cache.lemma_hits);
    e.u64(r.stats.cache.lemma_misses);
    e.u64(r.stats.solver_queries);
    e.u64(r.stats.solver_memo_hits);
    e.u64(r.stats.interned_terms);
}

/// Decodes a [`SessionReport`] produced by [`enc_report`].
pub fn dec_report(d: &mut Dec) -> Option<SessionReport> {
    let program = d.str()?;
    let n = d.u32()? as usize;
    let mut outcomes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        outcomes.push((name, dec_outcome(d)?));
    }
    let reused = dec_names(d)?;
    let partial = dec_names(d)?;
    let reproved = dec_names(d)?;
    let store_loaded = usize::try_from(d.u64()?).ok()?;
    let store_saved = usize::try_from(d.u64()?).ok()?;
    let certificates_checked = d.bool()?;
    let wall_ms = d.f64()?;
    let jobs = usize::try_from(d.u64()?).ok()?;
    let total_ms = d.f64()?;
    let rows = d.u32()? as usize;
    let mut properties = Vec::with_capacity(rows.min(1024));
    for _ in 0..rows {
        properties.push(PropStats {
            name: d.str()?,
            proved: d.bool()?,
            wall_ms: d.f64()?,
            obligations: usize::try_from(d.u64()?).ok()?,
        });
    }
    let paths_explored = d.u64()?;
    let cache = CacheStats {
        invariant_entries: d.u64()?,
        lemma_entries: d.u64()?,
        invariant_hits: d.u64()?,
        invariant_misses: d.u64()?,
        lemma_hits: d.u64()?,
        lemma_misses: d.u64()?,
    };
    let solver_queries = d.u64()?;
    let solver_memo_hits = d.u64()?;
    let interned_terms = d.u64()?;
    Some(SessionReport {
        program,
        outcomes,
        reused,
        partial,
        reproved,
        store_loaded,
        store_saved,
        certificates_checked,
        stats: ProverStats {
            jobs,
            total_ms,
            properties,
            paths_explored,
            cache,
            solver_queries,
            solver_memo_hits,
            interned_terms,
        },
        wall_ms,
    })
}

/// Service-wide counters, served over [`STATS`] and gated on by the
/// bench harness and CI (`protocol_errors` must stay 0 under load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted into a client queue.
    pub requests_submitted: u64,
    /// Requests executed to a terminal reply.
    pub requests_served: u64,
    /// Requests refused with [`ERR_BUSY`] (per-client backpressure).
    pub rejected_busy: u64,
    /// Frames that failed to decode (malformed, oversized, bad
    /// handshake) across all connections.
    pub protocol_errors: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Requests shed with [`ERR_OVERLOADED`] by admission control.
    pub rejected_overloaded: u64,
    /// Requests that ended cancelled (queued kills and mid-run stops).
    pub cancelled: u64,
    /// Requests whose deadline expired while still queued.
    pub deadline_expired: u64,
    /// Verify requests answered from the idempotency window (cached
    /// reply or attach-to-in-flight) without re-proving.
    pub idempotent_hits: u64,
    /// Verify requests that actually executed a proof session (the
    /// denominator for the duplicate-work invariant).
    pub requests_executed: u64,
    /// Connections reaped by the server's read/idle deadline.
    pub reaped_connections: u64,
    /// Transient `accept()` errors survived by the listener loop.
    pub accept_errors: u64,
}

/// Encodes a [`StatsSnapshot`] as a [`STATS_REPLY`] payload.
pub fn encode_stats(s: &StatsSnapshot) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(s.requests_submitted);
    e.u64(s.requests_served);
    e.u64(s.rejected_busy);
    e.u64(s.protocol_errors);
    e.u64(s.connections);
    e.u64(s.rejected_overloaded);
    e.u64(s.cancelled);
    e.u64(s.deadline_expired);
    e.u64(s.idempotent_hits);
    e.u64(s.requests_executed);
    e.u64(s.reaped_connections);
    e.u64(s.accept_errors);
    e.buf
}

/// Decodes a [`STATS_REPLY`] payload.
pub fn decode_stats(payload: &[u8]) -> Option<StatsSnapshot> {
    let mut d = Dec::new(payload);
    let s = StatsSnapshot {
        requests_submitted: d.u64()?,
        requests_served: d.u64()?,
        rejected_busy: d.u64()?,
        protocol_errors: d.u64()?,
        connections: d.u64()?,
        rejected_overloaded: d.u64()?,
        cancelled: d.u64()?,
        deadline_expired: d.u64()?,
        idempotent_hits: d.u64()?,
        requests_executed: d.u64()?,
        reaped_connections: d.u64()?,
        accept_errors: d.u64()?,
    };
    d.finish()?;
    Some(s)
}

/// Builds an [`ERROR`] frame payload (no retry hint).
pub fn encode_error(code: u16, message: &str) -> Vec<u8> {
    encode_error_retry(code, message, None)
}

/// Builds an [`ERROR`] frame payload carrying an optional
/// `retry_after_ms` hint (used by [`ERR_OVERLOADED`]).
pub fn encode_error_retry(code: u16, message: &str, retry_after_ms: Option<u64>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(code);
    e.str(message);
    e.opt_u64(retry_after_ms);
    e.buf
}

/// Decodes an [`ERROR`] frame payload into `(code, message)`, dropping
/// any retry hint.
pub fn decode_error(payload: &[u8]) -> Option<(u16, String)> {
    decode_error_retry(payload).map(|(code, message, _)| (code, message))
}

/// Decodes an [`ERROR`] frame payload into
/// `(code, message, retry_after_ms)`.
pub fn decode_error_retry(payload: &[u8]) -> Option<(u16, String, Option<u64>)> {
    let mut d = Dec::new(payload);
    let code = d.u16()?;
    let message = d.str()?;
    let retry_after_ms = d.opt_u64()?;
    d.finish()?;
    Some((code, message, retry_after_ms))
}

/// Builds the [`HELLO`] payload.
pub fn encode_hello() -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(MAGIC);
    e.u16(VERSION);
    e.buf
}

/// Decodes and validates a [`HELLO`] payload.
pub fn decode_hello(payload: &[u8]) -> Option<u16> {
    let mut d = Dec::new(payload);
    let magic = d.u32()?;
    let version = d.u16()?;
    d.finish()?;
    (magic == MAGIC).then_some(version)
}
