//! The thin client SDK: connect, handshake, one request at a time.
//!
//! [`Client`] is the library face of `rx client` (and of the re-routed
//! local subcommands when they talk to a remote daemon): it speaks the
//! frame protocol over a unix socket or TCP, streams back the
//! [`EVENT`](crate::protocol::EVENT) frames of a running verify through
//! a caller-supplied callback, and decodes the terminal reply into the
//! same [`SessionReport`] a local run produces — so rendering code
//! downstream cannot tell a daemon run from a one-shot run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use reflex_driver::SessionReport;

use crate::protocol::{
    decode_error, decode_reply, decode_stats, encode_hello, encode_request, read_frame,
    write_frame, Frame, ProtoError, Reply, Request, StatsSnapshot, ERROR, EVENT, HELLO, HELLO_OK,
    REPLY, REQUEST, SHUTDOWN, SHUTDOWN_OK, STATS, STATS_REPLY,
};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or transporting frames failed.
    Io(String),
    /// The server broke protocol (unexpected frame, undecodable reply).
    Protocol(String),
    /// The server answered with a typed error frame.
    Remote {
        /// The `ERR_*` code.
        code: u16,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(m) => ClientError::Io(m),
            ProtoError::Closed => ClientError::Io("connection closed by server".into()),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A connected, handshaken daemon client.
pub struct Client {
    stream: Transport,
    next_id: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = match endpoint {
            Endpoint::Unix(path) => Transport::Unix(
                UnixStream::connect(path)
                    .map_err(|e| ClientError::Io(format!("{}: {e}", path.display())))?,
            ),
            Endpoint::Tcp(addr) => Transport::Tcp(
                TcpStream::connect(addr).map_err(|e| ClientError::Io(format!("{addr}: {e}")))?,
            ),
        };
        let mut client = Client { stream, next_id: 1 };
        client.send(HELLO, 0, encode_hello())?;
        let frame = client.read()?;
        match frame.kind {
            HELLO_OK => Ok(client),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected hello-ok, got frame kind {kind}"
            ))),
        }
    }

    fn send(&mut self, kind: u8, request_id: u64, payload: Vec<u8>) -> Result<(), ClientError> {
        write_frame(
            &mut self.stream,
            &Frame {
                kind,
                request_id,
                payload,
            },
        )
        .map_err(ClientError::from)
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        read_frame(&mut self.stream).map_err(ClientError::from)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request and collects its terminal reply, feeding any
    /// streamed event JSON lines to `on_event` along the way.
    fn roundtrip(
        &mut self,
        request: &Request,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<Reply, ClientError> {
        let id = self.fresh_id();
        self.send(REQUEST, id, encode_request(request))?;
        loop {
            let frame = self.read()?;
            if frame.request_id != id && frame.kind != ERROR {
                return Err(ClientError::Protocol(format!(
                    "reply for unknown request id {}",
                    frame.request_id
                )));
            }
            match frame.kind {
                EVENT => {
                    if let Ok(line) = std::str::from_utf8(&frame.payload) {
                        on_event(line);
                    }
                }
                REPLY => {
                    return decode_reply(&frame.payload).ok_or_else(|| {
                        ClientError::Protocol("reply payload did not decode".into())
                    });
                }
                ERROR => return Err(remote_error(&frame)),
                kind => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame kind {kind} mid-request"
                    )))
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping, &mut |_| {})? {
            Reply::Pong => Ok(()),
            _ => Err(ClientError::Protocol("expected pong".into())),
        }
    }

    /// Parses and type-checks a kernel on the daemon.
    pub fn check(
        &mut self,
        name: &str,
        source: &str,
    ) -> Result<crate::protocol::CheckSummary, ClientError> {
        let request = Request::Check {
            name: name.to_owned(),
            source: source.to_owned(),
        };
        match self.roundtrip(&request, &mut |_| {})? {
            Reply::Checked(summary) => Ok(summary),
            _ => Err(ClientError::Protocol("expected check summary".into())),
        }
    }

    /// Verifies a kernel on the daemon, streaming event JSON lines to
    /// `on_event`, and returns the full report (certificates included).
    pub fn verify(
        &mut self,
        request: Request,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<SessionReport, ClientError> {
        debug_assert!(matches!(request, Request::Verify { .. }));
        match self.roundtrip(&request, on_event)? {
            Reply::Verify(report) => Ok(*report),
            _ => Err(ClientError::Protocol("expected verify report".into())),
        }
    }

    /// Fetches the daemon's service counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let id = self.fresh_id();
        self.send(STATS, id, Vec::new())?;
        let frame = self.read()?;
        match frame.kind {
            STATS_REPLY => decode_stats(&frame.payload)
                .ok_or_else(|| ClientError::Protocol("stats payload did not decode".into())),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected stats reply, got frame kind {kind}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(SHUTDOWN, id, Vec::new())?;
        let frame = self.read()?;
        match frame.kind {
            SHUTDOWN_OK => Ok(()),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected shutdown-ok, got frame kind {kind}"
            ))),
        }
    }
}

fn remote_error(frame: &Frame) -> ClientError {
    match decode_error(&frame.payload) {
        Some((code, message)) => ClientError::Remote { code, message },
        None => ClientError::Protocol("error frame did not decode".into()),
    }
}
