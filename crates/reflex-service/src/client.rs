//! The client SDK: connect, handshake, one request at a time — plus the
//! retrying layer that makes the path fault-tolerant.
//!
//! [`Client`] is the library face of `rx client` (and of the re-routed
//! local subcommands when they talk to a remote daemon): it speaks the
//! frame protocol over a unix socket or TCP, streams back the
//! [`EVENT`](crate::protocol::EVENT) frames of a running verify through
//! a caller-supplied callback, and decodes the terminal reply into the
//! same [`SessionReport`] a local run produces — so rendering code
//! downstream cannot tell a daemon run from a one-shot run.
//!
//! [`RetryingClient`] wraps it with capped-exponential-backoff retries
//! (jitter drawn from a seeded `reflex-rng` stream, so a retry schedule
//! is reproducible from its seed) over the retryable failures: connect
//! refused, mid-stream disconnect, [`ERR_BUSY`] and [`ERR_OVERLOADED`]
//! (the latter's `retry_after_ms` hint overrides the backoff). Every
//! verify it sends carries a client-generated idempotency key, so a
//! retry of a request whose reply was lost in a disconnect is answered
//! from the server's dedup window with the byte-identical reply instead
//! of re-running the proof search.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use reflex_driver::SessionReport;

use crate::protocol::{
    decode_error_retry, decode_reply, decode_stats, encode_hello, encode_request, read_frame,
    write_frame, Frame, ProtoError, Reply, Request, StatsSnapshot, CANCEL, CANCEL_OK, ERROR,
    ERR_BUSY, ERR_OVERLOADED, EVENT, HELLO, HELLO_OK, REPLY, REQUEST, SHUTDOWN, SHUTDOWN_OK, STATS,
    STATS_REPLY,
};

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
}

/// Why a client call failed.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// Connecting or transporting frames failed.
    Io(String),
    /// The server broke protocol (unexpected frame, undecodable reply).
    Protocol(String),
    /// The server answered with a typed error frame.
    Remote {
        /// The `ERR_*` code.
        code: u16,
        /// The server's message.
        message: String,
        /// How long the server suggests waiting before retrying
        /// (carried by [`ERR_OVERLOADED`] sheds).
        retry_after_ms: Option<u64>,
    },
}

impl ClientError {
    /// Whether retrying the same request can succeed: transport
    /// failures (connect refused, mid-stream disconnect) and the
    /// server's explicit try-again answers ([`ERR_BUSY`],
    /// [`ERR_OVERLOADED`]). Protocol violations and every other typed
    /// error are final.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Protocol(_) => false,
            ClientError::Remote { code, .. } => *code == ERR_BUSY || *code == ERR_OVERLOADED,
        }
    }

    /// The server's retry-after hint, when it sent one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Remote { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }

    /// The typed `ERR_*` code, when the server sent one.
    pub fn remote_code(&self) -> Option<u16> {
        match self {
            ClientError::Remote { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote { code, message, .. } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(m) => ClientError::Io(m),
            ProtoError::Closed => ClientError::Io("connection closed by server".into()),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A bidirectional byte stream the client can speak frames over. The
/// plug-in point for test transports: `reflex-sim`'s FaultyNet wraps a
/// real socket in a fault-injecting `Duplex` and hands it to
/// [`Client::over`].
pub trait Duplex: Read + Write + Send {}

impl<T: Read + Write + Send> Duplex for T {}

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
    Boxed(Box<dyn Duplex>),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
            Transport::Boxed(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
            Transport::Boxed(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
            Transport::Boxed(s) => s.flush(),
        }
    }
}

/// A connected, handshaken daemon client.
pub struct Client {
    stream: Transport,
    next_id: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = match endpoint {
            Endpoint::Unix(path) => Transport::Unix(
                UnixStream::connect(path)
                    .map_err(|e| ClientError::Io(format!("{}: {e}", path.display())))?,
            ),
            Endpoint::Tcp(addr) => Transport::Tcp(
                TcpStream::connect(addr).map_err(|e| ClientError::Io(format!("{addr}: {e}")))?,
            ),
        };
        Client::handshake(stream)
    }

    /// Performs the version handshake over an arbitrary byte stream —
    /// the entry point fault-injecting test transports use.
    pub fn over(stream: Box<dyn Duplex>) -> Result<Client, ClientError> {
        Client::handshake(Transport::Boxed(stream))
    }

    fn handshake(stream: Transport) -> Result<Client, ClientError> {
        let mut client = Client { stream, next_id: 1 };
        client.send(HELLO, 0, encode_hello())?;
        let frame = client.read()?;
        match frame.kind {
            HELLO_OK => Ok(client),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected hello-ok, got frame kind {kind}"
            ))),
        }
    }

    fn send(&mut self, kind: u8, request_id: u64, payload: Vec<u8>) -> Result<(), ClientError> {
        write_frame(
            &mut self.stream,
            &Frame {
                kind,
                request_id,
                payload,
            },
        )
        .map_err(ClientError::from)
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        read_frame(&mut self.stream).map_err(ClientError::from)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request and collects its terminal reply, feeding any
    /// streamed event JSON lines to `on_event` along the way.
    fn roundtrip(
        &mut self,
        request: &Request,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<Reply, ClientError> {
        let id = self.fresh_id();
        self.send(REQUEST, id, encode_request(request))?;
        loop {
            let frame = self.read()?;
            if frame.request_id != id && frame.kind != ERROR {
                // Frames for earlier ids are stale — the tail of a
                // cancelled request, or the echo of a duplicated frame
                // on a faulty transport — and are skipped, not fatal.
                if frame.request_id < id {
                    continue;
                }
                return Err(ClientError::Protocol(format!(
                    "reply for unknown request id {}",
                    frame.request_id
                )));
            }
            match frame.kind {
                EVENT => {
                    if let Ok(line) = std::str::from_utf8(&frame.payload) {
                        on_event(line);
                    }
                }
                REPLY => {
                    return decode_reply(&frame.payload).ok_or_else(|| {
                        ClientError::Protocol("reply payload did not decode".into())
                    });
                }
                ERROR => return Err(remote_error(&frame)),
                kind => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame kind {kind} mid-request"
                    )))
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping, &mut |_| {})? {
            Reply::Pong => Ok(()),
            _ => Err(ClientError::Protocol("expected pong".into())),
        }
    }

    /// Parses and type-checks a kernel on the daemon.
    pub fn check(
        &mut self,
        name: &str,
        source: &str,
    ) -> Result<crate::protocol::CheckSummary, ClientError> {
        let request = Request::Check {
            name: name.to_owned(),
            source: source.to_owned(),
        };
        match self.roundtrip(&request, &mut |_| {})? {
            Reply::Checked(summary) => Ok(summary),
            _ => Err(ClientError::Protocol("expected check summary".into())),
        }
    }

    /// Verifies a kernel on the daemon, streaming event JSON lines to
    /// `on_event`, and returns the full report (certificates included).
    pub fn verify(
        &mut self,
        request: Request,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<SessionReport, ClientError> {
        debug_assert!(matches!(request, Request::Verify { .. }));
        match self.roundtrip(&request, on_event)? {
            Reply::Verify(report) => Ok(*report),
            _ => Err(ClientError::Protocol("expected verify report".into())),
        }
    }

    /// Fetches the daemon's service counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let id = self.fresh_id();
        self.send(STATS, id, Vec::new())?;
        let frame = self.read()?;
        match frame.kind {
            STATS_REPLY => decode_stats(&frame.payload)
                .ok_or_else(|| ClientError::Protocol("stats payload did not decode".into())),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected stats reply, got frame kind {kind}"
            ))),
        }
    }

    /// Asks the daemon to cancel request `request_id` on this
    /// connection. Idempotent: cancelling an unknown or already
    /// completed id is still acknowledged. The cancelled request's own
    /// typed terminal frame travels separately under its original id.
    pub fn cancel(&mut self, request_id: u64) -> Result<(), ClientError> {
        self.send(CANCEL, request_id, Vec::new())?;
        let frame = self.read()?;
        match frame.kind {
            CANCEL_OK => Ok(()),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected cancel-ok, got frame kind {kind}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(SHUTDOWN, id, Vec::new())?;
        let frame = self.read()?;
        match frame.kind {
            SHUTDOWN_OK => Ok(()),
            ERROR => Err(remote_error(&frame)),
            kind => Err(ClientError::Protocol(format!(
                "expected shutdown-ok, got frame kind {kind}"
            ))),
        }
    }
}

fn remote_error(frame: &Frame) -> ClientError {
    match decode_error_retry(&frame.payload) {
        Some((code, message, retry_after_ms)) => ClientError::Remote {
            code,
            message,
            retry_after_ms,
        },
        None => ClientError::Protocol("error frame did not decode".into()),
    }
}

// ---------------------------------------------------------------------------
// Retrying layer
// ---------------------------------------------------------------------------

/// Backoff schedule for [`RetryingClient`]: capped exponential with
/// seeded jitter, so a given `(seed, attempt)` always sleeps the same
/// amount — retry schedules reproduce exactly under the simulator.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per request, the first included. 0 behaves as 1
    /// (no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds; doubles per
    /// subsequent retry.
    pub base_delay_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream (and for idempotency-key
    /// generation). Callers outside the simulator should derive this
    /// from something unique per process.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 25,
            max_delay_ms: 1_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): the capped
    /// exponential step, halved and topped back up with a seeded draw
    /// (half-jitter), so concurrent retriers decorrelate without ever
    /// exceeding the cap.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let step = self
            .base_delay_ms
            .saturating_mul(1u64 << (retry - 1).min(20))
            .min(self.max_delay_ms);
        let half = step / 2;
        half + reflex_rng::stream_u64(reflex_rng::derive(self.seed, "retry-jitter"), retry as u64)
            % (step - half + 1)
    }
}

/// What one retried call went through, for logs and assertions.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryStats {
    /// Connections dialled (including the successful one).
    pub connects: u64,
    /// Requests re-sent after a retryable failure.
    pub retries: u64,
    /// Milliseconds slept in backoff.
    pub backoff_ms: u64,
}

/// A [`Client`] that survives transient failures: it dials lazily,
/// re-dials after transport errors, and retries retryable failures
/// (see [`ClientError::is_retryable`]) under the [`RetryPolicy`]'s
/// backoff. Verify requests are stamped with a client-generated
/// idempotency key before the first send, so a retry after a lost
/// reply deduplicates server-side.
pub struct RetryingClient {
    dial: Box<dyn FnMut() -> Result<Client, ClientError> + Send>,
    policy: RetryPolicy,
    sleep: Box<dyn FnMut(u64) + Send>,
    client: Option<Client>,
    keys_issued: u64,
    stats: RetryStats,
}

impl std::fmt::Debug for RetryingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingClient")
            .field("policy", &self.policy)
            .field("connected", &self.client.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RetryingClient {
    /// A retrying client for `endpoint`. Does not dial yet — the first
    /// call does (and a refused dial is itself retried).
    pub fn connect(endpoint: &Endpoint, policy: RetryPolicy) -> RetryingClient {
        let endpoint = endpoint.clone();
        RetryingClient::with_dialer(Box::new(move || Client::connect(&endpoint)), policy)
    }

    /// A retrying client over a custom dialer — how the simulator
    /// interposes its fault-injecting transport on every (re)connect.
    pub fn with_dialer(
        dial: Box<dyn FnMut() -> Result<Client, ClientError> + Send>,
        policy: RetryPolicy,
    ) -> RetryingClient {
        RetryingClient {
            dial,
            policy,
            sleep: Box::new(|ms| std::thread::sleep(std::time::Duration::from_millis(ms))),
            client: None,
            keys_issued: 0,
            stats: RetryStats::default(),
        }
    }

    /// Replaces the backoff sleeper (tests substitute a no-op so a
    /// retry storm runs at full speed).
    pub fn set_sleeper(&mut self, sleep: Box<dyn FnMut(u64) + Send>) {
        self.sleep = sleep;
    }

    /// What this client has been through so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The next idempotency key: a fresh draw from the seed-derived
    /// key stream. Unique per logical request, stable across that
    /// request's retries (it is stamped once, before the first send).
    fn fresh_key(&mut self) -> u64 {
        self.keys_issued += 1;
        reflex_rng::stream_u64(
            reflex_rng::derive(self.policy.seed, "idem-key"),
            self.keys_issued,
        )
    }

    /// Runs `op` against a live connection, dialling and retrying as
    /// the policy allows. Transport errors drop the connection so the
    /// next attempt re-dials.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let max = self.policy.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            let result = match &mut self.client {
                Some(client) => op(client),
                None => match (self.dial)() {
                    Ok(mut client) => {
                        self.stats.connects += 1;
                        let r = op(&mut client);
                        self.client = Some(client);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            let e = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if matches!(e, ClientError::Io(_)) {
                // The stream is in an unknown state; re-dial.
                self.client = None;
            }
            if !e.is_retryable() || attempt >= max {
                return Err(e);
            }
            let delay = e
                .retry_after_ms()
                .unwrap_or_else(|| self.policy.delay_ms(attempt));
            self.stats.backoff_ms += delay;
            self.stats.retries += 1;
            (self.sleep)(delay);
            attempt += 1;
        }
    }

    /// [`Client::ping`], retried.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retries(|c| c.ping())
    }

    /// [`Client::stats`], retried.
    pub fn server_stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.with_retries(|c| c.stats())
    }

    /// [`Client::check`], retried (check is read-only, so it needs no
    /// idempotency key).
    pub fn check(
        &mut self,
        name: &str,
        source: &str,
    ) -> Result<crate::protocol::CheckSummary, ClientError> {
        self.with_retries(|c| c.check(name, source))
    }

    /// [`Client::verify`], retried, with an idempotency key stamped
    /// before the first send (unless the caller provided one) so every
    /// retry names the same logical request.
    pub fn verify(
        &mut self,
        mut request: Request,
        on_event: &mut dyn FnMut(&str),
    ) -> Result<SessionReport, ClientError> {
        if let Request::Verify {
            idempotency_key: key @ None,
            ..
        } = &mut request
        {
            *key = Some(self.fresh_key());
        }
        self.with_retries(|c| c.verify(request.clone(), on_event))
    }
}
