//! Dynamic validation of the proved non-interference properties: pairs of
//! real executions with identical *high* inputs but different *low*
//! traffic must produce identical high-observable outputs (π_o modulo
//! component identities and file descriptors, per DESIGN.md).
//!
//! This is Definition 1 of the paper tested empirically, for the browser's
//! `DomainNI` (high = domain-d tabs + domain-d cookie process + Chrome) and
//! the car's `EngineIsolated` (high = Engine).

use reflex_ast::Value;
use reflex_runtime::oracle::observable_outputs;
use reflex_runtime::{EmptyWorld, Interpreter, Registry};
use reflex_trace::{CompInst, Msg};

const HIGH_DOMAIN: &str = "bank.example";
const LOW_DOMAIN: &str = "ads.example";

fn is_high_browser(c: &CompInst) -> bool {
    c.ctype == "Chrome"
        || (matches!(c.ctype.as_str(), "Tab" | "CookieMgr")
            && c.config.first() == Some(&Value::from(HIGH_DOMAIN)))
}

/// Runs the browser kernel: the same high-input script always executes,
/// interleaved with `low_noise` rounds of low-domain traffic.
fn browser_run(low_noise: usize, seed: u64) -> Interpreter {
    let checked = reflex_kernels::browser::checked();
    let mut kernel =
        Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), seed).expect("boots");
    let chrome = kernel.components_of("Chrome")[0].id;

    // High inputs, identical in every run: Chrome opens one tab per domain
    // (Chrome is high for every d, so this sequence may not vary).
    for d in [HIGH_DOMAIN, LOW_DOMAIN] {
        kernel
            .inject(chrome, Msg::new("NewTab", [Value::from(d)]))
            .unwrap();
        kernel.run(4).unwrap();
    }
    let tab_of = |k: &Interpreter, d: &str| {
        k.components_of("Tab")
            .iter()
            .find(|t| t.config[0] == Value::from(d))
            .expect("tab exists")
            .id
    };
    let high_tab = tab_of(&kernel, HIGH_DOMAIN);
    let low_tab = tab_of(&kernel, LOW_DOMAIN);

    // Low noise (varies between runs): the ads tab hammers the kernel.
    for i in 0..low_noise {
        kernel
            .inject(
                low_tab,
                Msg::new("SetCookie", [Value::from(format!("trk={i}"))]),
            )
            .unwrap();
        kernel
            .inject(low_tab, Msg::new("ConnectCookie", []))
            .unwrap();
        kernel
            .inject(low_tab, Msg::new("OpenSocket", [Value::from(LOW_DOMAIN)]))
            .unwrap();
        kernel.run(8).unwrap();
    }

    // High inputs again, identical in every run: the bank tab's session.
    kernel
        .inject(
            high_tab,
            Msg::new("SetCookie", [Value::from("session=s3cr3t")]),
        )
        .unwrap();
    kernel.run(4).unwrap();
    kernel
        .inject(high_tab, Msg::new("ConnectCookie", []))
        .unwrap();
    kernel.run(4).unwrap();
    kernel
        .inject(high_tab, Msg::new("OpenSocket", [Value::from(HIGH_DOMAIN)]))
        .unwrap();
    kernel.run(4).unwrap();
    // The bank's cookie process pushes an update (a high input: the cookie
    // process of domain d is high).
    let mgr = kernel
        .components_of("CookieMgr")
        .iter()
        .find(|m| m.config[0] == Value::from(HIGH_DOMAIN))
        .expect("bank cookie process exists")
        .id;
    kernel
        .inject(mgr, Msg::new("Push", [Value::from("session=s3cr3t")]))
        .unwrap();
    kernel.run(8).unwrap();
    kernel
}

#[test]
fn browser_domain_ni_holds_dynamically() {
    let baseline = browser_run(0, 11);
    let base_outputs = observable_outputs(baseline.trace(), is_high_browser);
    assert!(
        base_outputs.iter().any(|o| o.msg == "Cookie"),
        "the high session must actually produce outputs"
    );
    for (noise, seed) in [(1, 7), (3, 99), (6, 12345)] {
        let noisy = browser_run(noise, seed);
        let outputs = observable_outputs(noisy.trace(), is_high_browser);
        assert_eq!(
            base_outputs, outputs,
            "low traffic (noise {noise}, seed {seed}) must not change the \
             bank-domain observations"
        );
        assert!(
            noisy.trace().len() > baseline.trace().len(),
            "the noisy run must genuinely differ"
        );
    }
}

#[test]
fn browser_domain_ni_detects_actual_interference() {
    // Sanity check of the test harness itself: if we *change the high
    // inputs*, the projection must differ — the comparison is not vacuous.
    let a = browser_run(0, 1);
    let checked = reflex_kernels::browser::checked();
    let mut b =
        Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), 1).expect("boots");
    let chrome = b.components_of("Chrome")[0].id;
    b.inject(chrome, Msg::new("NewTab", [Value::from(HIGH_DOMAIN)]))
        .unwrap();
    b.run(4).unwrap();
    let outputs_a = observable_outputs(a.trace(), is_high_browser);
    let outputs_b = observable_outputs(b.trace(), is_high_browser);
    assert_ne!(outputs_a, outputs_b);
}

#[test]
fn car_engine_isolation_holds_dynamically() {
    let checked = reflex_kernels::car::checked();
    let run = |noise: usize, seed: u64| {
        let mut kernel =
            Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), seed).expect("boots");
        let engine = kernel.components_of("Engine")[0].id;
        let radio = kernel.components_of("Radio")[0].id;
        let doors = kernel.components_of("Doors")[0].id;
        for _ in 0..noise {
            kernel.inject(radio, Msg::new("LockReq", [])).unwrap();
            kernel.inject(doors, Msg::new("DoorsOpen", [])).unwrap();
            kernel.run(6).unwrap();
        }
        kernel.inject(engine, Msg::new("Accelerating", [])).unwrap();
        kernel.run(4).unwrap();
        kernel.inject(engine, Msg::new("Crash", [])).unwrap();
        kernel.run(8).unwrap();
        kernel
    };
    let quiet = run(0, 2);
    let noisy = run(7, 77);
    let high = |c: &CompInst| c.ctype == "Engine";
    assert_eq!(
        observable_outputs(quiet.trace(), high),
        observable_outputs(noisy.trace(), high)
    );
}
