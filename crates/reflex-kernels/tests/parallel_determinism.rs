//! Determinism regression tests for the parallel prover and the shared
//! cross-property proof cache.
//!
//! The design claim (see `reflex-verify`'s `cache.rs`): because cached
//! subproofs are self-contained packages that are pure functions of their
//! keys, `prove_all`, `prove_all_parallel(jobs = 1)` and
//! `prove_all_parallel(jobs = N)` produce *identical* outcomes — not just
//! the same proved/failed statuses, but equal certificates and equal
//! failure messages — on every bundled kernel. These tests pin that claim.

use reflex_kernels::all_benchmarks;
use reflex_verify::{check_certificate, prove_all, prove_all_parallel, Outcome, ProverOptions};

/// Asserts two outcome lists are fully identical (names, certificates,
/// failures).
fn assert_outcomes_identical(
    bench: &str,
    label: &str,
    a: &[(String, Outcome)],
    b: &[(String, Outcome)],
) {
    assert_eq!(a.len(), b.len(), "{bench}: {label}: property count");
    for ((an, ao), (bn, bo)) in a.iter().zip(b) {
        assert_eq!(an, bn, "{bench}: {label}: property order");
        match (ao, bo) {
            (Outcome::Proved(ac), Outcome::Proved(bc)) => {
                assert_eq!(ac, bc, "{bench}::{an}: {label}: certificates differ");
            }
            (Outcome::Failed(af), Outcome::Failed(bf)) => {
                assert_eq!(af, bf, "{bench}::{an}: {label}: failures differ");
            }
            _ => panic!(
                "{bench}::{an}: {label}: one run proved, the other failed \
                 ({ao:?} vs {bo:?})"
            ),
        }
    }
}

#[test]
fn parallel_prover_is_outcome_identical_on_every_kernel() {
    let options = ProverOptions::default();
    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        let serial = prove_all(&checked, &options);
        let par1 = prove_all_parallel(&checked, &options, 1);
        let par4 = prove_all_parallel(&checked, &options, 4);
        assert_outcomes_identical(bench.name, "serial vs jobs=1", &serial, &par1);
        assert_outcomes_identical(bench.name, "serial vs jobs=4", &serial, &par4);
        // Soundness backstop: every certificate from the parallel,
        // shared-cache run passes the independent checker.
        for (name, outcome) in &par4 {
            if let Some(cert) = outcome.certificate() {
                check_certificate(&checked, cert, &options).unwrap_or_else(|e| {
                    panic!("{}::{name}: certificate rejected: {e}", bench.name)
                });
            }
        }
    }
}

#[test]
fn in_prover_case_parallelism_is_outcome_identical() {
    // `jobs` also parallelizes the inductive cases inside one property
    // proof; certificates must not depend on it.
    let serial = ProverOptions::default();
    let threaded = ProverOptions {
        jobs: 4,
        ..ProverOptions::default()
    };
    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        let a = prove_all(&checked, &serial);
        let b = prove_all(&checked, &threaded);
        assert_outcomes_identical(bench.name, "jobs=1 vs jobs=4 (in-prover)", &a, &b);
    }
}

#[test]
fn shared_cache_never_changes_proved_set() {
    // The cache may change certificate *shapes* relative to the cache-off
    // prover (packages splice their own dependency copies), but never
    // which properties prove — and both configurations' certificates must
    // pass the checker.
    let on = ProverOptions::default();
    let off = ProverOptions {
        shared_cache: false,
        ..ProverOptions::default()
    };
    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        let with_cache = prove_all(&checked, &on);
        let without = prove_all(&checked, &off);
        assert_eq!(with_cache.len(), without.len());
        for ((name, a), (_, b)) in with_cache.iter().zip(&without) {
            assert_eq!(
                a.is_proved(),
                b.is_proved(),
                "{}::{name}: shared cache changed the outcome",
                bench.name
            );
            for (outcome, opts) in [(a, &on), (b, &off)] {
                if let Some(cert) = outcome.certificate() {
                    check_certificate(&checked, cert, opts).unwrap_or_else(|e| {
                        panic!("{}::{name}: certificate rejected: {e}", bench.name)
                    });
                }
            }
        }
    }
}
