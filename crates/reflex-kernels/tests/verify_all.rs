//! The headline result: every one of the 41 Figure 6 properties is proved
//! fully automatically, and every certificate validates.

use std::collections::BTreeMap;

use reflex_kernels::{all_benchmarks, figure6};
use reflex_verify::{check_certificate, prove_all, Abstraction, ProverOptions};

#[test]
fn all_41_figure6_properties_verify_with_checked_certificates() {
    let options = ProverOptions::default();
    let mut outcomes: BTreeMap<(String, String), bool> = BTreeMap::new();

    for bench in all_benchmarks() {
        let checked = (bench.checked)();
        for (name, outcome) in prove_all(&checked, &options) {
            match outcome.failure() {
                None => {}
                Some(f) => panic!("{}::{name} failed to verify: {f}", bench.name),
            }
            let cert = outcome.certificate().expect("proved");
            check_certificate(&checked, cert, &options)
                .unwrap_or_else(|e| panic!("{}::{name}: certificate rejected: {e}", bench.name));
            outcomes.insert((bench.name.to_owned(), name), true);
        }
    }

    // Exactly the Figure 6 inventory, all proved.
    assert_eq!(figure6::ROWS.len(), 41);
    for row in &figure6::ROWS {
        assert_eq!(
            outcomes.get(&(row.benchmark.to_owned(), row.property.to_owned())),
            Some(&true),
            "{}::{} missing from proved set",
            row.benchmark,
            row.property
        );
    }
    assert_eq!(outcomes.len(), 41, "no extra properties beyond Figure 6");
}

#[test]
fn verification_reuses_one_abstraction_per_kernel() {
    // The re-verification workflow of §6.4: building the behavioral
    // abstraction once and proving all properties against it.
    let options = ProverOptions::default();
    let checked = reflex_kernels::ssh::checked();
    let abs = Abstraction::build(&checked, &options);
    for p in &checked.program().properties {
        let outcome = reflex_verify::prove_with(&abs, &p.name, &options).expect("exists");
        assert!(outcome.is_proved(), "{} should verify", p.name);
    }
    assert!(abs.path_count() > 10);
}
