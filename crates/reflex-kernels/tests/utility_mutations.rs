//! Reproduction of the paper's §6.3 utility anecdotes:
//!
//! 1. On the *untouched* web server benchmark, some initially-stated
//!    policies turned out to be **false** — the automation failed, and the
//!    failures were real bugs in the policy statements. We reproduce this
//!    with two plausible-but-false policies: the falsifier produces
//!    concrete counterexample traces, and the corrected statements verify.
//! 2. "During substantial modification of the web browser … we
//!    inadvertently introduced subtle bugs which we did not discover until
//!    our proof automation failed": we seed such bugs by mutation and show
//!    the affected properties (and only those shapes of property) stop
//!    verifying.

use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{falsify, prove, FalsifyOptions, ProverOptions};

fn checked_src(name: &str, src: &str) -> reflex_typeck::CheckedProgram {
    check(&parse_program(name, src).expect("parses")).expect("well-formed")
}

#[test]
fn false_webserver_policies_fail_and_falsify() {
    // Plausible-but-false policy #1: "every authorization check is
    // answered positively before a file is delivered *for that user*"
    // stated with the wrong pattern: it demands PathOk for every Deliver
    // *payload path*, but deliveries are driven by FileData, which an
    // untrusted Disk component can send spontaneously.
    let src = reflex_kernels::webserver::SOURCE.replace(
        "properties {",
        r#"properties {
  FalseDeliverNeedsPathOk: forall p: str.
    [Recv(AccessCtl(), PathOk(_, p))] Enables [Send(Client(_), Deliver(p, _))];
  FalseSingleAuth: forall u: str.
    [Recv(AccessCtl(), AuthYes(u))] Disables [Recv(AccessCtl(), AuthYes(u))];
"#,
    );
    let c = checked_src("webserver-false", &src);
    let options = ProverOptions::default();

    // Both fail to verify…
    for prop in ["FalseDeliverNeedsPathOk", "FalseSingleAuth"] {
        let outcome = prove(&c, prop, &options).expect("exists");
        assert!(!outcome.is_proved(), "{prop} should not verify");
    }
    // …and both are genuinely false: concrete counterexamples exist.
    let cx = falsify(
        &c,
        "FalseDeliverNeedsPathOk",
        &FalsifyOptions {
            max_exchanges: 3,
            ..FalsifyOptions::default()
        },
    )
    .expect("the disk can push FileData without any PathOk");
    assert!(cx.trace.len() >= 2);

    let cx = falsify(
        &c,
        "FalseSingleAuth",
        &FalsifyOptions {
            max_exchanges: 3,
            ..FalsifyOptions::default()
        },
    )
    .expect("the access controller may re-confirm a login");
    assert!(cx.trace.len() >= 4);

    // The *corrected* statements (the ones actually in the benchmark)
    // still verify on the same program.
    for prop in ["DeliverOnlyDiskData", "ClientsNeverDuplicated"] {
        let outcome = prove(&c, prop, &options).expect("exists");
        assert!(outcome.is_proved(), "{prop} should verify");
    }
}

#[test]
fn seeded_browser_bug_is_caught_by_the_automation() {
    // Mutation: during a "protocol change", the socket handler loses its
    // domain check.
    let src = reflex_kernels::browser::SOURCE.replace(
        "  when Tab:OpenSocket(host) {\n    if (host == sender.domain) {\n      send(N, Connect(host));\n    }\n  }",
        "  when Tab:OpenSocket(host) {\n    send(N, Connect(host));\n  }",
    );
    assert_ne!(src, reflex_kernels::browser::SOURCE, "mutation applied");
    let c = checked_src("browser-buggy", &src);
    let options = ProverOptions::default();

    let outcome = prove(&c, "SocketsOnlyToOwnDomain", &options).expect("exists");
    assert!(!outcome.is_proved(), "the mutation must be caught");
    // Unrelated properties keep verifying.
    for prop in [
        "UniqueTabIds",
        "UniqueCookieMgrPerDomain",
        "CookiesStayInDomain",
    ] {
        let outcome = prove(&c, prop, &options).expect("exists");
        assert!(outcome.is_proved(), "{prop} unaffected by the mutation");
    }
}

#[test]
fn seeded_cookie_isolation_bug_breaks_ni() {
    // Mutation: the cookie push handler routes to *any* tab, not just the
    // cookie process's own domain — cross-domain interference.
    let src = reflex_kernels::browser::SOURCE.replace(
        "lookup Tab(t : t.domain == sender.domain) {\n      send(t, Cookie(sender.domain, v));\n    }",
        "lookup Tab(t : t.id <= tab_counter) {\n      send(t, Cookie(sender.domain, v));\n    }",
    );
    assert_ne!(src, reflex_kernels::browser::SOURCE, "mutation applied");
    let c = checked_src("browser-leaky", &src);
    let options = ProverOptions::default();

    let outcome = prove(&c, "DomainNI", &options).expect("exists");
    let failure = outcome.failure().expect("NI must fail");
    assert!(
        failure.reason.contains("possibly-high") || failure.reason.contains("lookup"),
        "unexpected reason: {failure}"
    );
}

#[test]
fn seeded_attempt_counter_bug_is_caught() {
    // Mutation: the reset-on-success "optimization" silently reopens the
    // attempt limit.
    let src = reflex_kernels::ssh::SOURCE.replace(
        "  when Pass:PassOk(user) {\n    auth_user = user;\n    auth_ok = true;\n  }",
        "  when Pass:PassOk(user) {\n    auth_user = user;\n    auth_ok = true;\n    attempts = 0;\n  }",
    );
    assert_ne!(src, reflex_kernels::ssh::SOURCE, "mutation applied");
    let c = checked_src("ssh-reset", &src);
    let options = ProverOptions::default();

    // Uniqueness of the first attempt is now false: after a successful
    // login the counter restarts and CheckPass(1, …) repeats.
    let outcome = prove(&c, "FirstAttemptOnlyOnce", &options).expect("exists");
    assert!(!outcome.is_proved(), "reset bug must be caught");
    // Authentication ordering is unaffected.
    let outcome = prove(&c, "LoginEnablesPty", &options).expect("exists");
    assert!(outcome.is_proved());
}

#[test]
fn seeded_car_bug_is_caught() {
    // Mutation: the crash handler forgets to latch `crashed`.
    let src = reflex_kernels::car::SOURCE.replace(
        "    send(A, Deploy());\n    send(D, Unlock());\n    crashed = true;",
        "    send(A, Deploy());\n    send(D, Unlock());",
    );
    assert_ne!(src, reflex_kernels::car::SOURCE, "mutation applied");
    let c = checked_src("car-nolatch", &src);
    let options = ProverOptions::default();

    let outcome = prove(&c, "NoLockAfterCrash", &options).expect("exists");
    assert!(!outcome.is_proved());
    let cx = falsify(
        &c,
        "NoLockAfterCrash",
        &FalsifyOptions {
            max_exchanges: 3,
            ..FalsifyOptions::default()
        },
    )
    .expect("crash then lock request violates the policy");
    assert!(cx.trace.len() >= 4);
    // The immediate-response properties still hold.
    for prop in ["AirbagsDeployImmediately", "DoorsUnlockAfterAirbags"] {
        let outcome = prove(&c, prop, &options).expect("exists");
        assert!(outcome.is_proved(), "{prop} unaffected");
    }
}
