//! End-to-end runtime scenarios: each benchmark kernel is actually *run*
//! with scripted components, and every produced trace is (a) a member of
//! the behavioral abstraction and (b) satisfies the kernel's verified
//! trace properties — the dynamic counterpart of the proofs.

use reflex_ast::Value;
use reflex_runtime::oracle::check_trace_inclusion;
use reflex_runtime::{EmptyWorld, Interpreter, Registry, ScriptedBehavior, ScriptedWorld};
use reflex_trace::{check_trace_properties, Action, Msg};

fn assert_run_is_sound(checked: &reflex_typeck::CheckedProgram, kernel: &Interpreter) {
    check_trace_inclusion(checked, kernel.trace())
        .unwrap_or_else(|e| panic!("{}: {e}\n{}", checked.program().name, kernel.trace()));
    check_trace_properties(kernel.trace(), &checked.program().properties).unwrap_or_else(
        |(name, e)| {
            panic!(
                "{}: property {name} violated at runtime: {e}",
                checked.program().name
            )
        },
    );
}

#[test]
fn car_crash_scenario() {
    let checked = reflex_kernels::car::checked();
    let mut kernel =
        Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), 5).expect("boots");
    let engine = kernel.components_of("Engine")[0].id;
    let radio = kernel.components_of("Radio")[0].id;
    let brakes = kernel.components_of("Brakes")[0].id;

    // Normal driving: radio locks the doors, brakes kill cruise control.
    kernel.inject(radio, Msg::new("LockReq", [])).unwrap();
    kernel.inject(brakes, Msg::new("Braking", [])).unwrap();
    kernel.run(10).unwrap();
    assert!(kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { comp, msg } if comp.ctype == "Doors" && msg.name == "Lock"
    )));

    // Crash: airbags deploy, doors unlock, and locking is now refused.
    kernel.inject(engine, Msg::new("Crash", [])).unwrap();
    kernel.run(10).unwrap();
    assert_eq!(kernel.state_var("crashed"), Some(&Value::Bool(true)));
    let lock_count = kernel
        .trace()
        .iter_chrono()
        .filter(|a| matches!(a, Action::Send { comp, msg } if comp.ctype == "Doors" && msg.name == "Lock"))
        .count();
    kernel.inject(radio, Msg::new("LockReq", [])).unwrap();
    kernel.run(10).unwrap();
    let lock_count_after = kernel
        .trace()
        .iter_chrono()
        .filter(|a| matches!(a, Action::Send { comp, msg } if comp.ctype == "Doors" && msg.name == "Lock"))
        .count();
    assert_eq!(lock_count, lock_count_after, "no Lock after a crash");

    assert_run_is_sound(&checked, &kernel);
}

#[test]
fn ssh_login_and_pty_scenario() {
    let checked = reflex_kernels::ssh::checked();
    let registry = Registry::new()
        .register("ssh-pass-auth.c", |_| {
            Box::new(ScriptedBehavior::new().replies("CheckPass", |m| {
                // Approve alice with the right password, whatever attempt.
                if m.args[1] == Value::from("alice") && m.args[2] == Value::from("hunter2") {
                    vec![Msg::new("PassOk", [m.args[1].clone()])]
                } else {
                    vec![Msg::new("PassFail", [m.args[1].clone()])]
                }
            }))
        })
        .register("ssh-pty-alloc.c", |_| {
            Box::new(ScriptedBehavior::new().replies("CreatePty", |m| {
                vec![Msg::new(
                    "PtyCreated",
                    [m.args[0].clone(), Value::Fdesc(reflex_ast::Fdesc::new(42))],
                )]
            }))
        });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 9).expect("boots");
    let client = kernel.components_of("Client")[0].id;

    // Two failed attempts, then a good one — then five more (ignored).
    for pass in ["wrong", "nope", "hunter2", "x", "x", "x", "x", "x"] {
        kernel
            .inject(
                client,
                Msg::new("LoginReq", [Value::from("alice"), Value::from(pass)]),
            )
            .unwrap();
    }
    kernel.run(40).unwrap();
    // The attempt cap held: exactly 3 CheckPass sends.
    let checks = kernel
        .trace()
        .iter_chrono()
        .filter(|a| matches!(a, Action::Send { msg, .. } if msg.name == "CheckPass"))
        .count();
    assert_eq!(checks, 3);
    assert_eq!(kernel.state_var("auth_ok"), Some(&Value::Bool(true)));

    // PTY handshake.
    kernel
        .inject(client, Msg::new("PtyReq", [Value::from("alice")]))
        .unwrap();
    kernel.run(10).unwrap();
    assert!(kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { comp, msg } if comp.ctype == "Client" && msg.name == "PtyHandle"
    )));

    assert_run_is_sound(&checked, &kernel);
}

#[test]
fn browser_two_domains_scenario() {
    let checked = reflex_kernels::browser::checked();
    let mut kernel =
        Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), 21).expect("boots");
    let chrome = kernel.components_of("Chrome")[0].id;

    // Open three tabs across two domains.
    for d in ["a.org", "b.org", "a.org"] {
        kernel
            .inject(chrome, Msg::new("NewTab", [Value::from(d)]))
            .unwrap();
    }
    kernel.run(10).unwrap();
    assert_eq!(kernel.components_of("Tab").len(), 3);

    // Tabs set cookies; one cookie process per domain appears.
    let tabs: Vec<_> = kernel
        .components_of("Tab")
        .iter()
        .map(|t| (t.id, t.config[0].clone()))
        .collect();
    for (id, _) in &tabs {
        kernel
            .inject(*id, Msg::new("SetCookie", [Value::from("k=v")]))
            .unwrap();
        kernel.inject(*id, Msg::new("ConnectCookie", [])).unwrap();
    }
    kernel.run(30).unwrap();
    assert_eq!(kernel.components_of("CookieMgr").len(), 2);

    // Socket policy: same-domain allowed, cross-domain dropped.
    let (tab_a, _) = tabs[0].clone();
    kernel
        .inject(tab_a, Msg::new("OpenSocket", [Value::from("a.org")]))
        .unwrap();
    kernel
        .inject(tab_a, Msg::new("OpenSocket", [Value::from("evil.org")]))
        .unwrap();
    kernel.run(10).unwrap();
    let connects: Vec<Value> = kernel
        .trace()
        .iter_chrono()
        .filter_map(|a| match a {
            Action::Send { comp, msg } if comp.ctype == "Net" && msg.name == "Connect" => {
                Some(msg.args[0].clone())
            }
            _ => None,
        })
        .collect();
    assert_eq!(connects, vec![Value::from("a.org")]);

    assert_run_is_sound(&checked, &kernel);
}

#[test]
fn browser3_world_calls_scenario() {
    let checked = reflex_kernels::browser3::checked();
    let world = ScriptedWorld::new()
        .provides("prefetch", |args| {
            format!("cached:{}", args[0].as_str().unwrap_or(""))
        })
        .provides("fetch_favicon", |_| "icon-bytes".to_owned());
    let mut kernel =
        Interpreter::new(&checked, Registry::new(), Box::new(world), 2).expect("boots");
    let chrome = kernel.components_of("Chrome")[0].id;
    kernel
        .inject(chrome, Msg::new("NewTab", [Value::from("a.org")]))
        .unwrap();
    kernel.run(10).unwrap();
    let tab = kernel.components_of("Tab")[0].id;
    kernel
        .inject(tab, Msg::new("Navigate", [Value::from("a.org")]))
        .unwrap();
    kernel.run(10).unwrap();

    // The prefetch result reached the tab; the favicon followed navigation.
    assert!(kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { msg, .. } if msg.name == "Prefetched" && msg.args[1] == Value::from("cached:a.org")
    )));
    assert!(kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { msg, .. } if msg.name == "Favicon" && msg.args[0] == Value::from("icon-bytes")
    )));
    assert_run_is_sound(&checked, &kernel);
}

#[test]
fn webserver_session_scenario() {
    let checked = reflex_kernels::webserver::checked();
    let registry = Registry::new()
        .register("ws-access-ctl.py", |_| {
            Box::new(
                ScriptedBehavior::new()
                    .replies("AuthCheck", |m| {
                        if m.args[1] == Value::from("sesame") {
                            vec![Msg::new("AuthYes", [m.args[0].clone()])]
                        } else {
                            vec![Msg::new("AuthNo", [m.args[0].clone()])]
                        }
                    })
                    .replies("PathCheck", |m| {
                        if m.args[1] == Value::from("/public/index.html") {
                            vec![Msg::new("PathOk", [m.args[0].clone(), m.args[1].clone()])]
                        } else {
                            vec![Msg::new("PathNo", [m.args[0].clone(), m.args[1].clone()])]
                        }
                    }),
            )
        })
        .register("ws-disk.py", |_| {
            Box::new(ScriptedBehavior::new().replies("ReadFile", |m| {
                vec![Msg::new(
                    "FileData",
                    [m.args[0].clone(), Value::from("<html>hello</html>")],
                )]
            }))
        });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 17).expect("boots");
    let listener = kernel.components_of("Listener")[0].id;

    // Login (twice — the client session must not duplicate).
    for _ in 0..2 {
        kernel
            .inject(
                listener,
                Msg::new("ConnReq", [Value::from("alice"), Value::from("sesame")]),
            )
            .unwrap();
    }
    kernel.run(20).unwrap();
    assert_eq!(kernel.components_of("Client").len(), 1);

    // Authorized file request flows through ACL → disk → client.
    let client = kernel.components_of("Client")[0].id;
    kernel
        .inject(
            client,
            Msg::new("FileReq", [Value::from("/public/index.html")]),
        )
        .unwrap();
    kernel.run(20).unwrap();
    assert!(kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { comp, msg } if comp.ctype == "Client"
            && msg.name == "Deliver"
            && msg.args[1] == Value::from("<html>hello</html>")
    )));

    // Unauthorized path never reaches the disk.
    kernel
        .inject(client, Msg::new("FileReq", [Value::from("/etc/shadow")]))
        .unwrap();
    kernel.run(20).unwrap();
    let reads: Vec<Value> = kernel
        .trace()
        .iter_chrono()
        .filter_map(|a| match a {
            Action::Send { comp, msg } if comp.ctype == "Disk" && msg.name == "ReadFile" => {
                Some(msg.args[0].clone())
            }
            _ => None,
        })
        .collect();
    assert_eq!(reads, vec![Value::from("/public/index.html")]);

    assert_run_is_sound(&checked, &kernel);
}

#[test]
fn ssh2_counter_scenario() {
    let checked = reflex_kernels::ssh2::checked();
    let registry = Registry::new()
        .register("ssh-attempt-counter.c", |_| {
            let mut seen = 0;
            Box::new(ScriptedBehavior::new().replies("CountReq", move |m| {
                seen += 1;
                if seen <= 3 {
                    vec![Msg::new("Approved", [m.args[0].clone(), m.args[1].clone()])]
                } else {
                    vec![Msg::new("Rejected", [])]
                }
            }))
        })
        .register("ssh-pass-auth.c", |_| {
            Box::new(ScriptedBehavior::new().replies("CheckPass2", |m| {
                vec![Msg::new("PassOk", [m.args[0].clone()])]
            }))
        });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 3).expect("boots");
    let client = kernel.components_of("Client")[0].id;
    for _ in 0..5 {
        kernel
            .inject(
                client,
                Msg::new("LoginReq", [Value::from("bob"), Value::from("pw")]),
            )
            .unwrap();
    }
    kernel.run(40).unwrap();
    // Counter cut off the fourth and fifth attempts.
    let forwarded = kernel
        .trace()
        .iter_chrono()
        .filter(|a| matches!(a, Action::Send { msg, .. } if msg.name == "CheckPass2"))
        .count();
    assert_eq!(forwarded, 3);
    assert_run_is_sound(&checked, &kernel);
}
