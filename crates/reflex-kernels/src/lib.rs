//! The Reflex benchmark kernels (paper §6): an automobile controller, an
//! SSH server (two variants), a web browser (three variants) and a web
//! server, each with the exact property inventory of Figure 6 — 41
//! properties in total, every one provable fully automatically by
//! `reflex-verify`.
//!
//! Each kernel module exposes its concrete `.rx` source ([`ssh::SOURCE`]
//! etc.), a parsed [`reflex_ast::Program`] and a type-checked
//! [`reflex_typeck::CheckedProgram`]. The [`figure6`] module is the
//! canonical row-by-row inventory with the paper's reported verification
//! times, used by the benchmark harness to regenerate the figure.
//!
//! # Example
//!
//! ```
//! // Every kernel parses, checks, and declares its Figure 6 properties.
//! for bench in reflex_kernels::all_benchmarks() {
//!     let checked = (bench.checked)();
//!     assert!(!checked.program().properties.is_empty(), "{}", bench.name);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure6;
pub mod synth;

/// The benchmark kernel modules.
pub mod kernels {
    /// Web browser, push-cookie variant (6 properties).
    pub mod browser;
    /// Web browser, fetch-cookie variant (7 properties).
    pub mod browser2;
    /// Web browser, world-call variant (7 properties).
    pub mod browser3;
    /// Automobile controller (Figure 5 extended; 8 properties).
    pub mod car;
    /// SSH server, in-kernel attempt counter (5 properties).
    pub mod ssh;
    /// SSH server, counter component variant (2 properties).
    pub mod ssh2;
    /// Authenticated file server (6 properties).
    pub mod webserver;
}

pub use kernels::{browser, browser2, browser3, car, ssh, ssh2, webserver};

/// A registered benchmark kernel.
pub struct Benchmark {
    /// Kernel name, as used in Figure 6.
    pub name: &'static str,
    /// Concrete `.rx` source.
    pub source: &'static str,
    /// Parses the kernel.
    pub program: fn() -> reflex_ast::Program,
    /// Parses and type-checks the kernel.
    pub checked: fn() -> reflex_typeck::CheckedProgram,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .finish()
    }
}

/// All benchmark kernels, in Figure 6 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "car",
            source: car::SOURCE,
            program: car::program,
            checked: car::checked,
        },
        Benchmark {
            name: "browser",
            source: browser::SOURCE,
            program: browser::program,
            checked: browser::checked,
        },
        Benchmark {
            name: "browser2",
            source: browser2::SOURCE,
            program: browser2::program,
            checked: browser2::checked,
        },
        Benchmark {
            name: "browser3",
            source: browser3::SOURCE,
            program: browser3::program,
            checked: browser3::checked,
        },
        Benchmark {
            name: "ssh",
            source: ssh::SOURCE,
            program: ssh::program,
            checked: ssh::checked,
        },
        Benchmark {
            name: "ssh2",
            source: ssh2::SOURCE,
            program: ssh2::program,
            checked: ssh2::checked,
        },
        Benchmark {
            name: "webserver",
            source: webserver::SOURCE,
            program: webserver::program,
            checked: webserver::checked,
        },
    ]
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// Lines-of-code split of a kernel source, in the style of Table 1:
/// `(kernel_loc, properties_loc)` counting non-empty, non-comment lines,
/// with the `properties` section attributed to the second component.
pub fn loc_split(source: &str) -> (usize, usize) {
    let mut kernel = 0;
    let mut props = 0;
    let mut in_props = false;
    let mut depth = 0i32;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        if depth == 0 && trimmed.starts_with("properties") {
            in_props = true;
        }
        depth += (trimmed.matches('{').count() as i32) - (trimmed.matches('}').count() as i32);
        if in_props {
            props += 1;
        } else {
            kernel += 1;
        }
        if in_props && depth == 0 {
            in_props = false;
        }
    }
    (kernel, props)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_parse_and_check() {
        for bench in all_benchmarks() {
            let program = (bench.program)();
            assert_eq!(program.name, bench.name);
            let checked = (bench.checked)();
            assert_eq!(checked.program().name, bench.name);
        }
    }

    #[test]
    fn kernel_sources_round_trip_through_the_printer() {
        for bench in all_benchmarks() {
            let program = (bench.program)();
            let printed = program.to_string();
            let reparsed = reflex_parser::parse_program(bench.name, &printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", bench.name));
            assert_eq!(program, reparsed, "{}", bench.name);
        }
    }

    #[test]
    fn loc_split_distinguishes_properties() {
        let (kernel, props) = loc_split(ssh::SOURCE);
        assert!(kernel > 30, "kernel loc: {kernel}");
        assert!(props > 8, "props loc: {props}");
        // Comparable in scale to the paper's Table 1 (SSH: 64 / 22).
        assert!(kernel < 100);
        assert!(props < 40);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("browser2").is_some());
        assert!(benchmark("nope").is_none());
    }
}
