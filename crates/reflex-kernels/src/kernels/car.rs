//! The automobile controller benchmark (paper §6.1, Figure 5 extended).
//!
//! A "substantially more detailed version of the hypothetical automobile
//! controller": the kernel mediates between the engine, brakes, doors,
//! radio, airbags and cruise control. Its eight properties (Figure 6 rows
//! `car:1–8`) exercise every trace primitive plus non-interference.

/// Concrete `.rx` source of the car kernel.
pub const SOURCE: &str = include_str!("../../rx/car.rx");

/// Parses the car kernel.
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("car", SOURCE).expect("car kernel parses")
}

/// Parses and type-checks the car kernel.
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("car kernel is well-formed")
}
