//! The SSH server benchmark (paper §2 and §6.1, Figure 6 rows `ssh:29–33`).
//!
//! A privilege-separated SSH daemon in the style of Provos et al.: the
//! untrusted `Client` (connection manager) talks to the network; the
//! `Pass` component checks passwords against the system password file; the
//! `Term` component allocates pseudo-terminals. The kernel enforces that
//! (1) clients authenticate before receiving a PTY and (2) at most three
//! authentication attempts are ever forwarded — the attempt number is
//! stamped into each forwarded `CheckPass`, which lets the "at most 3"
//! policy be expressed with the five trace primitives (the paper encodes
//! it as four properties the same way).

/// Concrete `.rx` source of the SSH kernel.
pub const SOURCE: &str = include_str!("../../rx/ssh.rx");

/// Parses the SSH kernel.
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("ssh", SOURCE).expect("ssh kernel parses")
}

/// Parses and type-checks the SSH kernel.
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("ssh kernel is well-formed")
}
