//! The web server benchmark (paper §6.1, Figure 6 rows `webserver:36–41`).
//!
//! "A simple file server with authentication. It comprises four
//! components: one listens on the network, one performs access control
//! checks, one accesses the filesystem, and one handles
//! successfully-connected clients." This is the benchmark the paper kept
//! untouched while developing the automation (§6.3) — two of its
//! originally-stated policies turned out to be false; see
//! `tests/utility_mutations.rs` for the reproduction of that anecdote.

/// Concrete `.rx` source of the web server kernel.
pub const SOURCE: &str = include_str!("../../rx/webserver.rx");

/// Parses the web server kernel.
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("webserver", SOURCE).expect("webserver kernel parses")
}

/// Parses and type-checks the web server kernel.
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("webserver kernel is well-formed")
}
