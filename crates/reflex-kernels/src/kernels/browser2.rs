//! The web browser kernel, second variant (Figure 6 rows `browser2:15–21`).
//!
//! This variant explores a different cookie protocol (the paper: "the
//! quark variants explore implementation trade-offs for handling
//! cookies"): tabs *fetch* cookies on demand (`GetCookie`/`Fetch`/`Value`)
//! instead of receiving pushes, which splits the "cookies stay in their
//! domain" policy into separate tab-side and cookie-process-side
//! properties (two Figure 6 rows instead of one).

/// Concrete `.rx` source of the browser kernel (variant 2).
pub const SOURCE: &str = include_str!("../../rx/browser2.rx");

/// Parses the browser kernel (variant 2).
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("browser2", SOURCE).expect("browser2 kernel parses")
}

/// Parses and type-checks the browser kernel (variant 2).
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("browser2 kernel is well-formed")
}
