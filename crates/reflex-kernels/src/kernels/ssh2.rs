//! The second SSH variant (Figure 6 rows `ssh2:34–35`): "uses a separate
//! component to count authentication attempts".
//!
//! Instead of an in-kernel counter, login attempts are forwarded to a
//! dedicated `Counter` component; only attempts it approves reach the
//! password checker. The headline property is that every password check
//! was approved by the counter.

/// Concrete `.rx` source of the ssh2 kernel.
pub const SOURCE: &str = include_str!("../../rx/ssh2.rx");

/// Parses the ssh2 kernel.
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("ssh2", SOURCE).expect("ssh2 kernel parses")
}

/// Parses and type-checks the ssh2 kernel.
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("ssh2 kernel is well-formed")
}
