//! The web browser kernel, first variant (Figure 6 rows `browser:9–14`).
//!
//! A Quark-style browser kernel: each tab runs in its own process, cookies
//! are cached by one cookie process per domain, and the kernel mediates
//! every interaction — tab creation, cookie traffic, and socket opening.
//! Unlike Quark's broadcast of cookie updates, this kernel routes each
//! cookie message individually with `lookup` (the paper's `broadcast` →
//! `lookup` design lesson, §7).

/// Concrete `.rx` source of the browser kernel (variant 1).
pub const SOURCE: &str = include_str!("../../rx/browser.rx");

/// Parses the browser kernel (variant 1).
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("browser", SOURCE).expect("browser kernel parses")
}

/// Parses and type-checks the browser kernel (variant 1).
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("browser kernel is well-formed")
}
