//! The web browser kernel, third variant (Figure 6 rows `browser3:22–28`).
//!
//! This variant adds world interaction to the hot paths — a `prefetch`
//! call when a tab is created and a `fetch_favicon` call on navigation —
//! which stresses the treatment of non-deterministic contexts in both the
//! trace proofs and the non-interference analysis. Cookie handling uses
//! the connect-then-push protocol of variant 1.

/// Concrete `.rx` source of the browser kernel (variant 3).
pub const SOURCE: &str = include_str!("../../rx/browser3.rx");

/// Parses the browser kernel (variant 3).
pub fn program() -> reflex_ast::Program {
    reflex_parser::parse_program("browser3", SOURCE).expect("browser3 kernel parses")
}

/// Parses and type-checks the browser kernel (variant 3).
pub fn checked() -> reflex_typeck::CheckedProgram {
    reflex_typeck::check(&program()).expect("browser3 kernel is well-formed")
}
