//! The canonical Figure 6 inventory: all 41 benchmark properties with the
//! verification times the paper reports (seconds, on a 3.4 GHz Core i7
//! running Coq).
//!
//! The benchmark harness (`reflex-bench`) walks this table, proves every
//! property with our automation, validates the certificate, and reports
//! our time next to the paper's.

/// One row of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Benchmark kernel name (`car`, `browser`, `browser2`, `browser3`,
    /// `ssh`, `ssh2`, `webserver`).
    pub benchmark: &'static str,
    /// The paper's policy description (verbatim).
    pub description: &'static str,
    /// The corresponding property name in our kernel sources.
    pub property: &'static str,
    /// Verification time reported by the paper, in seconds.
    pub paper_seconds: u32,
}

/// All 41 rows, in the paper's order.
pub const ROWS: [Row; 41] = [
    // --- car ------------------------------------------------------------
    Row {
        benchmark: "car",
        description: "Components do not interfere with the engine",
        property: "EngineIsolated",
        paper_seconds: 13,
    },
    Row {
        benchmark: "car",
        description: "Airbags do deploy when there has been a crash",
        property: "AirbagsDeployOnCrash",
        paper_seconds: 6,
    },
    Row {
        benchmark: "car",
        description: "Airbags are deployed immediately after crash",
        property: "AirbagsDeployImmediately",
        paper_seconds: 4,
    },
    Row {
        benchmark: "car",
        description: "Cruise control turns off immediately after braking",
        property: "CruiseOffImmediatelyOnBrake",
        paper_seconds: 5,
    },
    Row {
        benchmark: "car",
        description: "Doors unlock when there is a crash",
        property: "DoorsUnlockOnCrash",
        paper_seconds: 6,
    },
    Row {
        benchmark: "car",
        description: "Doors unlock immediately after airbags deployed",
        property: "DoorsUnlockAfterAirbags",
        paper_seconds: 6,
    },
    Row {
        benchmark: "car",
        description: "Doors can not lock after a crash",
        property: "NoLockAfterCrash",
        paper_seconds: 21,
    },
    Row {
        benchmark: "car",
        description: "Airbags only deploy if there has been a crash",
        property: "AirbagsOnlyAfterCrash",
        paper_seconds: 6,
    },
    // --- browser ----------------------------------------------------------
    Row {
        benchmark: "browser",
        description: "Tab processes have unique IDs",
        property: "UniqueTabIds",
        paper_seconds: 70,
    },
    Row {
        benchmark: "browser",
        description: "Cookie processes are unique per domain",
        property: "UniqueCookieMgrPerDomain",
        paper_seconds: 75,
    },
    Row {
        benchmark: "browser",
        description: "Cookies stay in their domain (tab, cookie process)",
        property: "CookiesStayInDomain",
        paper_seconds: 37,
    },
    Row {
        benchmark: "browser",
        description: "Tabs are correctly connected to their cookie process",
        property: "TabsConnectedToTheirCookieMgr",
        paper_seconds: 38,
    },
    Row {
        benchmark: "browser",
        description: "Different domains do not interfere",
        property: "DomainNI",
        paper_seconds: 229,
    },
    Row {
        benchmark: "browser",
        description: "Tabs can only open sockets to allowed domains",
        property: "SocketsOnlyToOwnDomain",
        paper_seconds: 94,
    },
    // --- browser2 ---------------------------------------------------------
    Row {
        benchmark: "browser2",
        description: "Tab processes have unique IDs",
        property: "UniqueTabIds",
        paper_seconds: 80,
    },
    Row {
        benchmark: "browser2",
        description: "Cookie processes are unique per domain",
        property: "UniqueCookieMgrPerDomain",
        paper_seconds: 130,
    },
    Row {
        benchmark: "browser2",
        description: "Cookies stay in their domain (tab)",
        property: "CookiesToMgrStayInDomain",
        paper_seconds: 64,
    },
    Row {
        benchmark: "browser2",
        description: "Cookies stay in their domain (cookie process)",
        property: "CookiesToTabStayInDomain",
        paper_seconds: 70,
    },
    Row {
        benchmark: "browser2",
        description: "Tabs are correctly connected to their cookie process",
        property: "TabsConnectedToTheirCookieMgr",
        paper_seconds: 88,
    },
    Row {
        benchmark: "browser2",
        description: "Different domains do not interfere",
        property: "DomainNI",
        paper_seconds: 338,
    },
    Row {
        benchmark: "browser2",
        description: "Tabs can only open sockets to allowed domains",
        property: "SocketsOnlyToOwnDomain",
        paper_seconds: 106,
    },
    // --- browser3 ---------------------------------------------------------
    Row {
        benchmark: "browser3",
        description: "Tab processes have unique IDs",
        property: "UniqueTabIds",
        paper_seconds: 295,
    },
    Row {
        benchmark: "browser3",
        description: "Cookie processes are unique per domain",
        property: "UniqueCookieMgrPerDomain",
        paper_seconds: 193,
    },
    Row {
        benchmark: "browser3",
        description: "Cookies stay in their domain (tab)",
        property: "CookiesToMgrStayInDomain",
        paper_seconds: 83,
    },
    Row {
        benchmark: "browser3",
        description: "Cookies stay in their domain (cookie process)",
        property: "CookiesToTabStayInDomain",
        paper_seconds: 91,
    },
    Row {
        benchmark: "browser3",
        description: "Tabs are correctly connected to their cookie process",
        property: "TabsConnectedToTheirCookieMgr",
        paper_seconds: 151,
    },
    Row {
        benchmark: "browser3",
        description: "Different domains do not interfere",
        property: "DomainNI",
        paper_seconds: 532,
    },
    Row {
        benchmark: "browser3",
        description: "Tabs can only open sockets to allowed domains",
        property: "SocketsOnlyToOwnDomain",
        paper_seconds: 78,
    },
    // --- ssh --------------------------------------------------------------
    Row {
        benchmark: "ssh",
        description: "Each login attempt enables the next one",
        property: "SecondAttemptNeedsFirst",
        paper_seconds: 54,
    },
    Row {
        benchmark: "ssh",
        description: "The first attempt to login disables itself",
        property: "FirstAttemptOnlyOnce",
        paper_seconds: 58,
    },
    Row {
        benchmark: "ssh",
        description: "The second attempt to login disables itself",
        property: "SecondAttemptOnlyOnce",
        paper_seconds: 297,
    },
    Row {
        benchmark: "ssh",
        description: "The third attempt to login disables all attempts",
        property: "ThirdAttemptDisablesAll",
        paper_seconds: 53,
    },
    Row {
        benchmark: "ssh",
        description: "Succesful login enables pseudo-terminal creation",
        property: "LoginEnablesPty",
        paper_seconds: 55,
    },
    // --- ssh2 -------------------------------------------------------------
    Row {
        benchmark: "ssh2",
        description: "Succesful login enables pseudo-terminal creation",
        property: "LoginEnablesPty2",
        paper_seconds: 113,
    },
    Row {
        benchmark: "ssh2",
        description: "Login attempts approved by counter component",
        property: "AttemptsApprovedByCounter",
        paper_seconds: 37,
    },
    // --- webserver ----------------------------------------------------------
    Row {
        benchmark: "webserver",
        description: "A client is only spawned on successful login",
        property: "ClientOnlyAfterLogin",
        paper_seconds: 26,
    },
    Row {
        benchmark: "webserver",
        description: "Clients are never duplicated",
        property: "ClientsNeverDuplicated",
        paper_seconds: 70,
    },
    Row {
        benchmark: "webserver",
        description: "Files can only be requested after login",
        property: "FileReqsOnlyFromLoggedIn",
        paper_seconds: 87,
    },
    Row {
        benchmark: "webserver",
        description: "Files are only requested after authorization",
        property: "ReadsOnlyAuthorized",
        paper_seconds: 23,
    },
    Row {
        benchmark: "webserver",
        description: "Kernel only sends a file where the disk indicates",
        property: "DeliverOnlyDiskData",
        paper_seconds: 34,
    },
    Row {
        benchmark: "webserver",
        description: "Authorized requests are forwarded to disk",
        property: "AuthorizedForwardedToDisk",
        paper_seconds: 22,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_one_rows() {
        assert_eq!(ROWS.len(), 41);
    }

    #[test]
    fn every_row_names_a_declared_property() {
        for row in &ROWS {
            let bench = crate::benchmark(row.benchmark)
                .unwrap_or_else(|| panic!("unknown benchmark `{}`", row.benchmark));
            let program = (bench.program)();
            assert!(
                program.property(row.property).is_some(),
                "{}: property `{}` not declared",
                row.benchmark,
                row.property
            );
        }
    }

    #[test]
    fn per_benchmark_row_counts_match_the_paper() {
        let count = |b: &str| ROWS.iter().filter(|r| r.benchmark == b).count();
        assert_eq!(count("car"), 8);
        assert_eq!(count("browser"), 6);
        assert_eq!(count("browser2"), 7);
        assert_eq!(count("browser3"), 7);
        assert_eq!(count("ssh"), 5);
        assert_eq!(count("ssh2"), 2);
        assert_eq!(count("webserver"), 6);
    }
}
