//! Deterministic synthetic kernel generator for prover scaling work.
//!
//! The seven Figure-6 kernels prove in milliseconds, so nothing in the
//! repo stresses the prover. This module emits parameterized `.rx`
//! kernels — N ring-connected components, M handlers each, K trace/NI
//! properties over a seeded topology — scaling to hundreds of components
//! and thousands of properties while staying *provable by construction*:
//! every property is instantiated from a template whose handler shape
//! guarantees it (a message with a unique send site yields `Enables`, an
//! unconditional first-command send yields `ImmAfter`/`ImmBefore`, a
//! one-shot latch yields `Disables`, a bounded counter yields the
//! ssh-style attempt ladder, and high components that only write high
//! state satisfy `NIlo`/`NIhi`).
//!
//! Generation is a pure function of [`SynthConfig`] (including the seed):
//! the same config always produces byte-identical source, which is what
//! lets `rx bench scale`, the determinism CI job and the chaos harness
//! all agree on the workload without committing generated files.

use std::fmt::Write as _;

use reflex_rng::SimRng;

/// Parameters of one synthetic kernel. Generation is deterministic in
/// this whole struct; the seed controls topology and template choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Low (ring) components; each forwards to its ring successor.
    pub components: usize,
    /// Handler slots per ring component.
    pub handlers: usize,
    /// Maximum number of properties to emit (capped by the template
    /// pool; the generated kernel records how many were actually taken).
    pub properties: usize,
    /// High components for non-interference properties (may be 0).
    pub high_components: usize,
    /// Topology / template seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Named presets used by `rx bench scale` and CI.
    pub fn preset(name: &str, seed: u64) -> Option<SynthConfig> {
        let cfg = match name {
            "small" => SynthConfig {
                components: 6,
                handlers: 2,
                properties: 24,
                high_components: 1,
                seed,
            },
            "medium" => SynthConfig {
                components: 16,
                handlers: 3,
                properties: 120,
                high_components: 2,
                seed,
            },
            "large" => SynthConfig {
                components: 36,
                handlers: 4,
                properties: 480,
                high_components: 3,
                seed,
            },
            _ => return None,
        };
        Some(cfg)
    }
}

/// A generated kernel: its name, concrete `.rx` source and the config
/// that produced it.
#[derive(Debug, Clone)]
pub struct SynthKernel {
    /// Stable name, e.g. `synth-s7-n16m3`.
    pub name: String,
    /// Concrete `.rx` source text.
    pub source: String,
    /// The generating configuration.
    pub config: SynthConfig,
    /// Number of properties actually emitted (≤ `config.properties`).
    pub properties: usize,
}

impl SynthKernel {
    /// Parses the generated kernel.
    pub fn program(&self) -> reflex_ast::Program {
        reflex_parser::parse_program(&self.name, &self.source).expect("generated kernel parses")
    }

    /// Parses and type-checks the generated kernel.
    pub fn checked(&self) -> reflex_typeck::CheckedProgram {
        reflex_typeck::check(&self.program()).expect("generated kernel is well-formed")
    }
}

/// One handler template instantiated at ring slot `(comp, slot)`. Each
/// template knows the handlers, state and messages it needs and the
/// properties its shape makes provable.
enum Template {
    /// `when C:T(u) { send(next, F(u)); }` — unique send site, payload.
    ForwardStr,
    /// `when C:T() { send(next, F()); }` — unconditional, first command.
    ForwardUnit,
    /// `when C:T(u) { if (!once) { once = true; send(next, F(u)); } }`.
    Latch,
    /// ssh-style bounded attempt counter stamping the attempt number.
    Counter,
    /// ssh2-style pair: an `Ok(u)` handler latches the authorized user,
    /// a `Req(u)` handler forwards only for that user. Uses two slots.
    AuthPair,
}

/// Generates the kernel for `config`.
pub fn generate(config: &SynthConfig) -> SynthKernel {
    generate_variant(config, 0)
}

/// Generates the kernel for `config` with `variant` appended edits.
///
/// Variant 0 is the base kernel. Each successive variant appends one
/// deterministic, well-formed edit (an extra unconditional forward
/// handler plus its `Ensures` property) — the chaos harness uses this as
/// a realistic watch-session edit script over generated kernels.
pub fn generate_variant(config: &SynthConfig, variant: u32) -> SynthKernel {
    let n = config.components.max(2);
    let m = config.handlers.max(1);
    let h = config.high_components;
    // `synth_compat` reproduces the generator this module used to carry
    // (state pre-advanced past the all-zeros fixpoint), so every recorded
    // seed keeps producing byte-identical kernels.
    let mut rng = SimRng::synth_compat(config.seed);

    let mut messages = String::new();
    let mut state = String::new();
    let mut handlers = String::new();
    let mut props: Vec<String> = Vec::new();

    for i in 0..n {
        let next = (i + 1) % n;
        writeln!(state, "  tick_{i}: num = 0;").unwrap();
        let mut slot = 0;
        while slot < m {
            let pick = match rng.below(5) {
                0 => Template::ForwardStr,
                1 => Template::ForwardUnit,
                2 => Template::Latch,
                3 => Template::Counter,
                _ => Template::AuthPair,
            };
            // AuthPair needs two slots; fall back when only one is left.
            let pick = match pick {
                Template::AuthPair if slot + 1 >= m => Template::ForwardStr,
                other => other,
            };
            emit_template(
                &pick,
                i,
                slot,
                next,
                &mut messages,
                &mut state,
                &mut handlers,
                &mut props,
            );
            slot += match pick {
                Template::AuthPair => 2,
                _ => 1,
            };
        }
    }

    // High components: handlers only write high state, so NIlo holds for
    // every low exchange and NIhi for the high ones.
    let mut high_vars: Vec<String> = Vec::new();
    for k in 0..h {
        writeln!(messages, "  HSet{k}(str);").unwrap();
        writeln!(state, "  hv_{k}: str = \"\";").unwrap();
        writeln!(handlers, "  when H{k}:HSet{k}(u) {{").unwrap();
        writeln!(handlers, "    hv_{k} = u;").unwrap();
        writeln!(handlers, "  }}").unwrap();
        high_vars.push(format!("hv_{k}"));
    }
    if h > 0 {
        let comps: Vec<String> = (0..h).map(|k| format!("H{k}")).collect();
        props.push(format!(
            "  HighIsolated: noninterference {{\n    high components: {};\n    high vars: {};\n  }}",
            comps.join(", "),
            high_vars.join(", "),
        ));
    }

    // Appended variant edits (chaos watch-session script).
    for v in 0..variant {
        writeln!(messages, "  EditIn{v}();").unwrap();
        writeln!(messages, "  EditOut{v}();").unwrap();
        writeln!(handlers, "  when C0:EditIn{v}() {{").unwrap();
        writeln!(handlers, "    send(K1, EditOut{v}());").unwrap();
        writeln!(handlers, "  }}").unwrap();
        props.push(format!(
            "  EditEnsures{v}:\n    [Recv(C0(), EditIn{v}())] Ensures [Send(C1(), EditOut{v}())];"
        ));
    }

    // Deterministically shuffle the candidate pool, then take K. The
    // shuffle spreads property kinds across the prefix so small K still
    // exercises every template.
    let keep = config.properties.min(props.len());
    shuffle(&mut props, &mut rng);
    props.truncate(keep);

    let mut src = String::new();
    src.push_str("components {\n");
    for i in 0..n {
        writeln!(src, "  C{i} \"c{i}.c\" ();").unwrap();
    }
    for k in 0..h {
        writeln!(src, "  H{k} \"h{k}.c\" ();").unwrap();
    }
    src.push_str("}\n\nmessages {\n");
    src.push_str(&messages);
    src.push_str("}\n\nstate {\n");
    src.push_str(&state);
    src.push_str("}\n\ninit {\n");
    for i in 0..n {
        writeln!(src, "  K{i} <- spawn C{i}();").unwrap();
    }
    for k in 0..h {
        writeln!(src, "  KH{k} <- spawn H{k}();").unwrap();
    }
    src.push_str("}\n\nhandlers {\n");
    src.push_str(&handlers);
    src.push_str("}\n\nproperties {\n");
    for p in &props {
        src.push_str(p);
        src.push('\n');
    }
    src.push_str("}\n");

    SynthKernel {
        name: format!("synth-s{}-n{n}m{m}", config.seed),
        source: src,
        config: *config,
        properties: props.len(),
    }
}

/// Fisher–Yates with the generator's own rng.
fn shuffle(v: &mut [String], rng: &mut SimRng) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i + 1);
        v.swap(i, j);
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_template(
    t: &Template,
    i: usize,
    slot: usize,
    next: usize,
    messages: &mut String,
    state: &mut String,
    handlers: &mut String,
    props: &mut Vec<String>,
) {
    match t {
        Template::ForwardStr => {
            writeln!(messages, "  T{i}x{slot}(str);").unwrap();
            writeln!(messages, "  F{i}x{slot}(str);").unwrap();
            writeln!(handlers, "  when C{i}:T{i}x{slot}(u) {{").unwrap();
            writeln!(handlers, "    send(K{next}, F{i}x{slot}(u));").unwrap();
            writeln!(handlers, "    tick_{i} = tick_{i} + 1;").unwrap();
            writeln!(handlers, "  }}").unwrap();
            props.push(format!(
                "  Fw{i}x{slot}Ensures: forall u: str.\n    [Recv(C{i}(), T{i}x{slot}(u))] Ensures [Send(C{next}(), F{i}x{slot}(u))];"
            ));
            props.push(format!(
                "  Fw{i}x{slot}Enables: forall u: str.\n    [Recv(C{i}(), T{i}x{slot}(u))] Enables [Send(C{next}(), F{i}x{slot}(u))];"
            ));
        }
        Template::ForwardUnit => {
            writeln!(messages, "  T{i}x{slot}();").unwrap();
            writeln!(messages, "  F{i}x{slot}();").unwrap();
            writeln!(handlers, "  when C{i}:T{i}x{slot}() {{").unwrap();
            writeln!(handlers, "    send(K{next}, F{i}x{slot}());").unwrap();
            writeln!(handlers, "  }}").unwrap();
            props.push(format!(
                "  Un{i}x{slot}ImmAfter:\n    [Recv(C{i}(), T{i}x{slot}())] ImmAfter [Send(C{next}(), F{i}x{slot}())];"
            ));
            props.push(format!(
                "  Un{i}x{slot}ImmBefore:\n    [Recv(C{i}(), T{i}x{slot}())] ImmBefore [Send(C{next}(), F{i}x{slot}())];"
            ));
            props.push(format!(
                "  Un{i}x{slot}Ensures:\n    [Recv(C{i}(), T{i}x{slot}())] Ensures [Send(C{next}(), F{i}x{slot}())];"
            ));
        }
        Template::Latch => {
            writeln!(messages, "  T{i}x{slot}(str);").unwrap();
            writeln!(messages, "  F{i}x{slot}(str);").unwrap();
            writeln!(state, "  once_{i}x{slot}: bool = false;").unwrap();
            writeln!(handlers, "  when C{i}:T{i}x{slot}(u) {{").unwrap();
            writeln!(handlers, "    if (!once_{i}x{slot}) {{").unwrap();
            writeln!(handlers, "      once_{i}x{slot} = true;").unwrap();
            writeln!(handlers, "      send(K{next}, F{i}x{slot}(u));").unwrap();
            writeln!(handlers, "    }}").unwrap();
            writeln!(handlers, "  }}").unwrap();
            props.push(format!(
                "  La{i}x{slot}Once:\n    [Send(C{next}(), F{i}x{slot}(_))] Disables [Send(C{next}(), F{i}x{slot}(_))];"
            ));
            props.push(format!(
                "  La{i}x{slot}Enables: forall u: str.\n    [Recv(C{i}(), T{i}x{slot}(u))] Enables [Send(C{next}(), F{i}x{slot}(u))];"
            ));
        }
        Template::Counter => {
            writeln!(messages, "  T{i}x{slot}(str);").unwrap();
            writeln!(messages, "  F{i}x{slot}(num, str);").unwrap();
            writeln!(state, "  cnt_{i}x{slot}: num = 0;").unwrap();
            writeln!(handlers, "  when C{i}:T{i}x{slot}(u) {{").unwrap();
            writeln!(handlers, "    if (cnt_{i}x{slot} < 3) {{").unwrap();
            writeln!(handlers, "      cnt_{i}x{slot} = cnt_{i}x{slot} + 1;").unwrap();
            writeln!(
                handlers,
                "      send(K{next}, F{i}x{slot}(cnt_{i}x{slot}, u));"
            )
            .unwrap();
            writeln!(handlers, "    }}").unwrap();
            writeln!(handlers, "  }}").unwrap();
            props.push(format!(
                "  Ct{i}x{slot}Ladder:\n    [Send(C{next}(), F{i}x{slot}(1, _))] Enables [Send(C{next}(), F{i}x{slot}(2, _))];"
            ));
            props.push(format!(
                "  Ct{i}x{slot}FirstOnce:\n    [Send(C{next}(), F{i}x{slot}(1, _))] Disables [Send(C{next}(), F{i}x{slot}(1, _))];"
            ));
            props.push(format!(
                "  Ct{i}x{slot}Exhaust:\n    [Send(C{next}(), F{i}x{slot}(3, _))] Disables [Send(C{next}(), F{i}x{slot}(_, _))];"
            ));
        }
        Template::AuthPair => {
            writeln!(messages, "  Ok{i}x{slot}(str);").unwrap();
            writeln!(messages, "  Rq{i}x{slot}(str);").unwrap();
            writeln!(messages, "  Gr{i}x{slot}(str);").unwrap();
            writeln!(state, "  auth_{i}x{slot}: str = \"\";").unwrap();
            writeln!(state, "  ok_{i}x{slot}: bool = false;").unwrap();
            writeln!(handlers, "  when C{i}:Ok{i}x{slot}(u) {{").unwrap();
            writeln!(handlers, "    auth_{i}x{slot} = u;").unwrap();
            writeln!(handlers, "    ok_{i}x{slot} = true;").unwrap();
            writeln!(handlers, "  }}").unwrap();
            writeln!(handlers, "  when C{i}:Rq{i}x{slot}(u) {{").unwrap();
            writeln!(
                handlers,
                "    if (ok_{i}x{slot} && u == auth_{i}x{slot}) {{"
            )
            .unwrap();
            writeln!(handlers, "      send(K{next}, Gr{i}x{slot}(u));").unwrap();
            writeln!(handlers, "    }}").unwrap();
            writeln!(handlers, "  }}").unwrap();
            props.push(format!(
                "  Au{i}x{slot}Gate: forall u: str.\n    [Recv(C{i}(), Ok{i}x{slot}(u))] Enables [Send(C{next}(), Gr{i}x{slot}(u))];"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::preset("small", 7).unwrap();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.name, b.name);
        // Different seeds give different kernels.
        let c = generate(&SynthConfig { seed: 8, ..cfg });
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn generated_source_is_pinned_across_the_simrng_migration() {
        // Golden FNV fingerprint of the small-preset seed-7 kernel,
        // recorded before the private splitmix generator was replaced by
        // `SimRng::synth_compat`: old seeds must keep producing
        // byte-identical kernels (BENCH files and CI reference them).
        let kernel = generate(&SynthConfig::preset("small", 7).unwrap());
        assert_eq!(
            reflex_ast::fingerprint::fp_str(&kernel.source).0,
            0x25b5_b694_9729_f3c8,
            "synth-s7 source drifted; seeded kernels are no longer stable"
        );
    }

    #[test]
    fn presets_parse_and_typecheck() {
        for preset in ["small", "medium"] {
            let cfg = SynthConfig::preset(preset, 3).unwrap();
            let kernel = generate(&cfg);
            let checked = kernel.checked();
            assert_eq!(
                checked.program().properties.len(),
                kernel.properties,
                "{preset}"
            );
            assert!(kernel.properties > 0, "{preset}");
        }
    }

    #[test]
    fn variants_are_wellformed_edits() {
        let cfg = SynthConfig::preset("small", 11).unwrap();
        let base = generate(&cfg);
        let edited = generate_variant(&cfg, 2);
        assert_ne!(base.source, edited.source);
        assert_eq!(edited.properties, base.properties.min(cfg.properties));
        edited.checked();
    }

    #[test]
    fn small_preset_properties_all_prove() {
        let cfg = SynthConfig {
            components: 3,
            handlers: 2,
            properties: 64,
            high_components: 1,
            seed: 5,
        };
        let kernel = generate(&cfg);
        let checked = kernel.checked();
        for prop in &checked.program().properties {
            let outcome = reflex_verify::prove(&checked, &prop.name, &Default::default()).unwrap();
            assert!(outcome.is_proved(), "{} failed: {outcome:?}", prop.name);
        }
    }
}
