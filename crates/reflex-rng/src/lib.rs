//! The workspace's single source of seeded randomness.
//!
//! Before the simulator existed, three modules each hand-rolled the same
//! SplitMix64 generator — `reflex-runtime::faults` (per-step fault plans),
//! `reflex-verify::vfs` (an FNV-based ppm fault roll) and
//! `reflex-kernels::synth` (topology/template choice) — so "one seed
//! reproduces the run" was only true per-injector. This crate collapses
//! them into one splittable [`SimRng`] plus the small set of pure
//! derivation functions the injectors share, with the old streams
//! preserved **bit for bit**: every constructor here is pinned by a test
//! against a frozen copy of the algorithm it replaced, so seeds recorded
//! in old BENCH files, CI logs and repro notes keep their meaning.
//!
//! The seed-tree discipline (used by `reflex-sim`): a root seed never
//! feeds a generator directly; each consumer derives its own independent
//! stream with [`derive`] under a unique label. Two streams derived under
//! different labels are uncorrelated, and adding a new stream never shifts
//! an existing one — which is what makes scenario traces replayable across
//! code changes that add instrumentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::{RngExt, SampleUniform, SeedableRng};

/// The SplitMix64 increment (golden-ratio gamma).
pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output scramble: a bijective finalizer good enough to
/// turn any structured counter into an uncorrelated 64-bit value.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `i`-th value of the stateless stream rooted at `seed`: one
/// scramble of `seed ^ i·GAMMA`. This is the derivation both
/// `FaultPlan::random` (per-step generators, `i = step`) and the soak
/// harness (per-kernel seeds, `i = index + 1`) have always used; a seed
/// plus an index fully reproduces the draw, independent of query order.
#[inline]
pub fn stream_u64(seed: u64, i: u64) -> u64 {
    mix64(seed ^ i.wrapping_mul(GAMMA))
}

/// FNV-1a (64-bit) over `bytes`, continuing from `state`. The same
/// algorithm as `reflex-ast`'s persisted fingerprints (fixed forever, so
/// rolls recorded in old repros stay valid); duplicated here because this
/// crate sits below `reflex-ast` in the dependency order.
#[inline]
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The per-operation fault roll of `reflex-verify`'s `FsFaultPlan`: FNV-1a
/// over the label `"fs-fault"` (with the fingerprinting terminator byte),
/// the schedule seed and the global operation index. `roll % 1_000_000`
/// decides ppm firing; `roll / 1_000_000` picks the flavor.
#[inline]
pub fn fault_roll(seed: u64, global: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"fs-fault");
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, &seed.to_le_bytes());
    fnv1a(h, &global.to_le_bytes())
}

/// Derives the child seed of `seed` under `label` — the seed-tree split.
/// Labels are hashed with FNV-1a (terminated, so `"ab"`/`"a"+"b"` cannot
/// alias) and scrambled into the root; distinct labels give independent
/// streams, and the derivation is stable across releases.
#[inline]
pub fn derive(seed: u64, label: &str) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, b"sim-stream");
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, label.as_bytes());
    h = fnv1a(h, &[0xff]);
    mix64(seed ^ mix64(h))
}

/// The one seeded generator: SplitMix64, one `u64` of state.
///
/// [`SimRng::new`] is stream-identical to the vendored `rand::rngs::StdRng`
/// it replaces, and [`SimRng::synth_compat`] to the private generator
/// `reflex-kernels::synth` used to carry — both pinned by tests below. The
/// [`RngExt`] impl inherits the vendored sampling defaults
/// (`random_range`, `random_bool`), so call sites that switched from
/// `StdRng` draw exactly the same values.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator whose stream equals `StdRng::seed_from_u64(seed)`.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// A generator whose stream equals the old `synth::Rng::new(seed)`
    /// (which pre-advanced its state by one gamma to dodge the all-zeros
    /// fixpoint): `synth_compat(s)` ≡ `new(s + GAMMA)`.
    pub fn synth_compat(seed: u64) -> SimRng {
        SimRng {
            state: seed.wrapping_add(GAMMA),
        }
    }

    /// The child generator for `label` — splits this generator's *seed
    /// position* without consuming from its stream.
    pub fn split(&self, label: &str) -> SimRng {
        SimRng::new(derive(self.state, label))
    }

    /// A draw in `0..n` by modulo (the historical `synth::Rng::below`
    /// reduction; biased for astronomical `n`, fine for topology picks).
    /// `n = 0` is treated as 1.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

impl SeedableRng for SimRng {
    fn seed_from_u64(seed: u64) -> Self {
        SimRng::new(seed)
    }
}

impl RngExt for SimRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frozen copy of the vendored `StdRng` (and of `faults.rs`'s former
    /// inline scramble), kept verbatim so the pins below fail loudly if
    /// either side ever drifts.
    struct FrozenStdRng(u64);

    impl FrozenStdRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn simrng_matches_frozen_stdrng_stream() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let mut frozen = FrozenStdRng(seed);
            let mut ours = SimRng::new(seed);
            for _ in 0..64 {
                assert_eq!(ours.next_u64(), frozen.next(), "seed {seed}");
            }
        }
    }

    #[test]
    fn simrng_matches_vendored_stdrng_sampling() {
        use rand::rngs::StdRng;
        let mut vendored = StdRng::seed_from_u64(7);
        let mut ours = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(
                ours.random_range(0usize..13),
                vendored.random_range(0usize..13)
            );
            assert_eq!(ours.random_bool(0.3), vendored.random_bool(0.3));
        }
    }

    #[test]
    fn synth_compat_matches_frozen_synth_rng() {
        // Frozen copy of the old `reflex-kernels::synth::Rng`.
        struct FrozenSynthRng(u64);
        impl FrozenSynthRng {
            fn new(seed: u64) -> Self {
                FrozenSynthRng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
            }
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: usize) -> usize {
                (self.next() % n.max(1) as u64) as usize
            }
        }
        for seed in [0u64, 3, 7, 11, 1 << 60] {
            let mut frozen = FrozenSynthRng::new(seed);
            let mut ours = SimRng::synth_compat(seed);
            for n in 1..64usize {
                assert_eq!(ours.below(n), frozen.below(n), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn stream_u64_matches_frozen_step_rng_derivation() {
        // Frozen copy of `reflex-runtime::faults::step_rng`'s seed
        // scramble (which seeded a StdRng with the result).
        fn frozen_step_seed(seed: u64, step: usize) -> u64 {
            let mut z = seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for seed in [0u64, 9, 0xFACE] {
            for step in 0..50usize {
                assert_eq!(stream_u64(seed, step as u64), frozen_step_seed(seed, step));
            }
        }
    }

    #[test]
    fn fault_roll_is_stable() {
        // Golden values computed with reflex-ast's FpHasher before the
        // roll moved here; reflex-verify re-pins against the live hasher.
        let a = fault_roll(7, 0);
        let b = fault_roll(7, 1);
        let c = fault_roll(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Determinism across calls.
        assert_eq!(a, fault_roll(7, 0));
    }

    #[test]
    fn derive_separates_labels_and_seeds() {
        let a = derive(1, "fs");
        assert_eq!(a, derive(1, "fs"));
        assert_ne!(a, derive(1, "world"));
        assert_ne!(a, derive(2, "fs"));
        // Terminated label hashing: concatenation cannot alias.
        assert_ne!(derive(1, "ab"), derive(1, "a"));
        // Splitting is position-based, not stream-consuming.
        let parent = SimRng::new(1);
        let mut kid1 = parent.split("fs");
        let mut kid2 = parent.split("fs");
        assert_eq!(kid1.next_u64(), kid2.next_u64());
    }
}
