//! Static well-formedness checking for Reflex programs.
//!
//! In the paper, Reflex is deeply embedded in Coq and "heavy use of
//! dependent types ensures that Reflex programmers never go wrong by
//! attempting to access undefined variables or execute an effectful
//! primitive without satisfying its preconditions" (§3.1). This crate
//! provides the same guarantee as a checker pass: [`check`] validates a
//! [`Program`](reflex_ast::Program) and returns a [`CheckedProgram`], the
//! required input of both the interpreter (`reflex-runtime`) and the
//! verifier (`reflex-verify`).
//!
//! Beyond basic scoping/typing, the checker enforces the structural
//! restrictions Reflex imposes to make proof automation tractable:
//!
//! * mutable state is data-only (`bool`/`num`/`str`); component handles are
//!   bound once (init spawns, local binders) and never reassigned;
//! * every component-typed expression has a *statically known* component
//!   type, so every emitted `Send`/`Spawn` action has a known recipient
//!   type;
//! * configurations and message payloads carry data, not component handles;
//! * property pattern variables are declared, consistently typed, and
//!   positive obligations introduce no variables beyond their trigger.
//!
//! # Example
//!
//! ```
//! use reflex_ast::build::ProgramBuilder;
//! use reflex_ast::{Expr, Ty};
//!
//! let program = ProgramBuilder::new("ok")
//!     .component("C", "c.py", [])
//!     .message("M", [Ty::Num])
//!     .state("total", Ty::Num, Expr::lit(0i64))
//!     .init_spawn("c0", "C", [])
//!     .handler("C", "M", ["n"], |h| {
//!         h.assign("total", Expr::var("total").add(Expr::var("n")));
//!     })
//!     .finish();
//! let checked = reflex_typeck::check(&program)?;
//! assert_eq!(checked.global("total").unwrap().ty, Ty::Num);
//! # Ok::<(), reflex_typeck::TypeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod error;
mod props;

pub use checker::{check, CheckedProgram, Scope, VarInfo};
pub use error::TypeError;
