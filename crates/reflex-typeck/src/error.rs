//! Type-checking errors.

use std::fmt;

use reflex_ast::Ty;

/// An error found while checking a Reflex program.
///
/// In the paper's Coq embedding these conditions are unrepresentable by
/// construction thanks to dependent types; here they are rejected by
/// [`crate::check`] before a program can be interpreted or verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two declarations share a name.
    DuplicateDecl {
        /// What kind of declaration (component, message, …).
        what: &'static str,
        /// The duplicated name.
        name: String,
    },
    /// A reference to an undeclared name.
    Undeclared {
        /// What kind of name was expected.
        what: &'static str,
        /// The unknown name.
        name: String,
    },
    /// An expression has the wrong type.
    Mismatch {
        /// Where the mismatch occurred.
        context: String,
        /// The expected type.
        expected: Ty,
        /// The actual type.
        found: Ty,
    },
    /// Wrong number of arguments/fields.
    Arity {
        /// Where the mismatch occurred.
        context: String,
        /// Expected count.
        expected: usize,
        /// Actual count.
        found: usize,
    },
    /// A state variable was declared with a type that cannot be stored.
    BadStateType {
        /// The variable.
        name: String,
        /// Its declared type.
        ty: Ty,
    },
    /// A configuration or payload signature uses a disallowed type.
    BadSignatureType {
        /// Where (component/message name).
        context: String,
        /// The offending type.
        ty: Ty,
    },
    /// A component-typed expression whose component type cannot be
    /// determined statically (required for `.field` access, `send` targets
    /// and `lookup` predicates).
    UnknownCompType {
        /// Where the expression occurred.
        context: String,
    },
    /// A component-typed variable is assigned components of two different
    /// component types.
    CompTypeConflict {
        /// The variable.
        var: String,
        /// The first component type.
        first: String,
        /// The conflicting component type.
        second: String,
    },
    /// Assignment to something that is not a global state variable.
    BadAssignTarget {
        /// The assigned name.
        name: String,
    },
    /// A binder shadows an existing variable, which Reflex forbids.
    Shadowing {
        /// The shadowing name.
        name: String,
    },
    /// A property pattern variable is not declared in the `forall` prefix.
    UndeclaredPatternVar {
        /// Property name.
        prop: String,
        /// The variable.
        var: String,
    },
    /// A pattern variable is used at two different types.
    PatternVarTypeConflict {
        /// Property name.
        prop: String,
        /// The variable.
        var: String,
        /// First use.
        first: Ty,
        /// Conflicting use.
        second: Ty,
    },
    /// A positive obligation pattern mentions a variable absent from the
    /// trigger pattern (unsatisfiable; see `reflex-trace` docs).
    ObligationVarNotInTrigger {
        /// Property name.
        prop: String,
        /// The variable.
        var: String,
    },
    /// A quantified variable has a type that cannot be pattern-matched.
    BadForallType {
        /// Property name.
        prop: String,
        /// The variable.
        var: String,
        /// The offending type.
        ty: Ty,
    },
    /// A state-variable initializer is not a closed literal expression.
    NonLiteralInit {
        /// The variable.
        name: String,
    },
    /// Two handlers service the same (component type, message type) pair.
    DuplicateHandler {
        /// Component type.
        ctype: String,
        /// Message type.
        msg: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateDecl { what, name } => {
                write!(f, "duplicate {what} declaration `{name}`")
            }
            TypeError::Undeclared { what, name } => write!(f, "undeclared {what} `{name}`"),
            TypeError::Mismatch {
                context,
                expected,
                found,
            } => write!(f, "type mismatch in {context}: expected {expected}, found {found}"),
            TypeError::Arity {
                context,
                expected,
                found,
            } => write!(f, "arity mismatch in {context}: expected {expected} arguments, found {found}"),
            TypeError::BadStateType { name, ty } => write!(
                f,
                "state variable `{name}` has type {ty}; only bool, num and str state is allowed (components are bound by init spawns)"
            ),
            TypeError::BadSignatureType { context, ty } => {
                write!(f, "signature of {context} uses disallowed type {ty}")
            }
            TypeError::UnknownCompType { context } => write!(
                f,
                "component type of expression in {context} cannot be determined statically"
            ),
            TypeError::CompTypeConflict { var, first, second } => write!(
                f,
                "variable `{var}` holds components of conflicting types `{first}` and `{second}`"
            ),
            TypeError::BadAssignTarget { name } => write!(
                f,
                "`{name}` is not an assignable global state variable"
            ),
            TypeError::Shadowing { name } => write!(f, "binder `{name}` shadows an existing variable"),
            TypeError::UndeclaredPatternVar { prop, var } => write!(
                f,
                "property `{prop}`: pattern variable `{var}` is not declared in the forall prefix"
            ),
            TypeError::PatternVarTypeConflict {
                prop,
                var,
                first,
                second,
            } => write!(
                f,
                "property `{prop}`: variable `{var}` used at both {first} and {second}"
            ),
            TypeError::ObligationVarNotInTrigger { prop, var } => write!(
                f,
                "property `{prop}`: obligation variable `{var}` does not occur in the trigger pattern, making the property unsatisfiable"
            ),
            TypeError::BadForallType { prop, var, ty } => write!(
                f,
                "property `{prop}`: quantified variable `{var}` has unmatchable type {ty}"
            ),
            TypeError::NonLiteralInit { name } => write!(
                f,
                "initializer of state variable `{name}` must be a literal"
            ),
            TypeError::DuplicateHandler { ctype, msg } => {
                write!(f, "duplicate handler for {ctype}:{msg}")
            }
        }
    }
}

impl std::error::Error for TypeError {}
