//! Well-formedness of property declarations.

use std::collections::BTreeMap;

use reflex_ast::{ActionPat, CompPat, PatField, Program, PropBody, PropertyDecl, Ty};

use crate::checker::Scope;
use crate::error::TypeError;

pub(crate) fn check_properties(program: &Program, globals: &Scope) -> Result<(), TypeError> {
    for prop in &program.properties {
        check_property(program, globals, prop)?;
    }
    Ok(())
}

fn check_property(
    program: &Program,
    globals: &Scope,
    prop: &PropertyDecl,
) -> Result<(), TypeError> {
    // Quantified variables: unique, data-typed (component handles are not
    // first-class in properties; component identity is expressed through
    // configurations, which is why configurations exist — paper §3.1).
    let mut seen = std::collections::HashSet::new();
    for (v, ty) in &prop.forall {
        if !seen.insert(v) {
            return Err(TypeError::DuplicateDecl {
                what: "quantified variable",
                name: v.clone(),
            });
        }
        if !matches!(ty, Ty::Bool | Ty::Num | Ty::Str | Ty::Fdesc) {
            return Err(TypeError::BadForallType {
                prop: prop.name.clone(),
                var: v.clone(),
                ty: *ty,
            });
        }
    }

    match &prop.body {
        PropBody::Trace(tp) => {
            let mut var_types: BTreeMap<String, Ty> = BTreeMap::new();
            check_action_pat(program, prop, &tp.a, &mut var_types)?;
            check_action_pat(program, prop, &tp.b, &mut var_types)?;

            // Positive obligations must not introduce variables beyond the
            // trigger (see `reflex-trace::props` module docs). `Disables`
            // has a negative obligation, where extra variables are fine.
            if tp.kind != reflex_ast::TracePropKind::Disables {
                let trigger_vars = tp.trigger().vars();
                for v in tp.obligation().vars() {
                    if !trigger_vars.contains(&v) {
                        return Err(TypeError::ObligationVarNotInTrigger {
                            prop: prop.name.clone(),
                            var: v,
                        });
                    }
                }
            }
            Ok(())
        }
        PropBody::NonInterference(spec) => {
            let mut var_types: BTreeMap<String, Ty> = BTreeMap::new();
            for cp in &spec.high_comps {
                check_comp_pat(program, prop, cp, &mut var_types)?;
            }
            for v in &spec.high_vars {
                match globals.get(v) {
                    Some(info) if info.mutable => {}
                    Some(_) => {
                        return Err(TypeError::BadAssignTarget { name: v.clone() });
                    }
                    None => {
                        return Err(TypeError::Undeclared {
                            what: "state variable",
                            name: v.clone(),
                        })
                    }
                }
            }
            Ok(())
        }
    }
}

fn check_action_pat(
    program: &Program,
    prop: &PropertyDecl,
    pat: &ActionPat,
    var_types: &mut BTreeMap<String, Ty>,
) -> Result<(), TypeError> {
    match pat {
        ActionPat::Select { comp } | ActionPat::Spawn { comp } => {
            check_comp_pat(program, prop, comp, var_types)
        }
        ActionPat::Recv { comp, msg, args } | ActionPat::Send { comp, msg, args } => {
            check_comp_pat(program, prop, comp, var_types)?;
            let m = program.msg_decl(msg).ok_or_else(|| TypeError::Undeclared {
                what: "message type",
                name: msg.clone(),
            })?;
            if args.len() != m.payload.len() {
                return Err(TypeError::Arity {
                    context: format!("pattern over message `{msg}` in property `{}`", prop.name),
                    expected: m.payload.len(),
                    found: args.len(),
                });
            }
            for (f, ty) in args.iter().zip(&m.payload) {
                check_field(prop, f, Some(*ty), var_types)?;
            }
            Ok(())
        }
        ActionPat::Call { args, result, .. } => {
            if let Some(args) = args {
                for f in args {
                    // Call argument positions are untyped (external
                    // functions are not declared); variables must still be
                    // quantified.
                    check_field(prop, f, None, var_types)?;
                }
            }
            check_field(prop, result, Some(Ty::Str), var_types)
        }
    }
}

fn check_comp_pat(
    program: &Program,
    prop: &PropertyDecl,
    pat: &CompPat,
    var_types: &mut BTreeMap<String, Ty>,
) -> Result<(), TypeError> {
    match (&pat.ctype, &pat.config) {
        (None, Some(_)) => Err(TypeError::UnknownCompType {
            context: format!(
                "configuration pattern on wildcard component in property `{}`",
                prop.name
            ),
        }),
        (None, None) => Ok(()),
        (Some(ct), config) => {
            let decl = program.comp_type(ct).ok_or_else(|| TypeError::Undeclared {
                what: "component type",
                name: ct.clone(),
            })?;
            if let Some(fields) = config {
                if fields.len() != decl.config.len() {
                    return Err(TypeError::Arity {
                        context: format!(
                            "configuration pattern of `{ct}` in property `{}`",
                            prop.name
                        ),
                        expected: decl.config.len(),
                        found: fields.len(),
                    });
                }
                for (f, (_, ty)) in fields.iter().zip(&decl.config) {
                    check_field(prop, f, Some(*ty), var_types)?;
                }
            }
            Ok(())
        }
    }
}

fn check_field(
    prop: &PropertyDecl,
    field: &PatField,
    expected: Option<Ty>,
    var_types: &mut BTreeMap<String, Ty>,
) -> Result<(), TypeError> {
    match field {
        PatField::Any => Ok(()),
        PatField::Lit(v) => {
            if let Some(want) = expected {
                if v.ty() != want {
                    return Err(TypeError::Mismatch {
                        context: format!("literal pattern field in property `{}`", prop.name),
                        expected: want,
                        found: v.ty(),
                    });
                }
            }
            Ok(())
        }
        PatField::Var(x) => {
            let declared = prop
                .forall_ty(x)
                .ok_or_else(|| TypeError::UndeclaredPatternVar {
                    prop: prop.name.clone(),
                    var: x.clone(),
                })?;
            if let Some(want) = expected {
                if declared != want {
                    return Err(TypeError::PatternVarTypeConflict {
                        prop: prop.name.clone(),
                        var: x.clone(),
                        first: declared,
                        second: want,
                    });
                }
            }
            match var_types.get(x) {
                Some(prev) if *prev != declared => Err(TypeError::PatternVarTypeConflict {
                    prop: prop.name.clone(),
                    var: x.clone(),
                    first: *prev,
                    second: declared,
                }),
                _ => {
                    var_types.insert(x.clone(), declared);
                    Ok(())
                }
            }
        }
    }
}
