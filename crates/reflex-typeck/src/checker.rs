//! The program checker.

use std::collections::BTreeMap;

use reflex_ast::{BinOp, Cmd, Expr, Fp, Handler, Program, ProgramFingerprints, Ty, UnOp, Value};

use crate::error::TypeError;

/// Information about a variable in scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// The variable's base type.
    pub ty: Ty,
    /// For component-typed variables: the statically known component type.
    ///
    /// Reflex requires every component-typed expression to have a statically
    /// known component type (needed for `.field` access and so that every
    /// emitted `Send` action has a known recipient type — a big lever for
    /// proof automation).
    pub comp_type: Option<String>,
    /// Whether the variable may be assigned in handlers (only data-typed
    /// `state` variables are; component variables are bound once, by `init`
    /// spawns or local binders).
    pub mutable: bool,
}

impl VarInfo {
    fn data(ty: Ty, mutable: bool) -> VarInfo {
        VarInfo {
            ty,
            comp_type: None,
            mutable,
        }
    }

    fn comp(ctype: impl Into<String>) -> VarInfo {
        VarInfo {
            ty: Ty::Comp,
            comp_type: Some(ctype.into()),
            mutable: false,
        }
    }
}

/// A scope: variable name → info.
pub type Scope = BTreeMap<String, VarInfo>;

/// A type-checked program.
///
/// Wraps the [`Program`] together with the derived global scope. Obtaining
/// a `CheckedProgram` (via [`crate::check`]) is the precondition for
/// interpretation (`reflex-runtime`) and verification (`reflex-verify`).
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    program: Program,
    globals: Scope,
    fingerprints: ProgramFingerprints,
}

impl CheckedProgram {
    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's canonical content fingerprints (declaration group,
    /// per-case handlers, properties), computed once at check time for the
    /// incremental verification pipeline.
    pub fn fingerprints(&self) -> &ProgramFingerprints {
        &self.fingerprints
    }

    /// The fingerprint of the `(ctype, msg)` handler case, if declared.
    pub fn handler_fp(&self, ctype: &str, msg: &str) -> Option<Fp> {
        self.fingerprints.handler(ctype, msg)
    }

    /// The fingerprint of the named property, if declared.
    pub fn property_fp(&self, name: &str) -> Option<Fp> {
        self.fingerprints.property(name)
    }

    /// The fingerprint of the verified subject (declarations + handlers).
    pub fn program_fp(&self) -> Fp {
        self.fingerprints.program
    }

    /// The global scope: state variables and init spawn binders.
    pub fn globals(&self) -> &Scope {
        &self.globals
    }

    /// Info for global variable `name`.
    pub fn global(&self, name: &str) -> Option<&VarInfo> {
        self.globals.get(name)
    }

    /// The scope visible inside the handler for `(ctype, msg)` *at entry*:
    /// globals, message parameters and the implicit `sender`.
    ///
    /// Local binders (`spawn`/`call`/`lookup`) extend this scope as the body
    /// executes; evaluators track those incrementally.
    pub fn handler_entry_scope(&self, ctype: &str, msg: &str) -> Scope {
        let mut scope = self.globals.clone();
        scope.insert(Handler::SENDER.to_owned(), VarInfo::comp(ctype));
        if let (Some(h), Some(m)) = (self.program.handler(ctype, msg), self.program.msg_decl(msg)) {
            for (p, ty) in h.params.iter().zip(&m.payload) {
                scope.insert(p.clone(), VarInfo::data(*ty, false));
            }
        }
        scope
    }

    /// The names and initial values of all data-typed state variables.
    pub fn state_initial_values(&self) -> Vec<(String, Value)> {
        self.program
            .state
            .iter()
            .map(|v| {
                let value = match &v.init {
                    Some(Expr::Lit(val)) => val.clone(),
                    Some(_) => unreachable!("checked: initializers are literals"),
                    None => {
                        v.ty.default_value()
                            .expect("checked: state types have defaults")
                    }
                };
                (v.name.clone(), value)
            })
            .collect()
    }
}

/// Checks a program, producing a [`CheckedProgram`].
///
/// # Errors
///
/// Returns the first [`TypeError`] found. The checks mirror what the
/// paper's dependently typed Coq embedding makes unrepresentable: undefined
/// variables, arity and type errors, unknown component/message types,
/// ill-formed properties, and the structural restrictions Reflex imposes for
/// proof automation (data-only mutable state, statically known component
/// types, obligation variables bound by the trigger).
pub fn check(program: &Program) -> Result<CheckedProgram, TypeError> {
    let checker = Checker { program };
    checker.check_decls()?;
    let globals = checker.check_init_and_build_globals()?;
    for h in &program.handlers {
        checker.check_handler(h, &globals)?;
    }
    crate::props::check_properties(program, &globals)?;
    Ok(CheckedProgram {
        program: program.clone(),
        globals,
        fingerprints: ProgramFingerprints::compute(program),
    })
}

struct Checker<'p> {
    program: &'p Program,
}

impl<'p> Checker<'p> {
    fn check_decls(&self) -> Result<(), TypeError> {
        let p = self.program;
        let mut seen = std::collections::HashSet::new();
        for c in &p.components {
            if !seen.insert(&c.name) {
                return Err(TypeError::DuplicateDecl {
                    what: "component type",
                    name: c.name.clone(),
                });
            }
            let mut fields = std::collections::HashSet::new();
            for (f, ty) in &c.config {
                if !fields.insert(f) {
                    return Err(TypeError::DuplicateDecl {
                        what: "configuration field",
                        name: format!("{}.{f}", c.name),
                    });
                }
                if !matches!(ty, Ty::Bool | Ty::Num | Ty::Str) {
                    return Err(TypeError::BadSignatureType {
                        context: format!("component `{}` configuration", c.name),
                        ty: *ty,
                    });
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for m in &p.messages {
            if !seen.insert(&m.name) {
                return Err(TypeError::DuplicateDecl {
                    what: "message type",
                    name: m.name.clone(),
                });
            }
            for ty in &m.payload {
                if matches!(ty, Ty::Comp) {
                    return Err(TypeError::BadSignatureType {
                        context: format!("message `{}`", m.name),
                        ty: *ty,
                    });
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for v in &p.state {
            if !seen.insert(&v.name) {
                return Err(TypeError::DuplicateDecl {
                    what: "state variable",
                    name: v.name.clone(),
                });
            }
            if !matches!(v.ty, Ty::Bool | Ty::Num | Ty::Str) {
                return Err(TypeError::BadStateType {
                    name: v.name.clone(),
                    ty: v.ty,
                });
            }
            match &v.init {
                None => {}
                // Well-typed literal: fine.
                Some(Expr::Lit(val)) if val.ty() == v.ty => {}
                Some(Expr::Lit(val)) => {
                    return Err(TypeError::Mismatch {
                        context: format!("initializer of `{}`", v.name),
                        expected: v.ty,
                        found: val.ty(),
                    });
                }
                Some(_) => {
                    return Err(TypeError::NonLiteralInit {
                        name: v.name.clone(),
                    })
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for h in &p.handlers {
            if !seen.insert((&h.ctype, &h.msg)) {
                return Err(TypeError::DuplicateHandler {
                    ctype: h.ctype.clone(),
                    msg: h.msg.clone(),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for prop in &p.properties {
            if !seen.insert(&prop.name) {
                return Err(TypeError::DuplicateDecl {
                    what: "property",
                    name: prop.name.clone(),
                });
            }
        }
        Ok(())
    }

    fn check_init_and_build_globals(&self) -> Result<Scope, TypeError> {
        let mut globals: Scope = Scope::new();
        for v in &self.program.state {
            globals.insert(v.name.clone(), VarInfo::data(v.ty, true));
        }
        // Init runs with the state variables in scope; its binders become
        // globals (immutable component handles / call results).
        let mut scope = globals.clone();
        self.check_cmd(&self.program.init, &mut scope, "init")?;
        // Everything init bound beyond the state variables becomes global.
        for (name, info) in scope {
            globals.entry(name).or_insert(info);
        }
        Ok(globals)
    }

    fn check_handler(&self, h: &Handler, globals: &Scope) -> Result<(), TypeError> {
        self.program
            .comp_type(&h.ctype)
            .ok_or_else(|| TypeError::Undeclared {
                what: "component type",
                name: h.ctype.clone(),
            })?;
        let m = self
            .program
            .msg_decl(&h.msg)
            .ok_or_else(|| TypeError::Undeclared {
                what: "message type",
                name: h.msg.clone(),
            })?;
        if h.params.len() != m.payload.len() {
            return Err(TypeError::Arity {
                context: format!("handler {}:{}", h.ctype, h.msg),
                expected: m.payload.len(),
                found: h.params.len(),
            });
        }
        let mut scope = globals.clone();
        if scope.contains_key(Handler::SENDER) {
            return Err(TypeError::Shadowing {
                name: Handler::SENDER.to_owned(),
            });
        }
        scope.insert(Handler::SENDER.to_owned(), VarInfo::comp(&h.ctype));
        for (p, ty) in h.params.iter().zip(&m.payload) {
            if scope.insert(p.clone(), VarInfo::data(*ty, false)).is_some() {
                return Err(TypeError::Shadowing { name: p.clone() });
            }
        }
        self.check_cmd(
            &h.body,
            &mut scope,
            &format!("handler {}:{}", h.ctype, h.msg),
        )
    }

    /// Checks a command, extending `scope` with binders that stay visible
    /// for the rest of the enclosing block.
    fn check_cmd(&self, cmd: &Cmd, scope: &mut Scope, ctx: &str) -> Result<(), TypeError> {
        match cmd {
            Cmd::Nop => Ok(()),
            Cmd::Block(cs) => {
                for c in cs {
                    self.check_cmd(c, scope, ctx)?;
                }
                Ok(())
            }
            Cmd::Assign(x, e) => {
                let info = scope.get(x).cloned().ok_or_else(|| TypeError::Undeclared {
                    what: "variable",
                    name: x.clone(),
                })?;
                if !info.mutable {
                    return Err(TypeError::BadAssignTarget { name: x.clone() });
                }
                let (ty, _) = self.type_of(e, scope, ctx)?;
                if ty != info.ty {
                    return Err(TypeError::Mismatch {
                        context: format!("assignment to `{x}` in {ctx}"),
                        expected: info.ty,
                        found: ty,
                    });
                }
                Ok(())
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expect_ty(cond, Ty::Bool, scope, &format!("branch condition in {ctx}"))?;
                // Binders do not escape branches: check with clones.
                let mut t = scope.clone();
                self.check_cmd(then_branch, &mut t, ctx)?;
                let mut e = scope.clone();
                self.check_cmd(else_branch, &mut e, ctx)
            }
            Cmd::Send { target, msg, args } => {
                let (ty, ctype) = self.type_of(target, scope, ctx)?;
                if ty != Ty::Comp {
                    return Err(TypeError::Mismatch {
                        context: format!("send target in {ctx}"),
                        expected: Ty::Comp,
                        found: ty,
                    });
                }
                if ctype.is_none() {
                    return Err(TypeError::UnknownCompType {
                        context: format!("send target in {ctx}"),
                    });
                }
                let m = self
                    .program
                    .msg_decl(msg)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "message type",
                        name: msg.clone(),
                    })?;
                if args.len() != m.payload.len() {
                    return Err(TypeError::Arity {
                        context: format!("send of `{msg}` in {ctx}"),
                        expected: m.payload.len(),
                        found: args.len(),
                    });
                }
                for (a, ty) in args.iter().zip(&m.payload) {
                    self.expect_ty(a, *ty, scope, &format!("payload of `{msg}` in {ctx}"))?;
                }
                Ok(())
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let c = self
                    .program
                    .comp_type(ctype)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "component type",
                        name: ctype.clone(),
                    })?;
                if config.len() != c.config.len() {
                    return Err(TypeError::Arity {
                        context: format!("spawn of `{ctype}` in {ctx}"),
                        expected: c.config.len(),
                        found: config.len(),
                    });
                }
                for (e, (fname, ty)) in config.iter().zip(&c.config) {
                    self.expect_ty(
                        e,
                        *ty,
                        scope,
                        &format!("configuration field `{fname}` of `{ctype}` in {ctx}"),
                    )?;
                }
                if scope.insert(binder.clone(), VarInfo::comp(ctype)).is_some() {
                    return Err(TypeError::Shadowing {
                        name: binder.clone(),
                    });
                }
                Ok(())
            }
            Cmd::Call { binder, args, .. } => {
                for a in args {
                    let (ty, _) = self.type_of(a, scope, ctx)?;
                    if !matches!(ty, Ty::Bool | Ty::Num | Ty::Str) {
                        return Err(TypeError::Mismatch {
                            context: format!("call argument in {ctx}"),
                            expected: Ty::Str,
                            found: ty,
                        });
                    }
                }
                if scope
                    .insert(binder.clone(), VarInfo::data(Ty::Str, false))
                    .is_some()
                {
                    return Err(TypeError::Shadowing {
                        name: binder.clone(),
                    });
                }
                Ok(())
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                self.program
                    .comp_type(ctype)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "component type",
                        name: ctype.clone(),
                    })?;
                if scope.contains_key(binder) {
                    return Err(TypeError::Shadowing {
                        name: binder.clone(),
                    });
                }
                let mut bcast_scope = scope.clone();
                bcast_scope.insert(binder.clone(), VarInfo::comp(ctype));
                self.expect_ty(
                    pred,
                    Ty::Bool,
                    &bcast_scope,
                    &format!("broadcast predicate in {ctx}"),
                )?;
                let m = self
                    .program
                    .msg_decl(msg)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "message type",
                        name: msg.clone(),
                    })?;
                if args.len() != m.payload.len() {
                    return Err(TypeError::Arity {
                        context: format!("broadcast of `{msg}` in {ctx}"),
                        expected: m.payload.len(),
                        found: args.len(),
                    });
                }
                for (a, ty) in args.iter().zip(&m.payload) {
                    self.expect_ty(
                        a,
                        *ty,
                        &bcast_scope,
                        &format!("payload of broadcast `{msg}` in {ctx}"),
                    )?;
                }
                Ok(())
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                self.program
                    .comp_type(ctype)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "component type",
                        name: ctype.clone(),
                    })?;
                if scope.contains_key(binder) {
                    return Err(TypeError::Shadowing {
                        name: binder.clone(),
                    });
                }
                let mut pred_scope = scope.clone();
                pred_scope.insert(binder.clone(), VarInfo::comp(ctype));
                self.expect_ty(
                    pred,
                    Ty::Bool,
                    &pred_scope,
                    &format!("lookup predicate in {ctx}"),
                )?;
                let mut f = pred_scope;
                self.check_cmd(found, &mut f, ctx)?;
                let mut m = scope.clone();
                self.check_cmd(missing, &mut m, ctx)
            }
        }
    }

    fn expect_ty(&self, e: &Expr, want: Ty, scope: &Scope, ctx: &str) -> Result<(), TypeError> {
        let (ty, _) = self.type_of(e, scope, ctx)?;
        if ty != want {
            return Err(TypeError::Mismatch {
                context: ctx.to_owned(),
                expected: want,
                found: ty,
            });
        }
        Ok(())
    }

    /// Types an expression; returns `(type, static component type)`.
    fn type_of(
        &self,
        e: &Expr,
        scope: &Scope,
        ctx: &str,
    ) -> Result<(Ty, Option<String>), TypeError> {
        match e {
            Expr::Lit(v) => Ok((v.ty(), None)),
            Expr::Var(x) => {
                let info = scope.get(x).ok_or_else(|| TypeError::Undeclared {
                    what: "variable",
                    name: x.clone(),
                })?;
                Ok((info.ty, info.comp_type.clone()))
            }
            Expr::Cfg(inner, field) => {
                let (ty, ctype) = self.type_of(inner, scope, ctx)?;
                if ty != Ty::Comp {
                    return Err(TypeError::Mismatch {
                        context: format!("configuration access `.{field}` in {ctx}"),
                        expected: Ty::Comp,
                        found: ty,
                    });
                }
                let ctype = ctype.ok_or_else(|| TypeError::UnknownCompType {
                    context: format!("configuration access `.{field}` in {ctx}"),
                })?;
                let decl = self
                    .program
                    .comp_type(&ctype)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "component type",
                        name: ctype.clone(),
                    })?;
                let (_, fty) = decl
                    .config_field(field)
                    .ok_or_else(|| TypeError::Undeclared {
                        what: "configuration field",
                        name: format!("{ctype}.{field}"),
                    })?;
                Ok((fty, None))
            }
            Expr::Un(op, inner) => {
                let want = match op {
                    UnOp::Not => Ty::Bool,
                    UnOp::Neg => Ty::Num,
                };
                self.expect_ty(inner, want, scope, ctx)?;
                Ok((want, None))
            }
            Expr::Bin(op, l, r) => {
                let (lt, _) = self.type_of(l, scope, ctx)?;
                let (rt, _) = self.type_of(r, scope, ctx)?;
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt {
                            return Err(TypeError::Mismatch {
                                context: format!("equality in {ctx}"),
                                expected: lt,
                                found: rt,
                            });
                        }
                        Ok((Ty::Bool, None))
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool {
                            return Err(TypeError::Mismatch {
                                context: format!("boolean operator in {ctx}"),
                                expected: Ty::Bool,
                                found: lt,
                            });
                        }
                        if rt != Ty::Bool {
                            return Err(TypeError::Mismatch {
                                context: format!("boolean operator in {ctx}"),
                                expected: Ty::Bool,
                                found: rt,
                            });
                        }
                        Ok((Ty::Bool, None))
                    }
                    BinOp::Add | BinOp::Sub => {
                        if lt != Ty::Num {
                            return Err(TypeError::Mismatch {
                                context: format!("arithmetic in {ctx}"),
                                expected: Ty::Num,
                                found: lt,
                            });
                        }
                        if rt != Ty::Num {
                            return Err(TypeError::Mismatch {
                                context: format!("arithmetic in {ctx}"),
                                expected: Ty::Num,
                                found: rt,
                            });
                        }
                        Ok((Ty::Num, None))
                    }
                    BinOp::Lt | BinOp::Le => {
                        if lt != Ty::Num {
                            return Err(TypeError::Mismatch {
                                context: format!("comparison in {ctx}"),
                                expected: Ty::Num,
                                found: lt,
                            });
                        }
                        if rt != Ty::Num {
                            return Err(TypeError::Mismatch {
                                context: format!("comparison in {ctx}"),
                                expected: Ty::Num,
                                found: rt,
                            });
                        }
                        Ok((Ty::Bool, None))
                    }
                    BinOp::Cat => {
                        if lt != Ty::Str {
                            return Err(TypeError::Mismatch {
                                context: format!("concatenation in {ctx}"),
                                expected: Ty::Str,
                                found: lt,
                            });
                        }
                        if rt != Ty::Str {
                            return Err(TypeError::Mismatch {
                                context: format!("concatenation in {ctx}"),
                                expected: Ty::Str,
                                found: rt,
                            });
                        }
                        Ok((Ty::Str, None))
                    }
                }
            }
        }
    }
}
