//! Robustness: the type checker must reject (never panic on) arbitrary —
//! including wildly ill-formed — ASTs.

use proptest::prelude::*;
use reflex_ast::{
    ActionPat, Cmd, CompPat, CompTypeDecl, Expr, Handler, MsgDecl, NiSpec, PatField, Program,
    PropBody, PropertyDecl, StateVarDecl, TraceProp, TracePropKind, Ty, Value,
};

fn gen_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![
        Just(Ty::Bool),
        Just(Ty::Num),
        Just(Ty::Str),
        Just(Ty::Fdesc),
        Just(Ty::Comp)
    ]
}

fn gen_name() -> impl Strategy<Value = String> {
    // Small name pool to provoke collisions and dangling references alike.
    prop_oneof![
        Just("A"),
        Just("B"),
        Just("M"),
        Just("x"),
        Just("y"),
        Just("sender"),
        Just("ghost"),
        Just("s"),
        Just("k"),
    ]
    .prop_map(str::to_owned)
}

fn gen_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-5i64..5).prop_map(Value::Num),
        Just(Value::from("v")),
    ]
}

fn gen_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        gen_value().prop_map(Expr::Lit),
        gen_name().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), gen_name()).prop_map(|(e, f)| e.cfg(f)),
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.cat(b)),
        ]
    })
    .boxed()
}

fn gen_cmd(depth: u32) -> BoxedStrategy<Cmd> {
    let leaf = prop_oneof![
        Just(Cmd::Nop),
        (gen_name(), gen_expr(1)).prop_map(|(x, e)| Cmd::Assign(x, e)),
        (
            gen_expr(1),
            gen_name(),
            proptest::collection::vec(gen_expr(1), 0..2)
        )
            .prop_map(|(t, m, a)| Cmd::Send {
                target: t,
                msg: m,
                args: a
            }),
        (
            gen_name(),
            gen_name(),
            proptest::collection::vec(gen_expr(1), 0..2)
        )
            .prop_map(|(b, c, cfg)| Cmd::Spawn {
                binder: b,
                ctype: c,
                config: cfg
            }),
        (
            gen_name(),
            gen_name(),
            proptest::collection::vec(gen_expr(1), 0..2)
        )
            .prop_map(|(b, f, a)| Cmd::Call {
                binder: b,
                func: f,
                args: a
            }),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Cmd::Block),
            (gen_expr(1), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Cmd::If {
                cond: c,
                then_branch: Box::new(t),
                else_branch: Box::new(e)
            }),
            (gen_name(), gen_name(), gen_expr(1), inner.clone(), inner).prop_map(
                |(c, b, p, f, m)| Cmd::Lookup {
                    ctype: c,
                    binder: b,
                    pred: p,
                    found: Box::new(f),
                    missing: Box::new(m)
                }
            ),
        ]
    })
    .boxed()
}

fn gen_pat_field() -> impl Strategy<Value = PatField> {
    prop_oneof![
        Just(PatField::Any),
        gen_value().prop_map(PatField::Lit),
        gen_name().prop_map(PatField::Var),
    ]
}

fn gen_comp_pat() -> impl Strategy<Value = CompPat> {
    (
        proptest::option::of(gen_name()),
        proptest::option::of(proptest::collection::vec(gen_pat_field(), 0..3)),
    )
        .prop_map(|(ctype, config)| CompPat { ctype, config })
}

fn gen_action_pat() -> BoxedStrategy<ActionPat> {
    prop_oneof![
        gen_comp_pat().prop_map(|comp| ActionPat::Select { comp }),
        gen_comp_pat().prop_map(|comp| ActionPat::Spawn { comp }),
        (
            gen_comp_pat(),
            gen_name(),
            proptest::collection::vec(gen_pat_field(), 0..3)
        )
            .prop_map(|(comp, msg, args)| ActionPat::Recv { comp, msg, args }),
        (
            gen_comp_pat(),
            gen_name(),
            proptest::collection::vec(gen_pat_field(), 0..3)
        )
            .prop_map(|(comp, msg, args)| ActionPat::Send { comp, msg, args }),
    ]
    .boxed()
}

fn gen_prop() -> BoxedStrategy<PropertyDecl> {
    let kind = prop_oneof![
        Just(TracePropKind::ImmBefore),
        Just(TracePropKind::ImmAfter),
        Just(TracePropKind::Enables),
        Just(TracePropKind::Ensures),
        Just(TracePropKind::Disables),
    ];
    fn forall() -> impl Strategy<Value = Vec<(String, Ty)>> {
        proptest::collection::vec((gen_name(), gen_ty()), 0..2)
    }
    prop_oneof![
        (
            gen_name(),
            forall(),
            kind,
            gen_action_pat(),
            gen_action_pat()
        )
            .prop_map(|(name, forall, kind, a, b)| PropertyDecl {
                name,
                forall,
                body: PropBody::Trace(TraceProp::new(kind, a, b)),
            }),
        (
            gen_name(),
            forall(),
            proptest::collection::vec(gen_comp_pat(), 0..2),
            proptest::collection::vec(gen_name(), 0..2)
        )
            .prop_map(|(name, forall, high_comps, high_vars)| PropertyDecl {
                name,
                forall,
                body: PropBody::NonInterference(NiSpec {
                    high_comps,
                    high_vars
                }),
            }),
    ]
    .boxed()
}

fn gen_program() -> BoxedStrategy<Program> {
    (
        proptest::collection::vec(
            (
                gen_name(),
                proptest::collection::vec((gen_name(), gen_ty()), 0..2),
            ),
            0..3,
        ),
        proptest::collection::vec(
            (gen_name(), proptest::collection::vec(gen_ty(), 0..3)),
            0..3,
        ),
        proptest::collection::vec(
            (gen_name(), gen_ty(), proptest::option::of(gen_expr(1))),
            0..3,
        ),
        gen_cmd(2),
        proptest::collection::vec(
            (
                gen_name(),
                gen_name(),
                proptest::collection::vec(gen_name(), 0..2),
                gen_cmd(2),
            ),
            0..3,
        ),
        proptest::collection::vec(gen_prop(), 0..3),
    )
        .prop_map(|(comps, msgs, state, init, handlers, properties)| Program {
            name: "fuzz".into(),
            components: comps
                .into_iter()
                .map(|(name, config)| CompTypeDecl {
                    name,
                    exe: "x".into(),
                    config,
                })
                .collect(),
            messages: msgs
                .into_iter()
                .map(|(name, payload)| MsgDecl { name, payload })
                .collect(),
            state: state
                .into_iter()
                .map(|(name, ty, init)| StateVarDecl { name, ty, init })
                .collect(),
            init,
            handlers: handlers
                .into_iter()
                .map(|(ctype, msg, params, body)| Handler {
                    ctype,
                    msg,
                    params,
                    body,
                })
                .collect(),
            properties,
        })
        .boxed()
}

/// Canonicalizes the command structure everywhere, so the print→parse
/// comparison is insensitive to non-canonical `Block` nesting (which the
/// printer cannot represent).
fn normalize(mut program: Program) -> Program {
    program.init = program.init.normalize();
    for h in &mut program.handlers {
        h.body = h.body.normalize();
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn typeck_never_panics(program in gen_program()) {
        // Accept or reject — either is fine; panicking is not.
        let _ = reflex_typeck::check(&program);
    }

    /// Whatever typeck accepts must also survive the downstream pipeline
    /// entry points without panicking.
    #[test]
    fn accepted_programs_are_safe_downstream(program in gen_program()) {
        if let Ok(_checked) = reflex_typeck::check(&program) {
            // Printing an accepted program must produce reparseable output
            // (equal up to block canonicalization, which the printed form
            // cannot distinguish).
            let printed = program.to_string();
            let reparsed = reflex_parser::parse_program("fuzz", &printed)
                .unwrap_or_else(|e| panic!("accepted program failed to reparse: {e}\n{printed}"));
            prop_assert_eq!(normalize(reparsed), normalize(program));
        }
    }
}
