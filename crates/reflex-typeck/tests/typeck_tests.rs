//! Integration tests for the type checker: accepted programs, and one test
//! per rejection rule.

use reflex_ast::build::ProgramBuilder;
use reflex_ast::{ActionPat, CompPat, Expr, PatField, PropertyDecl, TracePropKind, Ty};
use reflex_parser::parse_program;
use reflex_typeck::{check, TypeError};

fn base() -> ProgramBuilder {
    ProgramBuilder::new("t")
        .component("C", "c.py", [("domain", Ty::Str)])
        .component("D", "d.py", [])
        .message("M", [Ty::Str])
        .message("N", [Ty::Num])
        .state("count", Ty::Num, Expr::lit(0i64))
        .init_spawn("c0", "C", [Expr::lit("a.org")])
}

#[test]
fn accepts_well_formed_program() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.assign("count", Expr::var("count").add(Expr::lit(1i64)));
            h.send(Expr::var("c0"), "M", [Expr::var("s")]);
            h.send(Expr::var("sender"), "N", [Expr::var("count")]);
        })
        .finish();
    let checked = check(&p).expect("accepts");
    assert_eq!(checked.global("count").unwrap().ty, Ty::Num);
    assert_eq!(
        checked.global("c0").unwrap().comp_type.as_deref(),
        Some("C")
    );
    let scope = checked.handler_entry_scope("C", "M");
    assert_eq!(scope.get("s").unwrap().ty, Ty::Str);
    assert_eq!(scope.get("sender").unwrap().comp_type.as_deref(), Some("C"));
}

#[test]
fn state_initial_values_fill_defaults() {
    let p = base().state_default("name", Ty::Str).finish();
    let checked = check(&p).expect("accepts");
    let values = checked.state_initial_values();
    assert!(values.contains(&("count".to_owned(), reflex_ast::Value::Num(0))));
    assert!(values.contains(&("name".to_owned(), reflex_ast::Value::Str(String::new()))));
}

#[test]
fn rejects_duplicate_declarations() {
    let p = base().component("C", "c2.py", []).finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::DuplicateDecl {
            what: "component type",
            ..
        })
    ));

    let p = base().message("M", []).finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::DuplicateDecl {
            what: "message type",
            ..
        })
    ));

    let p = base()
        .handler("C", "M", ["a"], |_| {})
        .handler("C", "M", ["b"], |_| {})
        .finish();
    assert!(matches!(check(&p), Err(TypeError::DuplicateHandler { .. })));
}

#[test]
fn rejects_undeclared_references() {
    let p = base().handler("Nope", "M", ["s"], |_| {}).finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "component type",
            ..
        })
    ));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.assign("ghost", Expr::lit(1i64));
        })
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "variable",
            ..
        })
    ));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.send(Expr::var("c0"), "Ghost", []);
        })
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "message type",
            ..
        })
    ));
}

#[test]
fn rejects_type_and_arity_errors() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.assign("count", Expr::var("s")); // str into num
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Mismatch { .. })));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.send(Expr::var("c0"), "M", []); // M takes one arg
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Arity { .. })));

    let p = base().handler("C", "M", [], |_| {}).finish(); // params arity
    assert!(matches!(check(&p), Err(TypeError::Arity { .. })));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.when(Expr::var("count"), |_| {}); // num condition
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Mismatch { .. })));
}

#[test]
fn rejects_component_typed_state() {
    let p = base().state_default("who", Ty::Comp).finish();
    assert!(matches!(check(&p), Err(TypeError::BadStateType { .. })));
    let p = base().state_default("fd", Ty::Fdesc).finish();
    assert!(matches!(check(&p), Err(TypeError::BadStateType { .. })));
}

#[test]
fn rejects_send_to_non_component_and_assignment_to_binder() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.send(Expr::var("count"), "M", [Expr::var("s")]);
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Mismatch { .. })));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.assign("c0", Expr::var("sender")); // c0 is an init binder
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::BadAssignTarget { .. })));
}

#[test]
fn rejects_shadowing() {
    let p = base()
        .handler("C", "M", ["count"], |_| {}) // param shadows state var
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Shadowing { .. })));

    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.spawn("s", "D", []); // binder shadows param
        })
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Shadowing { .. })));
}

#[test]
fn branch_binders_do_not_escape() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.when(Expr::lit(true), |t| {
                t.spawn("fresh", "D", []);
            });
            h.send(Expr::var("fresh"), "M", [Expr::var("s")]); // out of scope
        })
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "variable",
            ..
        })
    ));
}

#[test]
fn sequential_binders_stay_in_scope() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.spawn("fresh", "D", []);
            h.send(Expr::var("fresh"), "M", [Expr::var("s")]);
            h.call("r", "lookup_user", [Expr::var("s")]);
            h.send(Expr::var("fresh"), "M", [Expr::var("r")]);
        })
        .finish();
    check(&p).expect("accepts");
}

#[test]
fn config_access_requires_known_component_type() {
    let p = base()
        .handler("C", "M", ["s"], |h| {
            h.when(Expr::var("sender").cfg("domain").eq(Expr::var("s")), |t| {
                t.send(Expr::var("c0"), "M", [Expr::var("s")]);
            });
        })
        .finish();
    check(&p).expect("accepts: sender has a static component type");

    let p = base()
        .handler("C", "M", ["s"], |h| {
            // D has no `domain` field.
            h.spawn("d", "D", []);
            h.when(Expr::var("d").cfg("domain").eq(Expr::var("s")), |_| {});
        })
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "configuration field",
            ..
        })
    ));
}

#[test]
fn property_pattern_rules() {
    // Undeclared pattern var.
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [],
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
        ))
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::UndeclaredPatternVar { .. })
    ));

    // Var declared at wrong type (M carries a str).
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [("u", Ty::Num)],
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
        ))
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::PatternVarTypeConflict { .. })
    ));

    // Positive obligation with a variable missing from the trigger.
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [("u", Ty::Str), ("v", Ty::Str)],
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("v")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
        ))
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::ObligationVarNotInTrigger { .. })
    ));

    // The same shape is fine for Disables (negative obligation).
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [("u", Ty::Str), ("v", Ty::Str)],
            TracePropKind::Disables,
            ActionPat::Recv {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("v")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::var("u")],
            },
        ))
        .finish();
    check(&p).expect("accepts");

    // Wrong pattern arity.
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [],
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![],
            },
            ActionPat::Send {
                comp: CompPat::of_type("C"),
                msg: "M".into(),
                args: vec![PatField::Any],
            },
        ))
        .finish();
    assert!(matches!(check(&p), Err(TypeError::Arity { .. })));

    // Config pattern on a wildcard component type.
    let p = base()
        .property(PropertyDecl::trace(
            "P",
            [],
            TracePropKind::Enables,
            ActionPat::Spawn {
                comp: CompPat {
                    ctype: None,
                    config: Some(vec![PatField::Any]),
                },
            },
            ActionPat::Spawn {
                comp: CompPat::of_type("C"),
            },
        ))
        .finish();
    assert!(matches!(check(&p), Err(TypeError::UnknownCompType { .. })));
}

#[test]
fn ni_spec_rules() {
    use reflex_ast::NiSpec;
    let p = base()
        .property(PropertyDecl::non_interference(
            "NI",
            [],
            NiSpec::new([CompPat::of_type("C")], ["count"]),
        ))
        .finish();
    check(&p).expect("accepts");

    let p = base()
        .property(PropertyDecl::non_interference(
            "NI",
            [],
            NiSpec::new([CompPat::of_type("C")], ["ghost"]),
        ))
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "state variable",
            ..
        })
    ));

    let p = base()
        .property(PropertyDecl::non_interference(
            "NI",
            [],
            NiSpec::new([CompPat::of_type("Ghost")], Vec::<String>::new()),
        ))
        .finish();
    assert!(matches!(
        check(&p),
        Err(TypeError::Undeclared {
            what: "component type",
            ..
        })
    ));
}

#[test]
fn checks_parsed_ssh_kernel() {
    let src = r#"
components {
  Connection "client.py" ();
  Password "user-auth.c" ();
  Terminal "pty-alloc.c" ();
}
messages {
  ReqAuth(str, str);
  Auth(str);
  ReqTerm(str);
  Term(str, fdesc);
}
state {
  auth_user: str = "";
  auth_ok: bool = false;
}
init {
  C <- spawn Connection();
  P <- spawn Password();
  T <- spawn Terminal();
}
handlers {
  when Connection:ReqAuth(user, pass) {
    send(P, ReqAuth(user, pass));
  }
  when Password:Auth(user) {
    auth_user = user;
    auth_ok = true;
  }
  when Connection:ReqTerm(user) {
    if (user == auth_user && auth_ok) {
      send(T, ReqTerm(user));
    }
  }
  when Terminal:Term(user, t) {
    if (user == auth_user && auth_ok) {
      send(C, Term(user, t));
    }
  }
}
properties {
  AuthBeforeTerm: forall u: str.
    [Recv(Password(), Auth(u))] Enables [Send(Terminal(), ReqTerm(u))];
}
"#;
    let p = parse_program("ssh", src).expect("parses");
    let checked = check(&p).expect("well-formed");
    assert_eq!(
        checked.global("P").unwrap().comp_type.as_deref(),
        Some("Password")
    );
}
