//! `rxd` — the resident Reflex verification daemon.
//!
//! ```text
//! rxd --socket PATH [--tcp ADDR] [--store DIR] [--jobs N] [--workers N]
//!     [--queue N] [--max-budget-ms MS] [--max-budget-nodes N]
//!     [--shed-queue-depth N] [--client-inflight N] [--idem-window N]
//!     [--frame-timeout-ms MS] [--idle-timeout-ms MS] [--write-timeout-ms MS]
//! ```
//!
//! One long-lived [`reflex::service::ServiceCore`] owns the interner,
//! the proof caches and the open proof store; every connected client
//! (`rx client`, the SDK, a CI load generator) gets request-scoped
//! sessions over that warm state. The daemon listens on a unix socket
//! and/or a TCP address, serves until a client sends the `SHUTDOWN`
//! frame (or the process receives ctrl-c-free orchestration via
//! `rx client shutdown`), then drains queued work and group-commits the
//! store before exiting.
//!
//! Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage errors.

use std::process::ExitCode;
use std::sync::Arc;

use reflex::cli::{self, FlagSpec};
use reflex::service::{serve, ServerConfig, ServiceConfig, ServiceCore};

const SYNOPSIS: &str = "--socket PATH | --tcp ADDR";

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--socket",
        value: Some("PATH"),
        help: "listen on a unix socket at PATH",
    },
    FlagSpec {
        name: "--tcp",
        value: Some("ADDR"),
        help: "listen on a TCP address, e.g. 127.0.0.1:7171 (port 0: pick one)",
    },
    FlagSpec {
        name: "--store",
        value: Some("DIR"),
        help: "persist certificates in a content-addressed proof store",
    },
    FlagSpec {
        name: "--jobs",
        value: Some("N"),
        help: "prover threads per request (0: one per CPU)",
    },
    FlagSpec {
        name: "--workers",
        value: Some("N"),
        help: "concurrent request executors (0: one per CPU)",
    },
    FlagSpec {
        name: "--queue",
        value: Some("N"),
        help: "per-client pending-request cap before Busy (default 16)",
    },
    FlagSpec {
        name: "--max-budget-ms",
        value: Some("MS"),
        help: "clamp every request's wall-clock budget to MS",
    },
    FlagSpec {
        name: "--max-budget-nodes",
        value: Some("N"),
        help: "clamp every request's explored-path budget to N",
    },
    FlagSpec {
        name: "--shed-queue-depth",
        value: Some("N"),
        help: "shed submits once N jobs are queued in total (0: never shed)",
    },
    FlagSpec {
        name: "--client-inflight",
        value: Some("N"),
        help: "shed a client past N queued+running requests (0: no cap)",
    },
    FlagSpec {
        name: "--idem-window",
        value: Some("N"),
        help: "completed replies kept for idempotency dedup (default 256)",
    },
    FlagSpec {
        name: "--frame-timeout-ms",
        value: Some("MS"),
        help: "reap a peer whose frame stalls mid-transfer for MS (default 10000)",
    },
    FlagSpec {
        name: "--idle-timeout-ms",
        value: Some("MS"),
        help: "reap a peer idle with nothing in flight for MS (default 300000)",
    },
    FlagSpec {
        name: "--write-timeout-ms",
        value: Some("MS"),
        help: "socket write timeout towards slow readers (default 30000)",
    },
];

fn usage_error(message: &str) -> ExitCode {
    eprint!(
        "rxd: {message}\nusage: rxd {SYNOPSIS}\n{}",
        cli::render_flag_help(FLAGS)
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(FLAGS, &args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    match run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(RxdError::Usage(e)) => usage_error(&e),
        Err(RxdError::Run(e)) => {
            eprintln!("rxd: {e}");
            ExitCode::FAILURE
        }
    }
}

enum RxdError {
    Usage(String),
    Run(String),
}

fn run(parsed: &cli::Parsed) -> Result<(), RxdError> {
    if !parsed.positional.is_empty() {
        return Err(RxdError::Usage(format!(
            "unexpected operand `{}`",
            parsed.positional[0]
        )));
    }
    let unix = parsed.value("--socket").map(std::path::PathBuf::from);
    let tcp = parsed.value("--tcp").map(str::to_owned);
    if unix.is_none() && tcp.is_none() {
        return Err(RxdError::Usage(
            "nothing to listen on (give --socket PATH and/or --tcp ADDR)".into(),
        ));
    }
    let config = ServiceConfig {
        store_dir: parsed.value("--store").map(str::to_owned),
        jobs: parsed.get("--jobs", 1).map_err(RxdError::Usage)?,
        workers: parsed.get("--workers", 0).map_err(RxdError::Usage)?,
        queue_cap: parsed.get("--queue", 0).map_err(RxdError::Usage)?,
        max_budget_ms: parsed.get_opt("--max-budget-ms").map_err(RxdError::Usage)?,
        max_budget_nodes: parsed
            .get_opt("--max-budget-nodes")
            .map_err(RxdError::Usage)?,
        shed_queue_depth: parsed
            .get("--shed-queue-depth", 0)
            .map_err(RxdError::Usage)?,
        client_inflight_cap: parsed
            .get("--client-inflight", 0)
            .map_err(RxdError::Usage)?,
        idempotency_window: parsed.get("--idem-window", 0).map_err(RxdError::Usage)?,
        ..ServiceConfig::default()
    };
    let core = Arc::new(ServiceCore::start(config).map_err(|e| RxdError::Run(e.to_string()))?);
    let server_config = ServerConfig {
        unix,
        tcp,
        frame_timeout_ms: parsed
            .get("--frame-timeout-ms", 0)
            .map_err(RxdError::Usage)?,
        idle_timeout_ms: parsed
            .get("--idle-timeout-ms", 0)
            .map_err(RxdError::Usage)?,
        write_timeout_ms: parsed
            .get("--write-timeout-ms", 0)
            .map_err(RxdError::Usage)?,
    };
    let handle =
        serve(Arc::clone(&core), &server_config).map_err(|e| RxdError::Run(e.to_string()))?;
    if let Some(path) = &handle.unix_path {
        println!("rxd: listening on unix socket {}", path.display());
    }
    if let Some(addr) = &handle.tcp_addr {
        println!("rxd: listening on tcp {addr}");
    }
    handle.wait_for_shutdown();
    println!("rxd: shutdown requested, draining…");
    handle.stop();
    core.shutdown();
    println!("rxd: store committed, bye");
    Ok(())
}
