//! `rx` — the Reflex command-line frontend.
//!
//! ```text
//! rx check   FILE             parse and type-check a kernel
//! rx verify  FILE [PROP]      prove all (or one) of its properties
//! rx falsify FILE PROP        search for a concrete counterexample
//! rx explain FILE PROP        print the discovered proof's structure
//! rx show    FILE             pretty-print the kernel and its statistics
//! rx run     FILE [N [SEED]]  boot the kernel and run up to N exchanges
//! ```
//!
//! Exit codes: 0 success, 1 the kernel/properties have problems,
//! 2 usage errors.

use std::process::ExitCode;

use reflex::runtime::{EmptyWorld, Interpreter, Registry};
use reflex::typeck::CheckedProgram;
use reflex::verify::{
    check_certificate, falsify, prove_all_parallel_with_stats, prove_with, Abstraction,
    FalsifyOptions, ProverOptions,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rx check   FILE\n  rx verify  FILE [PROP] [--jobs N] [--stats]\n  rx falsify FILE PROP\n  rx explain FILE PROP\n  rx show    FILE\n  rx run     FILE [STEPS [SEED]]\n\n  --jobs N   prove on N worker threads (0: one per CPU; default 1)\n  --stats    print prover counters (paths, caches, solver, per-property timing)"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<CheckedProgram, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    let program = reflex::parser::parse_program(name, &src).map_err(|e| format!("{path}: {e}"))?;
    reflex::typeck::check(&program).map_err(|e| format!("{path}: type error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let result = match (cmd, rest) {
        ("check", [file]) => cmd_check(file),
        ("verify", _) => match parse_verify_args(rest) {
            Some((file, prop, jobs, stats)) => cmd_verify(&file, prop.as_deref(), jobs, stats),
            None => return usage(),
        },
        ("falsify", [file, prop]) => cmd_falsify(file, prop),
        ("explain", [file, prop]) => cmd_explain(file, prop),
        ("show", [file]) => cmd_show(file),
        ("run", [file]) => cmd_run(file, 64, 0),
        ("run", [file, steps]) => match steps.parse() {
            Ok(n) => cmd_run(file, n, 0),
            Err(_) => return usage(),
        },
        ("run", [file, steps, seed]) => match (steps.parse(), seed.parse()) {
            (Ok(n), Ok(s)) => cmd_run(file, n, s),
            _ => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rx: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(file: &str) -> Result<(), String> {
    let checked = load(file)?;
    let p = checked.program();
    println!(
        "{}: ok ({} component types, {} message types, {} state vars, {} handlers, {} properties)",
        file,
        p.components.len(),
        p.messages.len(),
        p.state.len(),
        p.handlers.len(),
        p.properties.len()
    );
    Ok(())
}

/// Parses `verify` operands: `FILE [PROP] [--jobs N] [--stats]` in any
/// flag order. Returns `(file, prop, jobs, stats)`.
fn parse_verify_args(rest: &[String]) -> Option<(String, Option<String>, usize, bool)> {
    let mut positional: Vec<&String> = Vec::new();
    let mut jobs = 1usize;
    let mut stats = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => jobs = it.next()?.parse().ok()?,
            "--stats" => stats = true,
            _ if arg.starts_with("--") => return None,
            _ => positional.push(arg),
        }
    }
    match positional.as_slice() {
        [file] => Some(((*file).clone(), None, jobs, stats)),
        [file, prop] => Some(((*file).clone(), Some((*prop).clone()), jobs, stats)),
        _ => None,
    }
}

fn cmd_verify(file: &str, only: Option<&str>, jobs: usize, stats: bool) -> Result<(), String> {
    let checked = load(file)?;
    let options = ProverOptions {
        jobs,
        ..ProverOptions::default()
    };
    let (outcomes, run_stats) = match only {
        None => {
            let (outcomes, run_stats) = prove_all_parallel_with_stats(&checked, &options, jobs);
            (outcomes, Some(run_stats))
        }
        Some(prop) => {
            let abs = Abstraction::build(&checked, &options);
            let outcomes = vec![(
                prop.to_owned(),
                prove_with(&abs, prop, &options).map_err(|e| e.to_string())?,
            )];
            (outcomes, None)
        }
    };
    let mut failures = 0;
    for (name, outcome) in outcomes {
        match outcome.certificate() {
            Some(cert) => {
                check_certificate(&checked, cert, &options).map_err(|e| format!("{name}: {e}"))?;
                println!(
                    "  ✓ {name}  ({} obligations, certificate checked)",
                    cert.obligation_count()
                );
            }
            None => {
                failures += 1;
                println!("  ✗ {name}");
                println!("      {}", outcome.failure().expect("failed"));
            }
        }
    }
    if stats {
        match run_stats {
            Some(s) => print!("{}", s.render()),
            None => {
                println!("(--stats requires proving all properties; ignored for a single property)")
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} propert(y/ies) failed to verify"))
    } else {
        println!("all properties verified.");
        Ok(())
    }
}

fn cmd_falsify(file: &str, prop: &str) -> Result<(), String> {
    let checked = load(file)?;
    if checked.program().property(prop).is_none() {
        return Err(format!("no property named `{prop}`"));
    }
    match falsify(&checked, prop, &FalsifyOptions::default()) {
        Some(cx) => {
            println!("{cx}");
            Ok(())
        }
        None => {
            println!(
                "no counterexample within bounds (this is NOT a proof — run `rx verify {file} {prop}`)"
            );
            Ok(())
        }
    }
}

fn cmd_explain(file: &str, prop: &str) -> Result<(), String> {
    let checked = load(file)?;
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    let outcome = prove_with(&abs, prop, &options).map_err(|e| e.to_string())?;
    match outcome.certificate() {
        Some(cert) => {
            check_certificate(&checked, cert, &options).map_err(|e| e.to_string())?;
            print!("{}", cert.render_proof_sketch());
            Ok(())
        }
        None => Err(format!(
            "`{prop}` did not verify: {}",
            outcome.failure().expect("failed")
        )),
    }
}

fn cmd_show(file: &str) -> Result<(), String> {
    let checked = load(file)?;
    print!("{}", checked.program());
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    println!(
        "\n// behavioral abstraction: {} world(s), {} exchange case(s), {} symbolic path(s)",
        abs.worlds.len(),
        abs.worlds.iter().map(|w| w.exchanges.len()).sum::<usize>(),
        abs.path_count()
    );
    Ok(())
}

fn cmd_run(file: &str, steps: usize, seed: u64) -> Result<(), String> {
    let checked = load(file)?;
    let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), seed)
        .map_err(|e| e.to_string())?;
    let n = kernel.run(steps).map_err(|e| e.to_string())?;
    println!("ran init + {n} exchange(s); trace:");
    print!("{}", kernel.trace());
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())
        .map_err(|e| e.to_string())?;
    println!("trace ⊆ BehAbs ✓");
    Ok(())
}
